//! `v2v` — run serialized JSON synthesis specs from the command line.
//!
//! The paper (§IV-D): "our executable binary reads serialized JSON
//! specs". Subcommands:
//!
//! ```text
//! v2v run <spec.json> -o <out.svc> [--no-optimize] [--no-dde] [--serial]
//!         [--threads N] [--no-pipeline] [--no-split]
//!         [--no-cache] [--trace trace.json]
//!         [--on-error abort|skip|black] [--max-retries N]
//!         [--error-report errors.json]
//! v2v serve [--addr HOST:PORT] [--workers HOST:PORT,...]
//!           [--cache-dir DIR] [--cache-budget BYTES]
//!           [--mem-cache-budget BYTES] [--no-share]
//!           [--max-concurrent N] [--queue-depth N]
//!                                     HTTP query service (see v2v-serve)
//! v2v worker [--addr HOST:PORT] [--cache-dir DIR] ...
//!                                     scale-out worker: renders segments
//!                                     dispatched by a `serve --workers`
//!                                     coordinator
//! v2v explain <spec.json> [--analyze] [--json]   plans + rewrite trace;
//!                                     --analyze also runs the query and
//!                                     annotates measured per-operator metrics
//! v2v check <spec.json>               static checks and per-video needs
//! v2v info <video.svc>                stream facts (frames, GOPs, bytes)
//! v2v inspect <video.svc>             physical layout: GOP length
//!                                     distribution, keyframe density,
//!                                     bytes/frame, live vs sealed
//! v2v store ls [--store DIR]          variant manifests in a store
//! v2v store materialize <name> <video.svc> <kind> [--store DIR]
//!                                     transcode one variant (dense |
//!                                     archive | proxy) into the store
//! v2v store drop <name> <kind> [--store DIR]   remove one variant
//! v2v frame <video.svc> <t> -o still.ppm    export one frame as PPM
//! v2v append <live.svc> <more.svc>    commit GOPs onto a live container
//! v2v append --to HOST:PORT <name> <more.svc>
//!                                     append to a daemon's catalog video
//! v2v subscribe <spec.json> --to HOST:PORT [-o out.svc] [--max-deltas N]
//!                                     follow a query live: apply delta
//!                                     records as sources grow
//! ```
//!
//! `v2v append` without `--to` opens (or creates) an append-aware live
//! container on disk via [`v2v_container::LiveWriter`]: each append is
//! one crash-safe committed batch, and concurrent readers always see
//! the last committed prefix. With `--to` it POSTs the sealed stream to
//! a running daemon's `/append/<name>`, waking any `/subscribe`
//! clients. `v2v subscribe` registers the spec with `POST /subscribe`
//! and keeps `-o out.svc` equal to what a cold `v2v run` of the same
//! spec would produce at the current source length, rewriting it after
//! every delta.
//!
//! `--trace <path>` writes the run's observability artifact — rewrite
//! trace, per-segment execution metrics, pipeline-stage spans, and a
//! metrics snapshot — as one JSON document (the input to CI's
//! metrics-snapshot job).
//!
//! Scheduler knobs: `--threads N` caps the executor's worker pool (0 =
//! auto, also settable via `V2V_NUM_THREADS`); `--no-pipeline` disables
//! the decode-ahead pipeline inside render segments; `--no-split`
//! disables runtime splitting of long renders across idle workers;
//! `--serial` turns all three off and runs segments one at a time. Every
//! combination produces byte-identical output.
//!
//! Fault tolerance: `--on-error` picks the degraded-mode policy when a
//! segment keeps failing after `--max-retries` attempts (default 1):
//! `abort` (default) fails the run, `skip` drops the segment from the
//! output, `black` substitutes black frames of the same duration.
//! `--error-report <path>` writes the structured per-segment fault
//! report (action taken, retries, error kind) as JSON; degraded runs
//! also print a one-line summary per fault.
//!
//! Video locators in the spec are `.svc` paths; data-array locators are
//! JSON annotation paths or `sql:` queries against a database loaded
//! with `--db <tables.json>`:
//!
//! ```json
//! {"tables": [{"name": "video_objects",
//!              "columns": ["video", "model", "timestamp", "frame_objects"],
//!              "rows": [["a", "yolov5m", [1, 30], []], ...]}]}
//! ```
//!
//! Cell values use the annotation conventions: numbers, strings, `[num,
//! den]` pairs are *not* auto-promoted to rationals except in columns
//! named `timestamp`, and arrays of `{x, y, w, h}` objects become boxes.
//!
//! Failures carry the unified error taxonomy: the exit code encodes the
//! [`ErrorKind`] (3 corrupt_data, 4 io, 5 not_found, 6 invalid_request,
//! 7 plan, 8 udf, 9 internal; 1 unclassified, 2 usage), and `--json`
//! switches stderr to one structured
//! `{"error": {kind, message, exit_code}}` object.
//!
//! Adaptive physical storage: `v2v store` manages per-source variant
//! sets (see `v2v-store`) offline; `v2v run --store DIR` attaches a
//! store's variants so the planner can serve decodes from the cheapest
//! physical copy (`--variant auto|off|dense|archive|proxy` forces the
//! policy — output bytes never change); `v2v serve --store-dir DIR
//! [--store-budget BYTES] [--compact-secs SECS]` does the same in the
//! daemon and additionally compacts variants from observed access
//! patterns.
//!
//! `--cache-dir DIR` (on both `run` and `serve`) enables the persistent
//! render cache: whole results and per-segment fragments are stored
//! content-addressed under DIR (budgeted by `--cache-budget`, default
//! 1 GiB), so repeated queries splice cached bytes instead of decoding.
//! `--mem-cache-budget BYTES` (requires `--cache-dir`) adds a
//! byte-budgeted in-memory hot tier above the disk cache: fragments
//! accessed repeatedly are promoted and served without touching disk.
//! The daemon also coalesces identical in-flight queries and shares
//! overlapping segments between concurrent renders; `--no-share` turns
//! that off (every request then executes independently).

use std::process::ExitCode;
use v2v_core::{EngineConfig, ErrorKind, V2vEngine, V2vError};
use v2v_exec::Catalog;
use v2v_serve::{ServeConfig, ServeRole, V2vServer};
use v2v_spec::Spec;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  v2v run <spec.json> [-o out.svc] [--db tables.json] [--no-optimize] [--no-dde] [--serial] [--threads N] [--no-pipeline] [--no-split] [--no-cache] [--cache-dir DIR] [--cache-budget BYTES] [--mem-cache-budget BYTES] [--store DIR] [--variant auto|off|dense|archive|proxy] [--trace trace.json] [--on-error abort|skip|black] [--max-retries N] [--error-report errors.json] [--json]\n  v2v serve [--addr HOST:PORT] [--workers HOST:PORT,...] [--cache-dir DIR] [--cache-budget BYTES] [--mem-cache-budget BYTES] [--store-dir DIR] [--store-budget BYTES] [--compact-secs SECS] [--no-share] [--max-concurrent N] [--queue-depth N] [--db tables.json] [--threads N]\n  v2v worker [--addr HOST:PORT] [--cache-dir DIR] [--cache-budget BYTES] [--mem-cache-budget BYTES] [--max-concurrent N] [--queue-depth N] [--db tables.json] [--threads N]\n  v2v explain <spec.json> [--db tables.json] [--analyze] [--json]\n  v2v check <spec.json>\n  v2v info <video.svc>\n  v2v inspect <video.svc>\n  v2v store ls [--store DIR]\n  v2v store materialize <name> <video.svc> <dense|archive|proxy> [--store DIR]\n  v2v store drop <name> <dense|archive|proxy> [--store DIR]\n  v2v frame <video.svc> <t> [-o still.ppm]\n  v2v append [--to HOST:PORT] <live.svc|name> <more.svc> [--json]\n  v2v subscribe <spec.json> [--to HOST:PORT] [-o out.svc] [--max-deltas N] [--json]"
    );
    ExitCode::from(2)
}

/// A classified CLI failure: the message plus (when the failing layer
/// spoke the unified taxonomy) the [`ErrorKind`] that picks the exit
/// code and the machine-readable `--json` report.
struct CliError {
    message: String,
    kind: Option<ErrorKind>,
}

impl From<String> for CliError {
    fn from(message: String) -> CliError {
        CliError {
            message,
            kind: None,
        }
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> CliError {
        CliError {
            message: message.to_string(),
            kind: None,
        }
    }
}

impl From<V2vError> for CliError {
    fn from(e: V2vError) -> CliError {
        CliError {
            message: e.to_string(),
            kind: Some(e.kind()),
        }
    }
}

/// Stable per-kind exit codes (1 = unclassified failure, 2 = usage).
fn exit_code_for(kind: ErrorKind) -> u8 {
    match kind {
        ErrorKind::CorruptData => 3,
        ErrorKind::Io => 4,
        ErrorKind::NotFound => 5,
        ErrorKind::InvalidRequest => 6,
        ErrorKind::Plan => 7,
        ErrorKind::Udf => 8,
        ErrorKind::Internal => 9,
    }
}

/// Loads a relational database from a JSON fixture (see module docs).
fn load_database(path: &str) -> Result<v2v_data::Database, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let root: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    let tables = root
        .get("tables")
        .and_then(|t| t.as_array())
        .ok_or_else(|| format!("{path}: expected {{\"tables\": [...]}}"))?;
    let mut db = v2v_data::Database::new();
    for t in tables {
        let name = t
            .get("name")
            .and_then(|n| n.as_str())
            .ok_or_else(|| format!("{path}: table missing 'name'"))?;
        let columns: Vec<String> = t
            .get("columns")
            .and_then(|c| c.as_array())
            .ok_or_else(|| format!("{path}: table '{name}' missing 'columns'"))?
            .iter()
            .map(|c| c.as_str().unwrap_or_default().to_string())
            .collect();
        let mut table = v2v_data::Table::new(name, columns.clone());
        for row in t
            .get("rows")
            .and_then(|r| r.as_array())
            .ok_or_else(|| format!("{path}: table '{name}' missing 'rows'"))?
        {
            let cells = row
                .as_array()
                .ok_or_else(|| format!("{path}: row in '{name}' is not an array"))?;
            if cells.len() != columns.len() {
                return Err(format!(
                    "{path}: row arity {} != {} columns in '{name}'",
                    cells.len(),
                    columns.len()
                ));
            }
            let values = cells
                .iter()
                .zip(&columns)
                .map(|(cell, col)| {
                    // Timestamp columns read `[num, den]` / numbers as
                    // exact rationals; everything else uses the
                    // annotation conventions.
                    if col == "timestamp" {
                        if let Some(pair) = cell.as_array().filter(|p| p.len() == 2) {
                            if let (Some(n), Some(d)) = (pair[0].as_i64(), pair[1].as_i64()) {
                                if let Ok(r) = v2v_time::Rational::checked_new(n, d) {
                                    return v2v_data::Value::Rational(r);
                                }
                            }
                        }
                        if let Some(i) = cell.as_i64() {
                            return v2v_data::Value::Rational(v2v_time::Rational::from_int(i));
                        }
                    }
                    v2v_data::Value::from_json(cell)
                })
                .collect();
            table.push_row(values);
        }
        db.add_table(table);
    }
    Ok(db)
}

fn load_spec(path: &str) -> Result<Spec, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| CliError {
        message: format!("reading {path}: {e}"),
        kind: Some(ErrorKind::Io),
    })?;
    Spec::from_json(&text).map_err(|e| CliError {
        message: format!("parsing {path}: {e}"),
        kind: Some(ErrorKind::InvalidRequest),
    })
}

/// Opens the persistent render cache for `--cache-dir`, with an
/// optional in-memory hot tier (`--mem-cache-budget`).
fn open_render_cache(
    dir: &str,
    budget: u64,
    mem_budget: u64,
) -> Result<std::sync::Arc<v2v_exec::RenderCache>, CliError> {
    v2v_exec::RenderCache::open(dir, budget)
        .map(|c| std::sync::Arc::new(c.with_mem_tier(mem_budget)))
        .map_err(|e| CliError {
            message: format!("opening cache dir {dir}: {e}"),
            kind: Some(ErrorKind::Io),
        })
}

/// Default persistent-cache byte budget (1 GiB).
const DEFAULT_CACHE_BUDGET: u64 = 1 << 30;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let result = match cmd.as_str() {
        "run" => cmd_run(&args[1..]),
        "serve" => cmd_serve(&args[1..], ServeRole::Frontend),
        "worker" => cmd_serve(&args[1..], ServeRole::Worker),
        "explain" => cmd_explain(&args[1..]),
        "check" => cmd_check(&args[1..]),
        "info" => cmd_info(&args[1..]),
        "inspect" => cmd_inspect(&args[1..]),
        "store" => cmd_store(&args[1..]),
        "frame" => cmd_frame(&args[1..]),
        "append" => cmd_append(&args[1..]),
        "subscribe" => cmd_subscribe(&args[1..]),
        _ => return usage(),
    };
    // `--json` anywhere switches stderr error reporting to one
    // machine-readable object (stdout stays whatever the command
    // prints).
    let json_errors = args.iter().any(|a| a == "--json");
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            let code = e.kind.map(exit_code_for).unwrap_or(1);
            if json_errors {
                let obj = serde_json::json!({
                    "error": {
                        "kind": e.kind.map(ErrorKind::name).unwrap_or("error"),
                        "message": e.message,
                        "exit_code": code,
                    }
                });
                eprintln!("{obj}");
            } else {
                eprintln!("v2v: {}", e.message);
            }
            ExitCode::from(code)
        }
    }
}

fn cmd_run(args: &[String]) -> Result<(), CliError> {
    let mut spec_path = None;
    let mut out_path = "out.svc".to_string();
    let mut db_path = None;
    let mut trace_path: Option<String> = None;
    let mut error_report_path: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut cache_budget = DEFAULT_CACHE_BUDGET;
    let mut mem_cache_budget = 0u64;
    let mut store_dir: Option<String> = None;
    let mut config = EngineConfig::default();
    let mut optimize = true;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-o" | "--output" => {
                i += 1;
                out_path = args.get(i).ok_or("missing value after -o")?.clone();
            }
            "--db" => {
                i += 1;
                db_path = Some(args.get(i).ok_or("missing value after --db")?.clone());
            }
            "--trace" => {
                i += 1;
                trace_path = Some(args.get(i).ok_or("missing value after --trace")?.clone());
            }
            "--no-optimize" => optimize = false,
            "--no-dde" => config.data_rewrites = false,
            "--serial" => config.exec.parallel = false,
            "--threads" => {
                i += 1;
                config.exec.num_threads = args
                    .get(i)
                    .ok_or("missing value after --threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads value: {e}"))?;
            }
            "--no-pipeline" => config.exec.pipeline_depth = 0,
            "--no-split" => config.exec.runtime_split = false,
            "--no-cache" => config.exec.gop_cache_frames = 0,
            "--cache-dir" => {
                i += 1;
                cache_dir = Some(
                    args.get(i)
                        .ok_or("missing value after --cache-dir")?
                        .clone(),
                );
            }
            "--cache-budget" => {
                i += 1;
                cache_budget = args
                    .get(i)
                    .ok_or("missing value after --cache-budget")?
                    .parse()
                    .map_err(|e| format!("bad --cache-budget value: {e}"))?;
            }
            "--mem-cache-budget" => {
                i += 1;
                mem_cache_budget = args
                    .get(i)
                    .ok_or("missing value after --mem-cache-budget")?
                    .parse()
                    .map_err(|e| format!("bad --mem-cache-budget value: {e}"))?;
            }
            "--store" => {
                i += 1;
                store_dir = Some(args.get(i).ok_or("missing value after --store")?.clone());
            }
            "--variant" => {
                i += 1;
                let v = args.get(i).ok_or("missing value after --variant")?;
                config.variants = v2v_plan::VariantPolicy::parse(v).ok_or_else(|| {
                    format!("bad --variant value '{v}' (auto|off|dense|archive|proxy)")
                })?;
            }
            "--json" => {}
            "--on-error" => {
                i += 1;
                config.exec.on_error = args
                    .get(i)
                    .ok_or("missing value after --on-error")?
                    .parse()
                    .map_err(|e| format!("bad --on-error value: {e}"))?;
            }
            "--max-retries" => {
                i += 1;
                config.exec.max_retries = args
                    .get(i)
                    .ok_or("missing value after --max-retries")?
                    .parse()
                    .map_err(|e| format!("bad --max-retries value: {e}"))?;
            }
            "--error-report" => {
                i += 1;
                error_report_path = Some(
                    args.get(i)
                        .ok_or("missing value after --error-report")?
                        .clone(),
                );
            }
            other if spec_path.is_none() => spec_path = Some(other.to_string()),
            other => return Err(format!("unexpected argument '{other}'").into()),
        }
        i += 1;
    }
    let spec_path = spec_path.ok_or("missing spec path")?;
    if trace_path.is_some() && !optimize {
        return Err("--trace requires the optimized pipeline (drop --no-optimize)".into());
    }
    let spec = load_spec(&spec_path)?;
    let cache_enabled = config.exec.gop_cache_frames > 0;
    let render_cache_enabled = cache_dir.is_some();
    if mem_cache_budget > 0 && !render_cache_enabled {
        return Err("--mem-cache-budget requires --cache-dir".into());
    }
    if let Some(dir) = cache_dir {
        config.render_cache = Some(open_render_cache(&dir, cache_budget, mem_cache_budget)?);
    }
    let mut engine = V2vEngine::new(Catalog::new()).with_config(config);
    if let Some(db_path) = db_path {
        engine = engine.with_database(load_database(&db_path)?);
    }
    if let Some(dir) = &store_dir {
        // Bind the spec's sources first so the variants have originals
        // to attach to; the run below reuses the bound catalog.
        engine
            .bind(&spec)
            .map_err(|e| CliError::from(V2vError::from(e)))?;
        let store = open_store(dir)?;
        let (attached, skipped) = store
            .attach(engine.catalog_mut())
            .map_err(store_cli_error)?;
        println!("store: attached {attached} variant(s) from {dir} ({skipped} skipped)");
    }
    let (report, trace) = if optimize {
        let (report, trace) = engine
            .run_traced(&spec)
            .map_err(|e| CliError::from(V2vError::from(e)))?;
        (report, Some(trace))
    } else {
        (
            engine
                .run_unoptimized(&spec)
                .map_err(|e| CliError::from(V2vError::from(e)))?,
            None,
        )
    };
    v2v_container::write_svc(&report.output, &out_path)
        .map_err(|e| CliError::from(V2vError::from(e)))?;
    println!(
        "wrote {out_path}: {} frames, {} bytes in {:.3}s",
        report.output.len(),
        report.output.byte_size(),
        report.wall.as_secs_f64()
    );
    // The cache clause only appears when the cache exists: a disabled
    // cache reporting "0/0 hits" reads like a run that never hit it.
    let cache_clause = if cache_enabled {
        format!(
            "; gop cache {}/{} hits",
            report.stats.gop_cache_hits,
            report.stats.gop_cache_hits + report.stats.gop_cache_misses
        )
    } else {
        String::new()
    };
    println!(
        "stats: decoded {} encoded {} copied {} packets ({} bytes){cache_clause}; dde rewrites {}",
        report.stats.frames_decoded,
        report.stats.frames_encoded,
        report.stats.packets_copied,
        report.stats.bytes_copied,
        report.dde_rewrites
    );
    if render_cache_enabled {
        let c = report.stats.cache;
        println!(
            "render cache: {} result hit(s), {} segment hit(s), {} bytes reused, {} eviction(s)",
            c.result_hits, c.segment_hits, c.bytes_reused, c.evictions
        );
    }
    for w in &report.check.warnings {
        println!("warning: {w}");
    }
    for fault in &report.errors {
        println!(
            "fault: segment {} (frames {}..{}) {} after {} retr{}: [{}] {}",
            fault.seg_index,
            fault.abs_start,
            fault.abs_start + fault.frames,
            fault.action.name(),
            fault.retries,
            if fault.retries == 1 { "y" } else { "ies" },
            fault.kind,
            fault.error
        );
    }
    if let Some(path) = error_report_path {
        let json = serde_json::to_string_pretty(&report.errors)
            .map_err(|e| format!("serializing error report: {e}"))?;
        std::fs::write(&path, json).map_err(|e| format!("writing {path}: {e}"))?;
        println!(
            "error report: wrote {path} ({} fault(s))",
            report.errors.len()
        );
    }
    if let Some(path) = trace_path {
        let trace = trace.expect("traced run when --trace is set");
        std::fs::write(&path, trace.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        println!(
            "trace: wrote {path} ({} rewrite event(s), {} segment(s))",
            trace.rewrites.events.len(),
            trace.exec.segments.len()
        );
    }
    Ok(())
}

/// `v2v serve` / `v2v worker`: bind the address, then serve until
/// killed. The worker role is the slim daemon a `--workers`
/// coordinator dispatches segments to.
fn cmd_serve(args: &[String], role: ServeRole) -> Result<(), CliError> {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut cache_dir: Option<String> = None;
    let mut cache_budget = DEFAULT_CACHE_BUDGET;
    let mut mem_cache_budget = 0u64;
    let mut db_path: Option<String> = None;
    let mut store_dir: Option<String> = None;
    let mut store_budget = u64::MAX;
    let mut compact_secs = 0u64;
    let mut config = ServeConfig {
        role,
        ..ServeConfig::default()
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workers" => {
                i += 1;
                if role == ServeRole::Worker {
                    return Err(
                        "--workers only applies to 'v2v serve' (workers do not fan out)"
                            .to_string()
                            .into(),
                    );
                }
                config.workers = args
                    .get(i)
                    .ok_or("missing value after --workers")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--addr" => {
                i += 1;
                addr = args.get(i).ok_or("missing value after --addr")?.clone();
            }
            "--cache-dir" => {
                i += 1;
                cache_dir = Some(
                    args.get(i)
                        .ok_or("missing value after --cache-dir")?
                        .clone(),
                );
            }
            "--cache-budget" => {
                i += 1;
                cache_budget = args
                    .get(i)
                    .ok_or("missing value after --cache-budget")?
                    .parse()
                    .map_err(|e| format!("bad --cache-budget value: {e}"))?;
            }
            "--mem-cache-budget" => {
                i += 1;
                mem_cache_budget = args
                    .get(i)
                    .ok_or("missing value after --mem-cache-budget")?
                    .parse()
                    .map_err(|e| format!("bad --mem-cache-budget value: {e}"))?;
            }
            "--store-dir" => {
                i += 1;
                if role == ServeRole::Worker {
                    return Err("--store-dir only applies to 'v2v serve' (workers fall back to the originals their coordinator references)".to_string().into());
                }
                store_dir = Some(
                    args.get(i)
                        .ok_or("missing value after --store-dir")?
                        .clone(),
                );
            }
            "--store-budget" => {
                i += 1;
                store_budget = args
                    .get(i)
                    .ok_or("missing value after --store-budget")?
                    .parse()
                    .map_err(|e| format!("bad --store-budget value: {e}"))?;
            }
            "--compact-secs" => {
                i += 1;
                compact_secs = args
                    .get(i)
                    .ok_or("missing value after --compact-secs")?
                    .parse()
                    .map_err(|e| format!("bad --compact-secs value: {e}"))?;
            }
            "--no-share" => config.work_sharing = false,
            "--max-concurrent" => {
                i += 1;
                config.max_concurrent = args
                    .get(i)
                    .ok_or("missing value after --max-concurrent")?
                    .parse()
                    .map_err(|e| format!("bad --max-concurrent value: {e}"))?;
            }
            "--queue-depth" => {
                i += 1;
                config.queue_depth = args
                    .get(i)
                    .ok_or("missing value after --queue-depth")?
                    .parse()
                    .map_err(|e| format!("bad --queue-depth value: {e}"))?;
            }
            "--threads" => {
                i += 1;
                config.engine.exec.num_threads = args
                    .get(i)
                    .ok_or("missing value after --threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads value: {e}"))?;
            }
            "--db" => {
                i += 1;
                db_path = Some(args.get(i).ok_or("missing value after --db")?.clone());
            }
            "--json" => {}
            other => return Err(format!("unexpected argument '{other}'").into()),
        }
        i += 1;
    }
    if mem_cache_budget > 0 && cache_dir.is_none() {
        return Err("--mem-cache-budget requires --cache-dir".into());
    }
    if let Some(dir) = &cache_dir {
        config.engine.render_cache = Some(open_render_cache(dir, cache_budget, mem_cache_budget)?);
    }
    if (store_budget != u64::MAX || compact_secs > 0) && store_dir.is_none() {
        return Err("--store-budget/--compact-secs require --store-dir".into());
    }
    if let Some(dir) = &store_dir {
        config.store = Some(v2v_serve::StoreServeConfig {
            root: dir.into(),
            budget_bytes: store_budget,
            compact_interval: std::time::Duration::from_secs(compact_secs),
        });
    }
    let work_sharing = config.work_sharing;
    let workers = config.workers.clone();
    let mut server = V2vServer::new(Catalog::new()).with_config(config);
    if let Some(db_path) = db_path {
        server = server.with_database(load_database(&db_path)?);
    }
    let handle = server
        .start(&addr)
        .map_err(|e| CliError::from(V2vError::from(e)))?;
    // The smoke tests parse this line for the resolved ephemeral port.
    println!("listening on {}", handle.addr());
    match &cache_dir {
        Some(dir) if mem_cache_budget > 0 => println!(
            "render cache: {dir} (budget {cache_budget} bytes, mem tier {mem_cache_budget} bytes)"
        ),
        Some(dir) => println!("render cache: {dir} (budget {cache_budget} bytes)"),
        None => println!("render cache: disabled (pass --cache-dir to enable)"),
    }
    if let Some(dir) = &store_dir {
        let budget = if store_budget == u64::MAX {
            "unbounded".to_string()
        } else {
            format!("{store_budget} bytes")
        };
        let cadence = if compact_secs > 0 {
            format!("every {compact_secs}s")
        } else {
            "on demand (POST /store/compact)".to_string()
        };
        println!("variant store: {dir} (budget {budget}, compaction {cadence})");
    }
    if !work_sharing {
        println!("work sharing: disabled (--no-share)");
    }
    match role {
        ServeRole::Worker => println!("role: worker (renders segments for a coordinator)"),
        ServeRole::Frontend if !workers.is_empty() => {
            println!("workers: {}", workers.join(","));
        }
        ServeRole::Frontend => {}
    }
    // Serve until the process is killed.
    loop {
        std::thread::park();
    }
}

fn cmd_explain(args: &[String]) -> Result<(), CliError> {
    let mut spec_path = None;
    let mut db_path = None;
    let mut analyze = false;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--db" => {
                i += 1;
                db_path = Some(args.get(i).ok_or("missing value after --db")?.clone());
            }
            "--analyze" => analyze = true,
            "--json" => json = true,
            other if spec_path.is_none() => spec_path = Some(other.to_string()),
            other => return Err(format!("unexpected argument '{other}'").into()),
        }
        i += 1;
    }
    let spec_path = spec_path.ok_or("missing spec path")?;
    let spec = load_spec(&spec_path)?;
    let mut engine = V2vEngine::new(Catalog::new());
    if let Some(db_path) = db_path {
        engine = engine.with_database(load_database(&db_path)?);
    }
    if analyze {
        let report = engine
            .explain_analyze(&spec)
            .map_err(|e| CliError::from(V2vError::from(e)))?;
        if json {
            println!("{}", report.to_json());
        } else {
            print!("{}", report.pretty());
        }
    } else {
        let report = engine
            .explain(&spec)
            .map_err(|e| CliError::from(V2vError::from(e)))?;
        if json {
            println!("{}", report.to_json());
        } else {
            print!("{}", report.pretty());
        }
    }
    Ok(())
}

fn cmd_check(args: &[String]) -> Result<(), CliError> {
    let spec_path = args.first().ok_or("missing spec path")?;
    let spec = load_spec(spec_path)?;
    let mut engine = V2vEngine::new(Catalog::new());
    engine
        .bind(&spec)
        .map_err(|e| CliError::from(V2vError::from(e)))?;
    println!("--- spec (paper notation) ---");
    print!("{}", v2v_spec::to_dsl_string(&spec));
    println!();
    match v2v_spec::check_spec(&spec, &engine.catalog().source_infos()) {
        Ok(report) => {
            println!("spec OK");
            for (video, req) in &report.required {
                println!("  {video}: requires {} frames ({req})", req.count());
            }
            for w in &report.warnings {
                println!("  warning: {w}");
            }
            Ok(())
        }
        Err(errors) => {
            for e in &errors {
                eprintln!("  error: {e}");
            }
            Err(CliError {
                message: format!("{} check error(s)", errors.len()),
                kind: Some(ErrorKind::Plan),
            })
        }
    }
}

fn cmd_info(args: &[String]) -> Result<(), CliError> {
    let path = args.first().ok_or("missing video path")?;
    let s = v2v_container::read_svc(path).map_err(|e| CliError::from(V2vError::from(e)))?;
    let p = s.params();
    println!("{path}:");
    println!("  frames     : {}", s.len());
    println!("  frame type : {}", p.frame_ty);
    println!("  fps        : {}", s.frame_dur().recip());
    println!(
        "  gop        : {} frames (quantizer {})",
        p.gop_size, p.quantizer
    );
    println!("  keyframes  : {}", s.keyframe_indices().len());
    println!("  bytes      : {}", s.byte_size());
    println!(
        "  duration   : {:.2}s from {}",
        (s.frame_dur() * v2v_time::Rational::from_int(s.len() as i64)).to_f64(),
        s.start()
    );
    Ok(())
}

/// Default variant-store directory for the `store` subcommands and
/// `run --store`.
const DEFAULT_STORE_DIR: &str = "v2v-store";

fn store_cli_error(e: v2v_store::StoreError) -> CliError {
    CliError {
        message: e.to_string(),
        kind: Some(ErrorKind::Io),
    }
}

fn open_store(dir: &str) -> Result<v2v_store::SourceStore, CliError> {
    v2v_store::SourceStore::open(dir).map_err(store_cli_error)
}

/// `v2v inspect`: the physical layout the variant selector reasons
/// about — GOP length distribution, keyframe density, bytes per frame,
/// and whether the container is live (append-aware) or sealed.
fn cmd_inspect(args: &[String]) -> Result<(), CliError> {
    let path = args.first().ok_or("missing video path")?;
    // Sniff the magic directly: `read_svc` accepts both formats, so
    // live-vs-sealed is only visible in the header bytes.
    let head = std::fs::read(path).map_err(|e| CliError {
        message: format!("reading {path}: {e}"),
        kind: Some(ErrorKind::Io),
    })?;
    let live = head.starts_with(b"SVCL");
    let s = v2v_container::read_svc(path).map_err(|e| CliError::from(V2vError::from(e)))?;
    if s.is_empty() {
        return Err(format!("{path} holds no frames").into());
    }
    let kf = s.keyframe_indices();
    // Each GOP runs from one keyframe to the next (the last runs to the
    // end of the stream).
    let mut gop_lens: Vec<usize> = kf.windows(2).map(|w| w[1] - w[0]).collect();
    if let Some(&last) = kf.last() {
        gop_lens.push(s.len() - last);
    }
    let min = gop_lens.iter().min().copied().unwrap_or(0);
    let max = gop_lens.iter().max().copied().unwrap_or(0);
    let mean = gop_lens.iter().sum::<usize>() as f64 / gop_lens.len().max(1) as f64;
    println!("{path}:");
    println!("  sealed     : {}", if live { "no (live)" } else { "yes" });
    println!("  frames     : {}", s.len());
    println!("  gops       : {}", gop_lens.len());
    println!(
        "  gop length : min {min} / mean {mean:.1} / max {max} (declared {})",
        s.params().gop_size
    );
    println!(
        "  keyframes  : {} ({:.4} per frame)",
        kf.len(),
        kf.len() as f64 / s.len() as f64
    );
    println!(
        "  bytes/frame: {:.1} ({} bytes total)",
        s.byte_size() as f64 / s.len() as f64,
        s.byte_size()
    );
    Ok(())
}

/// `v2v store ls|materialize|drop`: offline variant-store management.
/// The same store directory can then be handed to `run --store` or
/// `serve --store-dir`.
fn cmd_store(args: &[String]) -> Result<(), CliError> {
    let Some(op) = args.first().map(String::as_str) else {
        return Err("store needs a subcommand: ls | materialize | drop".into());
    };
    let mut store_dir = DEFAULT_STORE_DIR.to_string();
    let mut positional: Vec<String> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--store" => {
                i += 1;
                store_dir = args.get(i).ok_or("missing value after --store")?.clone();
            }
            "--json" => {}
            other if other.starts_with("--") => {
                return Err(format!("unexpected argument '{other}'").into())
            }
            other => positional.push(other.to_string()),
        }
        i += 1;
    }
    let parse_kind = |s: &str| {
        v2v_plan::VariantKind::parse(s)
            .filter(|k| !k.is_original())
            .ok_or_else(|| CliError::from(format!("bad variant kind '{s}' (dense|archive|proxy)")))
    };
    match op {
        "ls" => {
            let store = open_store(&store_dir)?;
            let manifests = store.manifests().map_err(store_cli_error)?;
            if manifests.is_empty() {
                println!("{store_dir}: no managed sources");
                return Ok(());
            }
            println!("{store_dir}:");
            for m in &manifests {
                println!("  {} ({} committed frames):", m.name, m.covered_frames);
                for v in &m.variants {
                    println!(
                        "    {:<8} {} bytes, {} frames, gop {}{}",
                        v.kind.name(),
                        v.byte_size,
                        v.covered_frames,
                        v.params.gop_size,
                        if v.pinned { ", pinned" } else { "" }
                    );
                }
            }
            println!(
                "  total managed: {} bytes",
                store.managed_bytes().map_err(store_cli_error)?
            );
            Ok(())
        }
        "materialize" => {
            let [name, video_path, kind] = positional.as_slice() else {
                return Err("store materialize needs <name> <video.svc> <kind>".into());
            };
            let kind = parse_kind(kind)?;
            let original = v2v_container::read_svc(video_path)
                .map_err(|e| CliError::from(V2vError::from(e)))?;
            let store = open_store(&store_dir)?;
            let entry = store
                .materialize(name, &original, v2v_store::TranscodeSpec::for_kind(kind))
                .map_err(store_cli_error)?;
            println!(
                "materialized {name}@{}: {} frames, {} bytes (gop {}) in {store_dir}",
                kind.name(),
                entry.covered_frames,
                entry.byte_size,
                entry.params.gop_size
            );
            Ok(())
        }
        "drop" => {
            let [name, kind] = positional.as_slice() else {
                return Err("store drop needs <name> <kind>".into());
            };
            let kind = parse_kind(kind)?;
            let store = open_store(&store_dir)?;
            let dropped = store
                .drop_variant(name, kind, true)
                .map_err(store_cli_error)?;
            if dropped {
                println!("dropped {name}@{} from {store_dir}", kind.name());
            } else {
                println!("{name}@{} was not materialized", kind.name());
            }
            Ok(())
        }
        other => {
            Err(format!("unknown store subcommand '{other}' (ls | materialize | drop)").into())
        }
    }
}

/// Resolves `HOST:PORT` for the daemon-mode subcommands.
fn resolve_addr(s: &str) -> Result<std::net::SocketAddr, CliError> {
    use std::net::ToSocketAddrs;
    s.to_socket_addrs()
        .map_err(|e| CliError {
            message: format!("resolving {s}: {e}"),
            kind: Some(ErrorKind::Io),
        })?
        .next()
        .ok_or_else(|| CliError {
            message: format!("{s} resolved to no address"),
            kind: Some(ErrorKind::Io),
        })
}

/// Maps a daemon HTTP status back onto the unified error taxonomy so
/// remote failures exit with the same codes as local ones.
fn kind_for_status(status: u16) -> ErrorKind {
    match status {
        400 | 405 | 429 => ErrorKind::InvalidRequest,
        404 => ErrorKind::NotFound,
        422 => ErrorKind::CorruptData,
        _ => ErrorKind::Internal,
    }
}

/// `v2v append`: local mode commits GOPs onto a live `.svc` container;
/// `--to` mode POSTs them to a serving daemon's `/append/<name>`.
fn cmd_append(args: &[String]) -> Result<(), CliError> {
    let mut to: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--to" => {
                i += 1;
                to = Some(args.get(i).ok_or("missing value after --to")?.clone());
            }
            "--json" => {}
            other if other.starts_with("--") => {
                return Err(format!("unexpected argument '{other}'").into())
            }
            other => positional.push(other.to_string()),
        }
        i += 1;
    }
    let [target, more_path] = positional.as_slice() else {
        return Err(if to.is_some() {
            "append --to needs <name> <more.svc>".into()
        } else {
            "append needs <live.svc> <more.svc>".into()
        });
    };
    // `read_svc` accepts sealed and live containers alike (a live
    // source yields its committed prefix), so any `.svc` can feed an
    // append.
    let more = v2v_container::read_svc(more_path).map_err(|e| CliError::from(V2vError::from(e)))?;
    if more.is_empty() {
        return Err(format!("{more_path} holds no frames").into());
    }
    match to {
        Some(to) => {
            let addr = resolve_addr(&to)?;
            let bytes = v2v_container::svc_to_bytes(&more)
                .map_err(|e| CliError::from(V2vError::from(e)))?;
            let resp = v2v_serve::http::client::request(
                addr,
                "POST",
                &format!("/append/{target}"),
                &bytes,
            )
            .map_err(|e| CliError {
                message: format!("POST /append/{target} to {to}: {e}"),
                kind: Some(ErrorKind::Io),
            })?;
            if resp.status != 200 {
                return Err(CliError {
                    message: format!(
                        "append rejected ({}): {}",
                        resp.status,
                        String::from_utf8_lossy(&resp.body).trim()
                    ),
                    kind: Some(kind_for_status(resp.status)),
                });
            }
            let info: serde_json::Value = serde_json::from_slice(&resp.body)
                .map_err(|e| format!("parsing append response: {e}"))?;
            println!(
                "appended {} frames to '{target}' on {to}: {} total (catalog v{})",
                more.len(),
                info.get("frames").and_then(|f| f.as_u64()).unwrap_or(0),
                info.get("version").and_then(|v| v.as_u64()).unwrap_or(0),
            );
        }
        None => {
            let mut writer = if std::path::Path::new(target).exists() {
                v2v_container::LiveWriter::open(target)
                    .map_err(|e| CliError::from(V2vError::from(e)))?
            } else {
                v2v_container::LiveWriter::create(
                    target,
                    *more.params(),
                    more.start(),
                    more.frame_dur(),
                )
                .map_err(|e| CliError::from(V2vError::from(e)))?
            };
            let before = writer.committed();
            writer
                .append_stream(&more)
                .map_err(|e| CliError::from(V2vError::from(e)))?;
            println!(
                "appended {} frames to {target}: {} committed (next instant {})",
                writer.committed() - before,
                writer.committed(),
                writer.next_pts()
            );
        }
    }
    Ok(())
}

/// `v2v subscribe`: registers a spec with a daemon's `POST /subscribe`
/// and applies delta records as they arrive, keeping `-o` byte-identical
/// to a cold run of the spec at the current source length.
fn cmd_subscribe(args: &[String]) -> Result<(), CliError> {
    let mut spec_path: Option<String> = None;
    let mut to = "127.0.0.1:7878".to_string();
    let mut out_path: Option<String> = None;
    let mut max_deltas: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--to" => {
                i += 1;
                to = args.get(i).ok_or("missing value after --to")?.clone();
            }
            "-o" | "--output" => {
                i += 1;
                out_path = Some(args.get(i).ok_or("missing value after -o")?.clone());
            }
            "--max-deltas" => {
                i += 1;
                max_deltas = Some(
                    args.get(i)
                        .ok_or("missing value after --max-deltas")?
                        .parse()
                        .map_err(|e| format!("bad --max-deltas value: {e}"))?,
                );
            }
            "--json" => {}
            other if spec_path.is_none() => spec_path = Some(other.to_string()),
            other => return Err(format!("unexpected argument '{other}'").into()),
        }
        i += 1;
    }
    let spec_path = spec_path.ok_or("missing spec path")?;
    let spec = load_spec(&spec_path)?;
    let addr = resolve_addr(&to)?;
    let mut resp =
        v2v_serve::http::client::open_stream(addr, "POST", "/subscribe", spec.to_json().as_bytes())
            .map_err(|e| CliError {
                message: format!("POST /subscribe to {to}: {e}"),
                kind: Some(ErrorKind::Io),
            })?;
    if resp.status != 200 {
        use std::io::Read;
        let mut body = Vec::new();
        let _ = resp.reader.read_to_end(&mut body);
        return Err(CliError {
            message: format!(
                "subscribe rejected ({}): {}",
                resp.status,
                String::from_utf8_lossy(&body).trim()
            ),
            kind: Some(kind_for_status(resp.status)),
        });
    }
    println!("subscribed to {to} (spec {spec_path})");
    let mut applier = v2v_serve::sub::DeltaApplier::new();
    let mut count = 0u64;
    loop {
        let record = v2v_serve::sub::read_delta(&mut resp.reader).map_err(|e| CliError {
            message: format!("reading delta stream: {e}"),
            kind: Some(ErrorKind::Io),
        })?;
        let Some((header, svc)) = record else {
            break; // server closed the subscription cleanly
        };
        let cumulative = applier.apply(&header, &svc).map_err(|e| CliError {
            message: format!("applying delta {}: {e}", header.seq),
            kind: Some(ErrorKind::CorruptData),
        })?;
        if let Some(out) = &out_path {
            v2v_container::write_svc(cumulative, out)
                .map_err(|e| CliError::from(V2vError::from(e)))?;
        }
        println!(
            "delta {}: splice at frame {}, {} frames ({} bytes) -> {} total (catalog v{})",
            header.seq,
            header.from_frame,
            header.frames,
            header.svc_len,
            cumulative.len(),
            header.version
        );
        count += 1;
        if max_deltas.is_some_and(|m| count >= m) {
            break;
        }
    }
    println!("subscription ended after {count} delta(s)");
    Ok(())
}

fn cmd_frame(args: &[String]) -> Result<(), CliError> {
    let path = args.first().ok_or("missing video path")?;
    let t: v2v_time::Rational = args
        .get(1)
        .ok_or("missing timestamp (seconds or n/d)")?
        .parse()
        .map_err(|e| format!("bad timestamp: {e}"))?;
    let out_path = match (args.get(2).map(String::as_str), args.get(3)) {
        (Some("-o"), Some(p)) => p.clone(),
        (None, _) => "frame.ppm".to_string(),
        other => return Err(format!("unexpected arguments {other:?}").into()),
    };
    let stream = v2v_container::read_svc(path).map_err(|e| CliError::from(V2vError::from(e)))?;
    let (frame, decoded) = stream
        .decode_frame_at(t)
        .map_err(|e| CliError::from(V2vError::from(e)))?;
    v2v_frame::ppm::write_ppm(&frame, &out_path).map_err(|e| e.to_string())?;
    println!(
        "wrote {out_path}: frame at {t} ({}x{}, {decoded} packets decoded)",
        frame.width(),
        frame.height()
    );
    Ok(())
}
