//! Property-based tests for lowering and optimization: random specs must
//! lower to plans that cover the domain exactly, and optimization must
//! preserve coverage while only ever *reducing* the frames that need
//! rendering.

use proptest::prelude::*;
use v2v_codec::CodecParams;
use v2v_frame::FrameType;
use v2v_plan::{
    explain_logical, explain_physical, lower_spec, optimize, OptimizerConfig, PlanContext,
    SourceMeta,
};
use v2v_spec::builder::{blur, grid4, zoom};
use v2v_spec::{OutputSettings, RenderExpr, SpecBuilder};
use v2v_time::{r, Rational};

const SRC_FRAMES: u64 = 400;

fn output() -> OutputSettings {
    OutputSettings {
        frame_ty: FrameType::yuv420p(64, 64),
        frame_dur: r(1, 30),
        gop_size: 30,
        quantizer: 2,
    }
}

fn context(gop: u64) -> PlanContext {
    PlanContext::new().with_source(
        "src",
        SourceMeta {
            params: CodecParams::new(FrameType::yuv420p(64, 64), gop as u32, 2),
            start: Rational::ZERO,
            frame_dur: r(1, 30),
            count: SRC_FRAMES,
            keyframes: (0..SRC_FRAMES).step_by(gop as usize).collect(),
        },
    )
}

#[derive(Clone, Debug)]
enum Seg {
    Clip(u8, u8),
    Blur(u8, u8),
    Zoom(u8, u8),
    Grid(u8, u8),
}

fn seg_strategy() -> impl Strategy<Value = Seg> {
    // Starts up to frame 120, lengths up to 90 frames: four grid cells at
    // +0/+60/+120/+180 stay within the 400-frame source.
    prop_oneof![
        (0u8..120, 2u8..90).prop_map(|(s, l)| Seg::Clip(s, l)),
        (0u8..120, 2u8..90).prop_map(|(s, l)| Seg::Blur(s, l)),
        (0u8..120, 2u8..90).prop_map(|(s, l)| Seg::Zoom(s, l)),
        (0u8..120, 2u8..90).prop_map(|(s, l)| Seg::Grid(s, l)),
    ]
}

fn build(segs: &[Seg]) -> v2v_spec::Spec {
    let mut b = SpecBuilder::new(output()).video("src", "src.svc");
    for seg in segs {
        match *seg {
            Seg::Clip(s, l) => {
                b = b.append_clip("src", r(s as i64, 30), r(l as i64, 30));
            }
            Seg::Blur(s, l) => {
                b = b.append_filtered("src", r(s as i64, 30), r(l as i64, 30), |e| blur(e, 1.0));
            }
            Seg::Zoom(s, l) => {
                b = b.append_filtered("src", r(s as i64, 30), r(l as i64, 30), |e| {
                    zoom(blur(e, 0.5), 1.5)
                });
            }
            Seg::Grid(s, l) => {
                let start = s as i64;
                b = b.append_with(r(l as i64, 30), move |out_start| {
                    let cell = |off: i64| RenderExpr::FrameRef {
                        video: "src".into(),
                        time: v2v_time::AffineTimeMap::shift(r(start + off, 30) - out_start),
                    };
                    grid4(cell(0), cell(60), cell(120), cell(180))
                });
            }
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lowering_covers_domain(segs in prop::collection::vec(seg_strategy(), 1..5)) {
        let spec = build(&segs);
        let plan = lower_spec(&spec).unwrap();
        prop_assert_eq!(plan.n_frames, spec.time_domain.count());
        // Segments tile the output contiguously.
        let mut expect = 0;
        for s in &plan.segments {
            prop_assert_eq!(s.out_start, expect);
            prop_assert!(s.count > 0);
            expect += s.count;
        }
        prop_assert_eq!(expect, plan.n_frames);
    }

    #[test]
    fn optimized_plans_are_valid(
        segs in prop::collection::vec(seg_strategy(), 1..5),
        gop in prop_oneof![Just(10u64), Just(30), Just(240)],
        stream_copy in any::<bool>(),
        smart_cut in any::<bool>(),
        shard in any::<bool>(),
    ) {
        let spec = build(&segs);
        let plan = lower_spec(&spec).unwrap();
        let ctx = context(gop);
        let config = OptimizerConfig {
            stream_copy,
            smart_cut,
            shard,
            ..Default::default()
        };
        let phys = optimize(&plan, &ctx, &config).unwrap();
        prop_assert_eq!(phys.validate(), Ok(()));
        prop_assert_eq!(
            phys.stats.frames_rendered + phys.stats.frames_copied,
            phys.n_frames
        );
        if !stream_copy {
            prop_assert_eq!(phys.stats.frames_copied, 0);
        }
        // Explain never panics and mentions every copy.
        let text = explain_physical(&phys);
        prop_assert_eq!(
            text.matches("◆").count() as u64,
            phys.stats.copy_segments
        );
        let _ = explain_logical(&plan);
    }

    #[test]
    fn more_optimizations_never_render_more(
        segs in prop::collection::vec(seg_strategy(), 1..5),
        gop in prop_oneof![Just(10u64), Just(30)],
    ) {
        let spec = build(&segs);
        let plan = lower_spec(&spec).unwrap();
        let ctx = context(gop);
        let full = optimize(&plan, &ctx, &OptimizerConfig::default()).unwrap();
        let no_cut = optimize(
            &plan,
            &ctx,
            &OptimizerConfig { smart_cut: false, ..Default::default() },
        )
        .unwrap();
        let none = optimize(&plan, &ctx, &OptimizerConfig::fusion_only()).unwrap();
        prop_assert!(full.stats.frames_rendered <= no_cut.stats.frames_rendered);
        prop_assert!(no_cut.stats.frames_rendered <= none.stats.frames_rendered);
        prop_assert_eq!(none.stats.frames_rendered, none.n_frames);
    }
}
