//! Physical plans: what the execution engine runs.

use crate::program::{FrameProgram, InputClip};
use serde::{Deserialize, Serialize};
use v2v_codec::CodecParams;
use v2v_time::Rational;

/// How one output segment is produced.
#[derive(Clone, Debug, PartialEq)]
pub enum SegPlan {
    /// Fused decode → transform → encode pass (clip pulled into the
    /// filter; no intermediate stream).
    Render {
        /// The per-frame program.
        program: FrameProgram,
        /// Source bindings for the program's input slots.
        inputs: Vec<InputClip>,
    },
    /// Copy compressed packets `[src_from, src_to)` of `video` directly
    /// into the output — no raster work at all.
    StreamCopy {
        /// The source video.
        video: String,
        /// First source frame index (always a keyframe).
        src_from: u64,
        /// One past the last source frame index.
        src_to: u64,
    },
}

impl SegPlan {
    /// `true` for stream-copy segments.
    pub fn is_copy(&self) -> bool {
        matches!(self, SegPlan::StreamCopy { .. })
    }

    /// Stable kind name (`render` or `stream_copy`) for traces and
    /// explain output.
    pub fn kind_name(&self) -> &'static str {
        match self {
            SegPlan::Render { .. } => "render",
            SegPlan::StreamCopy { .. } => "stream_copy",
        }
    }
}

/// One physical output segment.
#[derive(Clone, Debug, PartialEq)]
pub struct Segment {
    /// First output frame index.
    pub out_start: u64,
    /// Number of output frames.
    pub count: u64,
    /// Production strategy.
    pub plan: SegPlan,
}

/// Optimizer bookkeeping: what fired where (consumed by tests, explain,
/// and the ablation benches).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanStats {
    /// Output frames produced by fused rendering.
    pub frames_rendered: u64,
    /// Output frames produced by stream copy.
    pub frames_copied: u64,
    /// Render segments (after sharding).
    pub render_segments: u64,
    /// Stream-copy segments.
    pub copy_segments: u64,
    /// Smart cuts applied (clip split into re-encoded head + copied rest).
    pub smart_cuts: u64,
    /// Filter pairs merged by operator merging.
    pub merged_filters: u64,
    /// Identity transforms elided.
    pub elided_identities: u64,
    /// Extra segments introduced by temporal sharding.
    pub shards: u64,
}

/// A complete physical plan.
#[derive(Clone, Debug, PartialEq)]
pub struct PhysicalPlan {
    /// Ordered segments covering `0..n_frames`.
    pub segments: Vec<Segment>,
    /// Resolved output stream parameters. Pure clip/splice plans inherit
    /// the source parameters (enabling copies); rendering plans use the
    /// spec's output settings.
    pub out_params: CodecParams,
    /// Output frame duration.
    pub frame_dur: Rational,
    /// Domain instant of output frame 0 (program/data expressions are
    /// evaluated at domain instants).
    pub domain_start: Rational,
    /// Total output frames.
    pub n_frames: u64,
    /// What the optimizer did.
    pub stats: PlanStats,
}

impl PhysicalPlan {
    /// Domain instant of output frame `i`.
    pub fn instant_of(&self, i: u64) -> Rational {
        self.domain_start + self.frame_dur * Rational::from_int(i as i64)
    }

    /// Carves segment `seg_index` out as a standalone single-segment
    /// plan, preserving the domain instants the segment's frames are
    /// evaluated at.
    ///
    /// The carved plan starts its output at frame 0 but shifts
    /// `domain_start` to `instant_of(seg.out_start)`, so frame `k` of
    /// the sub-plan sees exactly the domain instant frame
    /// `seg.out_start + k` of the parent plan sees. Programs and data
    /// expressions are pure functions of the domain instant, which is
    /// what makes a remotely rendered carve byte-identical to the local
    /// render of the same segment.
    pub fn carve_segment(&self, seg_index: usize) -> Option<PhysicalPlan> {
        let seg = self.segments.get(seg_index)?;
        Some(PhysicalPlan {
            segments: vec![Segment {
                out_start: 0,
                count: seg.count,
                plan: seg.plan.clone(),
            }],
            out_params: self.out_params,
            frame_dur: self.frame_dur,
            domain_start: self.instant_of(seg.out_start),
            n_frames: seg.count,
            stats: PlanStats::default(),
        })
    }

    /// Fraction of output frames served by stream copy.
    pub fn copy_fraction(&self) -> f64 {
        if self.n_frames == 0 {
            return 0.0;
        }
        self.stats.frames_copied as f64 / self.n_frames as f64
    }

    /// Validates structural invariants (contiguous coverage, copy
    /// lengths). Used by tests and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        let mut expect = 0u64;
        for s in &self.segments {
            if s.out_start != expect {
                return Err(format!(
                    "segment gap: expected out_start {expect}, got {}",
                    s.out_start
                ));
            }
            if s.count == 0 {
                return Err("empty segment".into());
            }
            if let SegPlan::StreamCopy {
                src_from, src_to, ..
            } = &s.plan
            {
                if src_to - src_from != s.count {
                    return Err("copy length mismatch".into());
                }
            }
            expect += s.count;
        }
        if expect != self.n_frames {
            return Err(format!(
                "plan covers {expect} frames, output needs {}",
                self.n_frames
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v2v_frame::FrameType;
    use v2v_time::r;

    fn params() -> CodecParams {
        CodecParams::new(FrameType::yuv420p(64, 64), 30, 0)
    }

    #[test]
    fn validation_catches_gaps() {
        let plan = PhysicalPlan {
            segments: vec![Segment {
                out_start: 5,
                count: 5,
                plan: SegPlan::StreamCopy {
                    video: "a".into(),
                    src_from: 0,
                    src_to: 5,
                },
            }],
            out_params: params(),
            frame_dur: r(1, 30),
            domain_start: Rational::ZERO,
            n_frames: 10,
            stats: PlanStats::default(),
        };
        assert!(plan.validate().is_err());
    }

    #[test]
    fn validation_catches_copy_length_mismatch() {
        let plan = PhysicalPlan {
            segments: vec![Segment {
                out_start: 0,
                count: 10,
                plan: SegPlan::StreamCopy {
                    video: "a".into(),
                    src_from: 0,
                    src_to: 5,
                },
            }],
            out_params: params(),
            frame_dur: r(1, 30),
            domain_start: Rational::ZERO,
            n_frames: 10,
            stats: PlanStats::default(),
        };
        assert!(plan.validate().is_err());
    }

    #[test]
    fn carve_preserves_domain_instants() {
        let plan = PhysicalPlan {
            segments: vec![
                Segment {
                    out_start: 0,
                    count: 5,
                    plan: SegPlan::StreamCopy {
                        video: "a".into(),
                        src_from: 0,
                        src_to: 5,
                    },
                },
                Segment {
                    out_start: 5,
                    count: 5,
                    plan: SegPlan::StreamCopy {
                        video: "a".into(),
                        src_from: 5,
                        src_to: 10,
                    },
                },
            ],
            out_params: params(),
            frame_dur: r(1, 30),
            domain_start: r(7, 2),
            n_frames: 10,
            stats: PlanStats::default(),
        };
        let sub = plan.carve_segment(1).unwrap();
        assert!(sub.validate().is_ok());
        assert_eq!(sub.n_frames, 5);
        assert_eq!(sub.segments.len(), 1);
        assert_eq!(sub.segments[0].out_start, 0);
        // Frame k of the carve sees the same domain instant as frame
        // out_start + k of the parent.
        for k in 0..5 {
            assert_eq!(sub.instant_of(k), plan.instant_of(5 + k));
        }
        assert!(plan.carve_segment(2).is_none());
    }

    #[test]
    fn copy_fraction() {
        let plan = PhysicalPlan {
            segments: vec![],
            out_params: params(),
            frame_dur: r(1, 30),
            domain_start: Rational::ZERO,
            n_frames: 0,
            stats: PlanStats {
                frames_copied: 30,
                ..Default::default()
            },
        };
        assert_eq!(plan.copy_fraction(), 0.0); // n_frames == 0 guard
    }
}
