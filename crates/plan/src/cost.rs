//! Plan cost estimation.
//!
//! The V2V optimizer is heuristic (paper §III-D), but a cost estimate is
//! still useful: `explain` can show *why* a plan is expected to win, and
//! tests can assert that optimization monotonically reduces estimated
//! cost. The model mirrors the execution engine's actual cost structure:
//!
//! * rendering a frame costs one decode + the program's per-frame ops +
//!   one encode, all scaled by pixel count;
//! * a cold render segment additionally decodes the GOP roll-in from the
//!   preceding source keyframe;
//! * a stream copy costs a per-packet constant (refcount bump + index
//!   entry) — orders of magnitude below raster work.

use crate::meta::PlanContext;
use crate::physical::{PhysicalPlan, SegPlan};
use crate::program::FrameProgram;
use serde::{Deserialize, Serialize};

/// Relative cost weights (arbitrary units; defaults calibrated so one
/// unit ≈ one 8-bit sample touched once).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost per pixel to decode one frame.
    pub decode_per_pixel: f64,
    /// Cost per pixel to encode one frame.
    pub encode_per_pixel: f64,
    /// Cost per pixel per program operator application.
    pub op_per_pixel: f64,
    /// Cost per copied packet.
    pub copy_per_packet: f64,
    /// Cost per compressed byte decoded (discriminates storage
    /// variants whose pixel geometry and roll-in tie; see
    /// [`crate::variant::select_variants`]).
    #[serde(default = "default_decode_per_byte")]
    pub decode_per_byte: f64,
}

fn default_decode_per_byte() -> f64 {
    0.1
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            decode_per_pixel: 1.0,
            encode_per_pixel: 1.5,
            op_per_pixel: 2.0,
            copy_per_packet: 50.0,
            decode_per_byte: default_decode_per_byte(),
        }
    }
}

/// An estimated plan cost, decomposed by source.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CostEstimate {
    /// Decode work (includes GOP roll-in), in model units.
    pub decode: f64,
    /// Per-frame transformation work.
    pub transform: f64,
    /// Encode work.
    pub encode: f64,
    /// Stream-copy work.
    pub copy: f64,
}

impl CostEstimate {
    /// Total estimated cost.
    pub fn total(&self) -> f64 {
        self.decode + self.transform + self.encode + self.copy
    }
}

/// Estimates the execution cost of a physical plan.
pub fn estimate(plan: &PhysicalPlan, ctx: &PlanContext, model: &CostModel) -> CostEstimate {
    let out_pixels =
        f64::from(plan.out_params.frame_ty.width) * f64::from(plan.out_params.frame_ty.height);
    let mut est = CostEstimate::default();
    for seg in &plan.segments {
        match &seg.plan {
            SegPlan::StreamCopy { .. } => {
                est.copy += seg.count as f64 * model.copy_per_packet;
            }
            SegPlan::Render { program, inputs } => {
                let n = seg.count as f64;
                // Decode each input across the segment plus its roll-in
                // from the previous keyframe.
                for clip in inputs {
                    let (pixels, rollin) = match ctx.source(&clip.video) {
                        Some(meta) => {
                            let px = f64::from(meta.params.frame_ty.width)
                                * f64::from(meta.params.frame_ty.height);
                            let rollin = clip
                                .time
                                .is_shift()
                                .then(|| {
                                    let t0 = plan.instant_of(seg.out_start);
                                    meta.index_of(clip.time.apply(t0)).map(|idx| {
                                        let kf = meta
                                            .keyframes
                                            .iter()
                                            .copied()
                                            .take_while(|&k| k <= idx)
                                            .last()
                                            .unwrap_or(0);
                                        (idx - kf) as f64
                                    })
                                })
                                .flatten()
                                .unwrap_or(0.0);
                            (px, rollin)
                        }
                        None => (out_pixels, 0.0),
                    };
                    est.decode += (n + rollin) * pixels * model.decode_per_pixel;
                }
                est.transform += n * out_pixels * op_count(program) as f64 * model.op_per_pixel;
                est.encode += n * out_pixels * model.encode_per_pixel;
            }
        }
    }
    est
}

fn op_count(p: &FrameProgram) -> usize {
    p.op_count().max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::lower_spec;
    use crate::meta::SourceMeta;
    use crate::optimizer::{optimize, OptimizerConfig};
    use v2v_codec::CodecParams;
    use v2v_frame::FrameType;
    use v2v_spec::builder::blur;
    use v2v_spec::{OutputSettings, SpecBuilder};
    use v2v_time::{r, Rational};

    fn setup(gop: u64) -> (crate::logical::LogicalPlan, PlanContext) {
        let output = OutputSettings {
            frame_ty: FrameType::yuv420p(64, 64),
            frame_dur: r(1, 30),
            gop_size: 30,
            quantizer: 2,
        };
        let spec = SpecBuilder::new(output)
            .video("a", "a.svc")
            .append_clip("a", r(1, 2), Rational::from_int(4))
            .append_filtered("a", r(6, 1), Rational::from_int(2), |e| blur(e, 1.0))
            .build();
        let meta = SourceMeta {
            params: CodecParams::new(FrameType::yuv420p(64, 64), 30, 2),
            start: Rational::ZERO,
            frame_dur: r(1, 30),
            count: 300,
            keyframes: (0..300).step_by(gop as usize).collect(),
        };
        (
            lower_spec(&spec).unwrap(),
            PlanContext::new().with_source("a", meta),
        )
    }

    #[test]
    fn optimization_reduces_estimated_cost() {
        let (logical, ctx) = setup(30);
        let model = CostModel::default();
        let full = optimize(&logical, &ctx, &OptimizerConfig::default()).unwrap();
        let none = optimize(&logical, &ctx, &OptimizerConfig::fusion_only()).unwrap();
        let c_full = estimate(&full, &ctx, &model);
        let c_none = estimate(&none, &ctx, &model);
        assert!(
            c_full.total() < c_none.total(),
            "optimized {c_full:?} must beat fusion-only {c_none:?}"
        );
        assert!(c_full.copy > 0.0);
        assert_eq!(c_none.copy, 0.0);
    }

    #[test]
    fn copies_are_orders_of_magnitude_cheaper() {
        let (logical, ctx) = setup(30);
        let model = CostModel::default();
        let plan = optimize(&logical, &ctx, &OptimizerConfig::default()).unwrap();
        let est = estimate(&plan, &ctx, &model);
        // Copy units per copied frame vs render units per rendered frame.
        let per_copy = est.copy / plan.stats.frames_copied.max(1) as f64;
        let per_render =
            (est.decode + est.transform + est.encode) / plan.stats.frames_rendered.max(1) as f64;
        assert!(per_render > 50.0 * per_copy, "{per_render} vs {per_copy}");
    }

    #[test]
    fn rollin_penalizes_mid_gop_entry() {
        // Same plan; sparser keyframes → more roll-in decode cost.
        let model = CostModel::default();
        let (logical, dense_ctx) = setup(30);
        let dense = optimize(&logical, &dense_ctx, &OptimizerConfig::fusion_only()).unwrap();
        let (logical2, sparse_ctx) = setup(150);
        let sparse = optimize(&logical2, &sparse_ctx, &OptimizerConfig::fusion_only()).unwrap();
        let d = estimate(&dense, &dense_ctx, &model);
        let s = estimate(&sparse, &sparse_ctx, &model);
        assert!(s.decode > d.decode, "{} vs {}", s.decode, d.decode);
    }
}
