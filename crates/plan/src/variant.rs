//! Physical storage variants (multi-variant source store, VSS-style).
//!
//! A catalog source may be stored in several physical **variants**: the
//! original bitstream plus re-encodes that trade bytes for seek cost —
//! a keyframe-dense re-encode (cheap smart cuts), a long-GOP archival
//! re-encode (small, cheap sequential scans), and a reduced-resolution
//! proxy (preview traffic). Pixel-identical variants decode
//! frame-for-frame identical to the original, so the planner may serve
//! any *render* read from whichever variant is cheapest; stream-copy
//! segments always splice original packets, and plan fingerprints and
//! cache keys never observe the variant choice.
//!
//! [`VariantFacts`] are the container-level facts the costing consults
//! (keyframe index, byte size, covered prefix); [`select_variants`] is
//! the post-optimization pass that retargets each render input clip at
//! the cheapest decode-sufficient variant.

use crate::cost::CostModel;
use crate::meta::PlanContext;
use crate::physical::{PhysicalPlan, SegPlan};
use crate::program::InputClip;
use serde::{Deserialize, Serialize};
use v2v_codec::CodecParams;

/// Which physical variant of a source a clip reads from.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(rename_all = "snake_case")]
pub enum VariantKind {
    /// The original bitstream as ingested.
    #[default]
    Original,
    /// Keyframe-dense re-encode: short GOPs, cheap smart cuts.
    Dense,
    /// Long-GOP archival re-encode: small, cheap sequential scans.
    Archive,
    /// Reduced-resolution proxy: decode-sufficient only when the
    /// query's output geometry equals the proxy geometry.
    Proxy,
}

impl VariantKind {
    /// All variant kinds, original first.
    pub const ALL: [VariantKind; 4] = [
        VariantKind::Original,
        VariantKind::Dense,
        VariantKind::Archive,
        VariantKind::Proxy,
    ];

    /// Stable lowercase name (manifest keys, CLI arguments, metrics).
    pub fn name(self) -> &'static str {
        match self {
            VariantKind::Original => "original",
            VariantKind::Dense => "dense",
            VariantKind::Archive => "archive",
            VariantKind::Proxy => "proxy",
        }
    }

    /// Parses [`Self::name`] output back into a kind.
    pub fn parse(s: &str) -> Option<VariantKind> {
        VariantKind::ALL.into_iter().find(|k| k.name() == s)
    }

    /// `true` for [`VariantKind::Original`] (serde skip helper).
    pub fn is_original(&self) -> bool {
        *self == VariantKind::Original
    }
}

impl std::fmt::Display for VariantKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Container-level facts about one materialized variant of a source.
///
/// The byte size and keyframe index come from the variant's own
/// bitstream; `covered_frames` bounds the original frame indices the
/// variant can serve (a variant transcoded from a live source covers
/// only the prefix committed at transcode time).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VariantFacts {
    /// Which variant these facts describe.
    pub kind: VariantKind,
    /// The variant's codec parameters.
    pub params: CodecParams,
    /// Sorted keyframe frame-indices within the variant bitstream.
    pub keyframes: Vec<u64>,
    /// Total compressed byte size of the variant bitstream.
    pub byte_size: u64,
    /// Number of leading original frames the variant covers. Reads at
    /// or past this index must fall back to another variant.
    pub covered_frames: u64,
}

impl VariantFacts {
    /// Frames decoded to reach `idx`: the roll-in from the nearest
    /// keyframe at or before `idx`, plus the frame itself.
    pub fn decode_span(&self, idx: u64) -> u64 {
        let i = self.keyframes.partition_point(|&k| k <= idx);
        let kf = if i == 0 { 0 } else { self.keyframes[i - 1] };
        idx - kf + 1
    }

    /// Mean compressed bytes per frame.
    pub fn bytes_per_frame(&self) -> f64 {
        self.byte_size as f64 / self.covered_frames.max(1) as f64
    }
}

/// How the planner chooses variants for render inputs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum VariantPolicy {
    /// Pick the cheapest decode-sufficient variant per clip (no-op when
    /// the context carries no variant facts).
    #[default]
    Auto,
    /// Always read the original.
    Disabled,
    /// Force one kind wherever it is decode-sufficient and covering;
    /// fall back to the original elsewhere.
    Force(VariantKind),
}

impl VariantPolicy {
    /// Parses `auto`, `off`, or a [`VariantKind::name`].
    pub fn parse(s: &str) -> Option<VariantPolicy> {
        match s {
            "auto" => Some(VariantPolicy::Auto),
            "off" | "disabled" => Some(VariantPolicy::Disabled),
            other => VariantKind::parse(other).map(VariantPolicy::Force),
        }
    }
}

/// Source frame-index range `[lo, hi]` a clip reads for a segment of
/// `count` output frames starting at plan instant `out_start`.
fn clip_read_range(
    plan: &PhysicalPlan,
    clip: &InputClip,
    out_start: u64,
    count: u64,
    ctx: &PlanContext,
) -> Option<(u64, u64)> {
    let meta = ctx.source(&clip.video)?;
    let a = clip.time.apply(plan.instant_of(out_start));
    let b = clip
        .time
        .apply(plan.instant_of(out_start + count.max(1) - 1));
    let (lo_t, hi_t) = if a <= b { (a, b) } else { (b, a) };
    Some((meta.index_of(lo_t)?, meta.index_of(hi_t)?))
}

/// Estimated decode cost of serving `[lo, hi]` from one variant:
/// frames decoded (roll-in to the keyframe before `lo`, then the span)
/// times per-frame pixel and byte terms.
fn variant_cost(facts: &VariantFacts, lo: u64, hi: u64, model: &CostModel) -> f64 {
    let rollin = facts.decode_span(lo) - 1;
    let frames = (hi - lo + 1 + rollin) as f64;
    let px = f64::from(facts.params.frame_ty.width) * f64::from(facts.params.frame_ty.height);
    frames * (px * model.decode_per_pixel + facts.bytes_per_frame() * model.decode_per_byte)
}

/// `true` if reading `[lo, hi]` from this variant yields byte-identical
/// query output: the variant must cover the range and be either
/// pixel-identical to the original or already conformed to the plan's
/// output geometry (so the render path's conform is the identity).
fn decode_sufficient(
    facts: &VariantFacts,
    source_ty: &CodecParams,
    out_params: &CodecParams,
    hi: u64,
) -> bool {
    facts.covered_frames > hi
        && (facts.params.frame_ty == source_ty.frame_ty
            || facts.params.frame_ty == out_params.frame_ty)
}

/// Retargets render input clips at the cheapest decode-sufficient
/// variant per segment. Runs after optimization; stream-copy segments
/// are never touched (they splice original packets). Returns the number
/// of clips retargeted away from the original.
pub fn select_variants(
    plan: &mut PhysicalPlan,
    ctx: &PlanContext,
    model: &CostModel,
    policy: VariantPolicy,
) -> u64 {
    if matches!(policy, VariantPolicy::Disabled) || ctx.variants.is_empty() {
        return 0;
    }
    let mut retargeted = 0;
    // Borrow dance: read ranges need `&plan` while clips need `&mut`.
    let instants: Vec<(u64, u64)> = plan
        .segments
        .iter()
        .map(|s| (s.out_start, s.count))
        .collect();
    let shell = plan.clone();
    for (seg, &(out_start, count)) in plan.segments.iter_mut().zip(&instants) {
        let SegPlan::Render { inputs, .. } = &mut seg.plan else {
            continue;
        };
        for clip in inputs.iter_mut() {
            clip.variant = VariantKind::Original;
            let Some(facts_list) = ctx.variants.get(&clip.video) else {
                continue;
            };
            let Some(meta) = ctx.source(&clip.video) else {
                continue;
            };
            let Some((lo, hi)) = clip_read_range(&shell, clip, out_start, count, ctx) else {
                continue;
            };
            let eligible =
                |f: &VariantFacts| decode_sufficient(f, &meta.params, &shell.out_params, hi);
            match policy {
                VariantPolicy::Disabled => {}
                VariantPolicy::Force(kind) => {
                    if kind != VariantKind::Original
                        && facts_list.iter().any(|f| f.kind == kind && eligible(f))
                    {
                        clip.variant = kind;
                        retargeted += 1;
                    }
                }
                VariantPolicy::Auto => {
                    let original = original_facts(facts_list, meta);
                    let mut best_kind = VariantKind::Original;
                    let mut best_cost = variant_cost(&original, lo, hi, model);
                    for f in facts_list.iter().filter(|f| !f.kind.is_original()) {
                        if !eligible(f) {
                            continue;
                        }
                        let c = variant_cost(f, lo, hi, model);
                        if c < best_cost {
                            best_cost = c;
                            best_kind = f.kind;
                        }
                    }
                    if best_kind != VariantKind::Original {
                        clip.variant = best_kind;
                        retargeted += 1;
                    }
                }
            }
        }
    }
    retargeted
}

/// Facts for the original bitstream: from the context's variant table
/// when recorded there, otherwise synthesized from [`SourceMeta`]
/// (byte size unknown → zero, which only weakens the byte term).
///
/// [`SourceMeta`]: crate::meta::SourceMeta
fn original_facts(facts_list: &[VariantFacts], meta: &crate::meta::SourceMeta) -> VariantFacts {
    facts_list
        .iter()
        .find(|f| f.kind.is_original())
        .cloned()
        .unwrap_or_else(|| VariantFacts {
            kind: VariantKind::Original,
            params: meta.params,
            keyframes: meta.keyframes.clone(),
            byte_size: 0,
            covered_frames: meta.count,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::lower_spec;
    use crate::meta::SourceMeta;
    use crate::optimizer::{optimize, OptimizerConfig};
    use v2v_frame::FrameType;
    use v2v_spec::builder::grayscale;
    use v2v_spec::{OutputSettings, SpecBuilder};
    use v2v_time::{r, Rational};

    fn facts(kind: VariantKind, gop: u64, count: u64, byte_size: u64) -> VariantFacts {
        facts_ty(kind, gop, count, byte_size, FrameType::yuv420p(64, 64))
    }

    fn facts_ty(
        kind: VariantKind,
        gop: u64,
        count: u64,
        byte_size: u64,
        ty: FrameType,
    ) -> VariantFacts {
        VariantFacts {
            kind,
            params: CodecParams::new(ty, gop as u32, 0),
            keyframes: (0..count).step_by(gop as usize).collect(),
            byte_size,
            covered_frames: count,
        }
    }

    fn ctx(count: u64, gop: u64) -> PlanContext {
        PlanContext::new().with_source(
            "src",
            SourceMeta {
                params: CodecParams::new(FrameType::yuv420p(64, 64), gop as u32, 0),
                start: Rational::ZERO,
                frame_dur: r(1, 30),
                count,
                keyframes: (0..count).step_by(gop as usize).collect(),
            },
        )
    }

    /// A forced-render (grayscale) clip of `[from, to)` seconds of
    /// `src`, unsharded so each shape is one segment.
    fn render_plan(ctx: &PlanContext, from: i64, to: i64) -> PhysicalPlan {
        let output = OutputSettings {
            frame_ty: FrameType::yuv420p(64, 64),
            frame_dur: r(1, 30),
            gop_size: 30,
            quantizer: 0,
        };
        let spec = SpecBuilder::new(output)
            .video("src", "src.svc")
            .append_filtered("src", r(from, 1), r(to - from, 1), grayscale)
            .build();
        let logical = lower_spec(&spec).unwrap();
        let config = OptimizerConfig {
            shard: false,
            ..OptimizerConfig::default()
        };
        optimize(&logical, ctx, &config).unwrap()
    }

    #[test]
    fn auto_prefers_dense_for_short_midgop_reads() {
        // 10 s @ 30 fps, GOP 300: a 1 s read starting at t=3 s rolls in
        // ~90 frames on the original but ~2 on the dense variant.
        let ctx = ctx(300, 300).with_variants(
            "src",
            vec![
                facts(VariantKind::Original, 300, 300, 300_000),
                facts(VariantKind::Dense, 4, 300, 900_000),
            ],
        );
        let mut plan = render_plan(&ctx, 3, 4);
        let n = select_variants(&mut plan, &ctx, &CostModel::default(), VariantPolicy::Auto);
        assert!(n >= 1, "expected at least one retarget, got {n}");
        for seg in &plan.segments {
            if let SegPlan::Render { inputs, .. } = &seg.plan {
                assert!(inputs.iter().all(|c| c.variant == VariantKind::Dense));
            }
        }
    }

    #[test]
    fn auto_prefers_archive_for_full_scans() {
        // Full-range scan from frame 0: roll-in is zero everywhere, so
        // the smaller archival bitstream wins on the byte term.
        let ctx = ctx(300, 30).with_variants(
            "src",
            vec![
                facts(VariantKind::Original, 30, 300, 600_000),
                facts(VariantKind::Archive, 300, 300, 200_000),
            ],
        );
        let mut plan = render_plan(&ctx, 0, 10);
        let n = select_variants(&mut plan, &ctx, &CostModel::default(), VariantPolicy::Auto);
        assert!(n >= 1);
        for seg in &plan.segments {
            if let SegPlan::Render { inputs, .. } = &seg.plan {
                assert!(inputs.iter().all(|c| c.variant == VariantKind::Archive));
            }
        }
    }

    #[test]
    fn coverage_gates_selection() {
        // Dense variant covers only the first 60 frames; a read past
        // that must stay on the original.
        let mut dense = facts(VariantKind::Dense, 4, 300, 900_000);
        dense.covered_frames = 60;
        let ctx = ctx(300, 300).with_variants(
            "src",
            vec![facts(VariantKind::Original, 300, 300, 300_000), dense],
        );
        let mut plan = render_plan(&ctx, 3, 4);
        let n = select_variants(&mut plan, &ctx, &CostModel::default(), VariantPolicy::Auto);
        assert_eq!(n, 0);
        let n = select_variants(
            &mut plan,
            &ctx,
            &CostModel::default(),
            VariantPolicy::Force(VariantKind::Dense),
        );
        assert_eq!(n, 0);
    }

    #[test]
    fn proxy_requires_output_geometry_match() {
        let proxy = facts_ty(
            VariantKind::Proxy,
            4,
            300,
            100_000,
            FrameType::yuv420p(32, 32),
        );
        let ctx = ctx(300, 300).with_variants(
            "src",
            vec![facts(VariantKind::Original, 300, 300, 300_000), proxy],
        );
        // Output geometry is the source's 64x64 → proxy ineligible.
        let mut plan = render_plan(&ctx, 3, 4);
        let n = select_variants(
            &mut plan,
            &ctx,
            &CostModel::default(),
            VariantPolicy::Force(VariantKind::Proxy),
        );
        assert_eq!(n, 0);
    }

    #[test]
    fn disabled_is_a_noop_and_force_falls_back() {
        let ctx = ctx(300, 300).with_variants(
            "src",
            vec![
                facts(VariantKind::Original, 300, 300, 300_000),
                facts(VariantKind::Dense, 4, 300, 900_000),
            ],
        );
        let mut plan = render_plan(&ctx, 3, 4);
        assert_eq!(
            select_variants(
                &mut plan,
                &ctx,
                &CostModel::default(),
                VariantPolicy::Disabled
            ),
            0
        );
        // Forcing a kind that was never materialized keeps the original.
        assert_eq!(
            select_variants(
                &mut plan,
                &ctx,
                &CostModel::default(),
                VariantPolicy::Force(VariantKind::Archive),
            ),
            0
        );
    }

    #[test]
    fn kind_and_policy_roundtrip() {
        for k in VariantKind::ALL {
            assert_eq!(VariantKind::parse(k.name()), Some(k));
        }
        assert_eq!(VariantPolicy::parse("auto"), Some(VariantPolicy::Auto));
        assert_eq!(VariantPolicy::parse("off"), Some(VariantPolicy::Disabled));
        assert_eq!(
            VariantPolicy::parse("dense"),
            Some(VariantPolicy::Force(VariantKind::Dense))
        );
        assert_eq!(VariantPolicy::parse("bogus"), None);
    }

    #[test]
    fn decode_span_rollin() {
        let f = facts(VariantKind::Original, 30, 300, 0);
        assert_eq!(f.decode_span(0), 1);
        assert_eq!(f.decode_span(29), 30);
        assert_eq!(f.decode_span(30), 1);
        assert_eq!(f.decode_span(95), 6);
    }
}
