//! Lowering specs to logical plans.
//!
//! "We form an unoptimized logical plan by mapping our declarative
//! definition to these operators where match operators create Concats,
//! function calls create Filters, and the indexing of videos with time
//! results in Clips." (§III-C)
//!
//! Lowering proceeds in two steps: match *hoisting* rewrites the
//! expression so every match is at the top (transforms distribute over
//! nested match arms), then each arm becomes one `Concat` segment per
//! contiguous run of output frames, with a chain of single-op `Filter`s
//! over `Clip` leaves — one `Filter` per function call, exactly the
//! unoptimized shape of Fig. 2.

use crate::program::{FrameProgram, InputClip, ProgArg};
use crate::PlanError;
use v2v_spec::{Arg, OutputSettings, RenderExpr, Spec};
use v2v_time::{AffineTimeMap, Rational, TimeRange, TimeSet};

/// A logical operator tree.
#[derive(Clone, Debug, PartialEq)]
pub enum LogicalNode {
    /// Extract source frames (`vid[a·t+b]` over the segment's instants).
    Clip {
        /// The source video.
        video: String,
        /// Output-instant → source-instant map.
        time: AffineTimeMap,
    },
    /// Per-frame transformation over upstream operator outputs.
    Filter {
        /// The per-frame program (`Input(i)` = `inputs[i]`).
        program: FrameProgram,
        /// Upstream operators.
        inputs: Vec<LogicalNode>,
    },
    /// Nested splice (introduced only by nested matches; flattened by the
    /// optimizer).
    Concat {
        /// Nested segments, relative to the global output timeline.
        segments: Vec<LogicalSegment>,
    },
}

/// One output-timeline segment of a `Concat`.
#[derive(Clone, Debug, PartialEq)]
pub struct LogicalSegment {
    /// First output frame index this segment produces.
    pub out_start: u64,
    /// Number of output frames.
    pub count: u64,
    /// The operator producing those frames.
    pub node: LogicalNode,
}

/// A complete logical plan: a top-level `Concat` plus output facts.
#[derive(Clone, Debug, PartialEq)]
pub struct LogicalPlan {
    /// Ordered, non-overlapping segments covering `0..n_frames`.
    pub segments: Vec<LogicalSegment>,
    /// Domain instant of output frame 0.
    pub domain_start: Rational,
    /// Output frame duration (== domain step).
    pub frame_dur: Rational,
    /// Total output frames.
    pub n_frames: u64,
    /// Output stream settings.
    pub output: OutputSettings,
}

impl LogicalPlan {
    /// Domain instant of output frame `i`.
    pub fn instant_of(&self, i: u64) -> Rational {
        self.domain_start + self.frame_dur * Rational::from_int(i as i64)
    }

    /// Total operator count (plan-size metric for tests and explain).
    pub fn op_count(&self) -> usize {
        fn count(node: &LogicalNode) -> usize {
            match node {
                LogicalNode::Clip { .. } => 1,
                LogicalNode::Filter { inputs, .. } => 1 + inputs.iter().map(count).sum::<usize>(),
                LogicalNode::Concat { segments } => {
                    1 + segments.iter().map(|s| count(&s.node)).sum::<usize>()
                }
            }
        }
        1 + self.segments.iter().map(|s| count(&s.node)).sum::<usize>()
    }
}

/// Match-free render expression (post-hoisting).
#[derive(Clone, Debug)]
enum FlatExpr {
    Ref {
        video: String,
        time: AffineTimeMap,
    },
    Call {
        op: v2v_spec::TransformOp,
        args: Vec<FlatArg>,
    },
}

#[derive(Clone, Debug)]
enum FlatArg {
    Frame(FlatExpr),
    Data(v2v_spec::DataExpr),
}

/// Hoists matches: returns `(when, match-free expr)` arms with
/// first-match-wins semantics already applied (arms are disjoint).
fn hoist(expr: &RenderExpr, domain: &TimeSet) -> Vec<(TimeSet, FlatExpr)> {
    if domain.is_empty() {
        return Vec::new();
    }
    match expr {
        RenderExpr::FrameRef { video, time } => vec![(
            domain.clone(),
            FlatExpr::Ref {
                video: video.clone(),
                time: *time,
            },
        )],
        RenderExpr::Match { arms } => {
            let mut out = Vec::new();
            let mut remaining = domain.clone();
            for arm in arms {
                let covered = remaining.intersect(&arm.when);
                if covered.is_empty() {
                    continue;
                }
                remaining = remaining.difference(&covered);
                out.extend(hoist(&arm.expr, &covered));
            }
            out
        }
        RenderExpr::Transform { op, args } => {
            // Start with the whole domain and one empty combo; fold each
            // frame argument's arms in (cartesian product restricted to
            // non-empty intersections).
            let mut combos: Vec<(TimeSet, Vec<FlatArg>)> = vec![(domain.clone(), Vec::new())];
            for arg in args {
                match arg {
                    Arg::Data(d) => {
                        for (_, acc) in &mut combos {
                            acc.push(FlatArg::Data(d.clone()));
                        }
                    }
                    Arg::Frame(e) => {
                        let mut next = Vec::new();
                        for (when, acc) in &combos {
                            for (sub_when, sub_expr) in hoist(e, when) {
                                let both = when.intersect(&sub_when);
                                if both.is_empty() {
                                    continue;
                                }
                                let mut acc2 = acc.clone();
                                acc2.push(FlatArg::Frame(sub_expr));
                                next.push((both, acc2));
                            }
                        }
                        combos = next;
                    }
                }
            }
            combos
                .into_iter()
                .map(|(when, args)| (when, FlatExpr::Call { op: *op, args }))
                .collect()
        }
    }
}

/// Builds the unoptimized node for a match-free expression: one `Filter`
/// per call, `Clip` per reference.
fn to_node(expr: &FlatExpr) -> LogicalNode {
    match expr {
        FlatExpr::Ref { video, time } => LogicalNode::Clip {
            video: video.clone(),
            time: *time,
        },
        FlatExpr::Call { op, args } => {
            let mut inputs = Vec::new();
            let mut prog_args = Vec::new();
            for a in args {
                match a {
                    FlatArg::Frame(e) => {
                        prog_args.push(ProgArg::Frame(FrameProgram::Input(inputs.len())));
                        inputs.push(to_node(e));
                    }
                    FlatArg::Data(d) => prog_args.push(ProgArg::Data(d.clone())),
                }
            }
            LogicalNode::Filter {
                program: FrameProgram::Op {
                    op: *op,
                    args: prog_args,
                },
                inputs,
            }
        }
    }
}

impl LogicalNode {
    /// All clip bindings reachable from this node, as program input order.
    pub fn collect_clips(&self, out: &mut Vec<InputClip>) {
        match self {
            LogicalNode::Clip { video, time } => out.push(InputClip::new(video.clone(), *time)),
            LogicalNode::Filter { inputs, .. } => {
                for i in inputs {
                    i.collect_clips(out);
                }
            }
            LogicalNode::Concat { segments } => {
                for s in segments {
                    s.node.collect_clips(out);
                }
            }
        }
    }
}

/// Lowers a (checked) spec to the unoptimized logical plan.
pub fn lower_spec(spec: &Spec) -> Result<LogicalPlan, PlanError> {
    let ranges = spec.time_domain.ranges();
    if ranges.len() != 1 {
        return Err(PlanError::NonUniformDomain(ranges.len()));
    }
    let domain = ranges[0];
    let step = if domain.count() > 1 {
        domain.step()
    } else {
        spec.output.frame_dur
    };
    if step != spec.output.frame_dur {
        return Err(PlanError::StepMismatch {
            domain: step,
            output: spec.output.frame_dur,
        });
    }
    let d0 = domain.start();
    let n = domain.count();
    let arms = hoist(&spec.render, &spec.time_domain);

    // Assign each output frame to its arm, then group consecutive frames
    // with the same arm into segments.
    let mut assignment: Vec<Option<usize>> = vec![None; n as usize];
    for (arm_idx, (when, _)) in arms.iter().enumerate() {
        for r in when.ranges() {
            for t in r.iter() {
                if let Some(i) = domain.index_of(t) {
                    let slot = &mut assignment[i as usize];
                    if slot.is_none() {
                        *slot = Some(arm_idx);
                    }
                }
            }
        }
    }
    if let Some(i) = assignment.iter().position(|a| a.is_none()) {
        return Err(PlanError::Uncovered(
            d0 + step * Rational::from_int(i as i64),
        ));
    }

    let mut segments = Vec::new();
    let mut i = 0u64;
    while i < n {
        let arm = assignment[i as usize].expect("coverage checked");
        let mut j = i + 1;
        while j < n && assignment[j as usize] == Some(arm) {
            j += 1;
        }
        segments.push(LogicalSegment {
            out_start: i,
            count: j - i,
            node: to_node(&arms[arm].1),
        });
        i = j;
    }

    Ok(LogicalPlan {
        segments,
        domain_start: d0,
        frame_dur: step,
        n_frames: n,
        output: spec.output,
    })
}

/// The domain instants of a segment as a range.
pub fn segment_domain(plan: &LogicalPlan, seg: &LogicalSegment) -> TimeRange {
    TimeRange::from_parts(plan.instant_of(seg.out_start), plan.frame_dur, seg.count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use v2v_frame::FrameType;
    use v2v_spec::builder::{blur, grid4, if_then_else};
    use v2v_spec::{DataExpr, SpecBuilder};
    use v2v_time::r;

    fn output() -> OutputSettings {
        OutputSettings::new(FrameType::yuv420p(64, 64), 30)
    }

    #[test]
    fn single_clip_lowers_to_one_segment() {
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .append_clip("a", r(10, 1), r(5, 1))
            .build();
        let plan = lower_spec(&spec).unwrap();
        assert_eq!(plan.n_frames, 150);
        assert_eq!(plan.segments.len(), 1);
        assert!(matches!(plan.segments[0].node, LogicalNode::Clip { .. }));
    }

    #[test]
    fn splice_lowers_to_ordered_segments() {
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .append_clip("a", r(0, 1), r(2, 1))
            .append_clip("a", r(10, 1), r(3, 1))
            .build();
        let plan = lower_spec(&spec).unwrap();
        assert_eq!(plan.segments.len(), 2);
        assert_eq!(plan.segments[0].out_start, 0);
        assert_eq!(plan.segments[0].count, 60);
        assert_eq!(plan.segments[1].out_start, 60);
        assert_eq!(plan.segments[1].count, 90);
    }

    #[test]
    fn transform_chain_is_one_filter_per_call() {
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .append_filtered("a", r(0, 1), r(1, 1), |e| blur(blur(e, 1.0), 2.0))
            .build();
        let plan = lower_spec(&spec).unwrap();
        // Filter(Blur) → Filter(Blur) → Clip: three operators + concat.
        match &plan.segments[0].node {
            LogicalNode::Filter { inputs, .. } => match &inputs[0] {
                LogicalNode::Filter { inputs, .. } => {
                    assert!(matches!(inputs[0], LogicalNode::Clip { .. }));
                }
                other => panic!("expected inner filter, got {other:?}"),
            },
            other => panic!("expected filter, got {other:?}"),
        }
    }

    #[test]
    fn grid_collects_four_clips() {
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .append_with(r(1, 1), |_| {
                grid4(
                    RenderExpr::video("a"),
                    RenderExpr::video_shifted("a", r(10, 1)),
                    RenderExpr::video_shifted("a", r(20, 1)),
                    RenderExpr::video_shifted("a", r(30, 1)),
                )
            })
            .build();
        let plan = lower_spec(&spec).unwrap();
        let mut clips = Vec::new();
        plan.segments[0].node.collect_clips(&mut clips);
        assert_eq!(clips.len(), 4);
        assert_eq!(clips[2].time.offset(), r(20, 1));
    }

    #[test]
    fn nested_match_under_transform_is_hoisted() {
        // Blur over an IfThenElse-free nested match: build a match inside
        // a transform by hand.
        let d = TimeSet::from_range(TimeRange::new(r(0, 1), r(2, 1), r(1, 30)));
        let lo = TimeSet::from_range(TimeRange::new(r(0, 1), r(1, 1), r(1, 30)));
        let hi = TimeSet::from_range(TimeRange::new(r(1, 1), r(2, 1), r(1, 30)));
        let inner = RenderExpr::matching(vec![
            (lo, RenderExpr::video("a")),
            (hi, RenderExpr::video_shifted("a", r(50, 1))),
        ]);
        let spec = v2v_spec::Spec {
            time_domain: d,
            render: blur(inner, 1.0),
            videos: [("a".to_string(), "a.svc".to_string())].into(),
            data_arrays: Default::default(),
            output: output(),
        };
        let plan = lower_spec(&spec).unwrap();
        assert_eq!(plan.segments.len(), 2, "hoisting splits the blur");
        for seg in &plan.segments {
            assert!(matches!(seg.node, LogicalNode::Filter { .. }));
        }
    }

    #[test]
    fn if_then_else_remains_single_segment_before_dde() {
        // Without data-dependent rewriting, IfThenElse is one filter over
        // two clips (both materialized — the §IV-C inefficiency).
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .video("b", "b.svc")
            .data_array("x", "x.json")
            .append_with(r(1, 1), |_| {
                if_then_else(
                    DataExpr::lt(DataExpr::array("x"), DataExpr::constant(5i64)),
                    RenderExpr::video("a"),
                    RenderExpr::video("b"),
                )
            })
            .build();
        let plan = lower_spec(&spec).unwrap();
        assert_eq!(plan.segments.len(), 1);
        let mut clips = Vec::new();
        plan.segments[0].node.collect_clips(&mut clips);
        assert_eq!(clips.len(), 2, "both branches materialize");
    }

    #[test]
    fn uncovered_domain_is_rejected() {
        let d = TimeSet::from_range(TimeRange::new(r(0, 1), r(2, 1), r(1, 30)));
        let half = TimeSet::from_range(TimeRange::new(r(0, 1), r(1, 1), r(1, 30)));
        let spec = v2v_spec::Spec {
            time_domain: d,
            render: RenderExpr::matching(vec![(half, RenderExpr::video("a"))]),
            videos: [("a".to_string(), "a.svc".to_string())].into(),
            data_arrays: Default::default(),
            output: output(),
        };
        assert!(matches!(
            lower_spec(&spec),
            Err(PlanError::Uncovered(t)) if t == r(1, 1)
        ));
    }

    #[test]
    fn step_mismatch_rejected() {
        let d = TimeSet::from_range(TimeRange::new(r(0, 1), r(1, 1), r(1, 24)));
        let spec = v2v_spec::Spec {
            time_domain: d,
            render: RenderExpr::video("a"),
            videos: [("a".to_string(), "a.svc".to_string())].into(),
            data_arrays: Default::default(),
            output: output(), // 30 fps
        };
        assert!(matches!(
            lower_spec(&spec),
            Err(PlanError::StepMismatch { .. })
        ));
    }

    #[test]
    fn interleaved_arms_produce_alternating_segments() {
        // Even frames from a, odd frames from b (what a dde rewrite of a
        // per-frame condition can produce).
        let even = TimeSet::from_range(TimeRange::from_parts(r(0, 1), r(2, 30), 5));
        let odd = TimeSet::from_range(TimeRange::from_parts(r(1, 30), r(2, 30), 5));
        let spec = v2v_spec::Spec {
            time_domain: TimeSet::from_range(TimeRange::from_parts(r(0, 1), r(1, 30), 10)),
            render: RenderExpr::matching(vec![
                (even, RenderExpr::video("a")),
                (odd, RenderExpr::video("b")),
            ]),
            videos: [
                ("a".to_string(), "a.svc".to_string()),
                ("b".to_string(), "b.svc".to_string()),
            ]
            .into(),
            data_arrays: Default::default(),
            output: output(),
        };
        let plan = lower_spec(&spec).unwrap();
        assert_eq!(plan.segments.len(), 10);
        assert!(plan.segments.iter().all(|s| s.count == 1));
    }
}
