#![warn(missing_docs)]

//! V2V query planning (paper §III-C/D).
//!
//! Specs lower to a **logical plan** over the three core operators:
//!
//! * `Concat` — splice segments on the output timeline (from match arms);
//! * `Clip` — extract a time range of a source (from `vid[a·t+b]`);
//! * `Filter` — per-frame transformations (from function calls).
//!
//! The unoptimized logical plan materializes an encoded intermediate at
//! *every* operator (the top of the paper's Fig. 2); the optimizer
//! rewrites it and produces a **physical plan** whose segments either
//! render in one fused decode→transform→encode pass or stream-copy
//! compressed packets (bottom of Fig. 2):
//!
//! 1. concat flattening and empty-segment pruning;
//! 2. operator merging (adjacent `Filter`s compose into one program);
//! 3. identity elision (`Identity` filters vanish — the hook the
//!    data-dependent rewriter exploits);
//! 4. clip-into-filter fusion (no intermediate encode/decode pair);
//! 5. stream copying of keyframe-aligned pure clips;
//! 6. smart cuts for unaligned pure clips (re-encode at most the partial
//!    head GOP, copy the rest);
//! 7. temporal sharding of long renders for parallel execution.
//!
//! [`explain`] renders both plans as text (the Fig. 2 reproduction).

pub mod cost;
pub mod explain;
pub mod fingerprint;
pub mod logical;
pub mod meta;
pub mod optimizer;
pub mod physical;
pub mod program;
pub mod trace;
pub mod variant;

pub use cost::{estimate, CostEstimate, CostModel};
pub use explain::{explain_logical, explain_physical};
pub use fingerprint::{cacheable, plan_fingerprint, segment_keys, SourceDigests, VideoDigest};
pub use logical::{lower_spec, LogicalNode, LogicalPlan, LogicalSegment};
pub use meta::{PlanContext, SourceMeta};
pub use optimizer::{optimize, optimize_traced, OptimizerConfig};
pub use physical::{PhysicalPlan, PlanStats, SegPlan, Segment};
pub use program::{FrameProgram, InputClip, ProgArg};
pub use trace::{PlanTrace, RewriteEvent};
pub use variant::{select_variants, VariantFacts, VariantKind, VariantPolicy};

/// Errors raised during lowering and optimization.
#[derive(Debug, Clone, PartialEq, thiserror::Error)]
pub enum PlanError {
    /// The spec's time domain is not a single uniform range.
    #[error(
        "time domain must be a single uniform range to define an output stream; got {0} ranges"
    )]
    NonUniformDomain(usize),
    /// Domain step disagrees with the output frame duration.
    #[error("time domain step {domain} does not match output frame duration {output}")]
    StepMismatch {
        /// Domain step.
        domain: v2v_time::Rational,
        /// Output frame duration.
        output: v2v_time::Rational,
    },
    /// An instant in the domain is not covered by any match arm
    /// (checked specs never trigger this).
    #[error("no match arm covers instant {0}")]
    Uncovered(v2v_time::Rational),
    /// A frame reference names an unbound video.
    #[error("unknown video '{0}' at plan time")]
    UnknownVideo(String),
    /// A required source instant is missing (checked specs never trigger
    /// this).
    #[error("video '{video}' has no frame at {at}")]
    MissingFrame {
        /// The video.
        video: String,
        /// The missing instant.
        at: v2v_time::Rational,
    },
}
