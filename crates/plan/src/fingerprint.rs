//! Content-addressed plan fingerprints for the render cache.
//!
//! The cache must answer "is this exactly the work I rendered before?"
//! across process lifetimes, so keys cannot come from pointer
//! identities, hash-map iteration order, or anything the optimizer's
//! *trajectory* influences. Two requirements shape the scheme:
//!
//! 1. **Canonical over the plan, not the rewrite history.** Temporal
//!    sharding splits one render segment into several that carry
//!    *identical* [`SegPlan`]s, and the sharding factor is a tuning
//!    knob — the same query planned with `shard_gops = 1` or `= 8`
//!    must fingerprint identically, because the output bytes are
//!    identical (shards split at output-GOP boundaries, so the encoder
//!    emits the same keyframe cadence either way). The fingerprint
//!    therefore hashes a *canonical* segment list in which GOP-aligned
//!    runs of equal render plans (and contiguous stream copies of one
//!    source) are merged back together.
//!
//! 2. **Content-addressed over the sources.** A plan names videos, but
//!    a name does not pin bytes: re-encoding a source in place must
//!    change every key derived from it. Callers supply
//!    [`SourceDigests`] — per-video content digests (from
//!    [`VideoStream::content_digest`]) plus one digest over the data
//!    arrays — and both the whole-plan fingerprint and the per-segment
//!    keys fold them in.
//!
//! Rewrites that change the *output bytes* (stream copy vs. render,
//! smart cuts, conservative tails) legitimately change the
//! fingerprint: cached bytes are only reusable when they are the very
//! bytes the plan would produce.
//!
//! Programs containing UDFs are never keyed ([`segment_keys`] yields
//! `None`, [`plan_fingerprint`] is still defined but callers should
//! skip caching): the kernel behind a UDF id lives in the process's
//! catalog, outside what any on-disk digest can witness.
//!
//! [`VideoStream::content_digest`]: v2v_container::VideoStream::content_digest

use crate::physical::{PhysicalPlan, SegPlan, Segment};
use crate::program::{FrameProgram, ProgArg};
use std::collections::BTreeMap;
use v2v_container::{Fnv64, VideoStream};
use v2v_spec::TransformOp;
use v2v_time::{AffineTimeMap, Rational};

/// Content digest of one video source, carrying the committed-GOP
/// prefix structure live sources expose.
///
/// A segment key folds in the digest of the *smallest committed prefix*
/// covering the segment's source reads, not the whole-stream digest —
/// so appending GOPs to a live source changes only the keys of segments
/// whose reads extend past the old end.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VideoDigest {
    /// Digest of the full stream
    /// ([`VideoStream::content_digest`](v2v_container::VideoStream::content_digest)).
    pub full: u64,
    /// `(frames, digest)` at committed GOP boundaries, ascending, the
    /// last entry being the whole stream
    /// ([`VideoStream::digest_index`](v2v_container::VideoStream::digest_index)).
    /// Empty means the prefix structure is unknown: every key falls
    /// back to the full digest and appends invalidate everything.
    pub prefixes: Vec<(u64, u64)>,
    /// Grid start (used to turn a read window into a frame count).
    pub start: Rational,
    /// Frame duration.
    pub frame_dur: Rational,
}

impl VideoDigest {
    /// A digest with no prefix structure (keys use `full` everywhere).
    pub fn opaque(full: u64) -> VideoDigest {
        VideoDigest {
            full,
            prefixes: Vec::new(),
            start: Rational::ZERO,
            frame_dur: Rational::ONE,
        }
    }

    /// Digests a stream with its full committed-GOP boundary index.
    pub fn of(stream: &VideoStream) -> VideoDigest {
        VideoDigest {
            full: stream.content_digest(),
            prefixes: stream.digest_index(),
            start: stream.start(),
            frame_dur: stream.frame_dur(),
        }
    }

    /// The `(frames, digest)` of the smallest committed prefix serving
    /// every read at instants `≤ hi`; the full stream when no boundary
    /// covers it (or no prefix structure is known).
    fn covering(&self, hi: Rational) -> (u64, u64) {
        if self.prefixes.is_empty() {
            return (u64::MAX, self.full);
        }
        let needed = if hi < self.start {
            0
        } else {
            (hi - self.start).div_floor(self.frame_dur).max(0) as u64 + 1
        };
        for &(n, d) in &self.prefixes {
            if n >= needed {
                return (n, d);
            }
        }
        *self.prefixes.last().expect("non-empty prefix index")
    }
}

/// Content digests of everything a plan reads, keyed by catalog name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SourceDigests {
    /// Per-video content digests with prefix structure.
    pub videos: BTreeMap<String, VideoDigest>,
    /// One digest over all data arrays (names, instants, values) — the
    /// coarse whole-catalog witness kept for diagnostics and as the
    /// conservative key input when `array_entries` is unavailable.
    pub arrays: u64,
    /// Per-array `(instant, entry digest)` pairs, ascending by instant.
    /// Segment keys fold only the entries a segment's data expressions
    /// can actually look up, so appending later detections leaves
    /// earlier segments' keys unchanged.
    pub array_entries: BTreeMap<String, Vec<(Rational, u64)>>,
}

/// Is the expression's value a function of the evaluation instant or
/// the data arrays? Constant expressions (however nested) are not —
/// they are already pinned by the program's serialization.
fn expr_time_sensitive(e: &v2v_spec::DataExpr) -> bool {
    use v2v_spec::DataExpr;
    match e {
        DataExpr::Const(_) => false,
        DataExpr::T | DataExpr::ArrayRef { .. } => true,
        DataExpr::Cmp { lhs, rhs, .. } | DataExpr::Arith { lhs, rhs, .. } => {
            expr_time_sensitive(lhs) || expr_time_sensitive(rhs)
        }
        DataExpr::And(a, b) | DataExpr::Or(a, b) => {
            expr_time_sensitive(a) || expr_time_sensitive(b)
        }
        DataExpr::Not(a) | DataExpr::Len(a) => expr_time_sensitive(a),
    }
}

/// Does the program consume anything beyond its input frames — data
/// expressions genuinely evaluated at *absolute* domain instants
/// (`t` or array lookups; constants don't count) or UDFs?
fn program_data_sensitivity(p: &FrameProgram) -> (bool, bool) {
    match p {
        FrameProgram::Input(_) => (false, false),
        FrameProgram::Op { op, args } => {
            let mut data = false;
            let mut udf = matches!(op, TransformOp::Udf(_));
            for a in args {
                match a {
                    ProgArg::Frame(f) => {
                        let (d, u) = program_data_sensitivity(f);
                        data |= d;
                        udf |= u;
                    }
                    ProgArg::Data(e) => data |= expr_time_sensitive(e),
                }
            }
            (data, udf)
        }
    }
}

/// Hashes the plan-wide framing every key shares: output parameters and
/// the grid.
fn hash_framing(h: &mut Fnv64, plan: &PhysicalPlan) {
    h.write_str(&serde_json::to_string(&plan.out_params).unwrap_or_default());
    h.write_str(&plan.frame_dur.to_string());
}

/// Collects every `array[map(t)]` lookup site in a data expression.
fn expr_array_refs(e: &v2v_spec::DataExpr, out: &mut Vec<(String, AffineTimeMap)>) {
    use v2v_spec::DataExpr;
    match e {
        DataExpr::Const(_) | DataExpr::T => {}
        DataExpr::ArrayRef { array, time } => out.push((array.clone(), *time)),
        DataExpr::Cmp { lhs, rhs, .. } | DataExpr::Arith { lhs, rhs, .. } => {
            expr_array_refs(lhs, out);
            expr_array_refs(rhs, out);
        }
        DataExpr::And(a, b) | DataExpr::Or(a, b) => {
            expr_array_refs(a, out);
            expr_array_refs(b, out);
        }
        DataExpr::Not(a) | DataExpr::Len(a) => expr_array_refs(a, out),
    }
}

/// Collects every array lookup site across a whole program.
fn program_array_refs(p: &FrameProgram, out: &mut Vec<(String, AffineTimeMap)>) {
    if let FrameProgram::Op { args, .. } = p {
        for a in args {
            match a {
                ProgArg::Frame(f) => program_array_refs(f, out),
                ProgArg::Data(e) => expr_array_refs(e, out),
            }
        }
    }
}

/// Hashes one render plan's semantic content for the segment starting
/// at output frame `out_start` with `count` frames. Returns `false`
/// (key unusable) when the program contains a UDF or references a
/// video absent from `sources`.
fn hash_render(
    h: &mut Fnv64,
    plan: &PhysicalPlan,
    program: &FrameProgram,
    inputs: &[crate::program::InputClip],
    out_start: u64,
    count: u64,
    sources: &SourceDigests,
) -> bool {
    let (has_data, has_udf) = program_data_sensitivity(program);
    if has_udf {
        return false;
    }
    h.write_str("render");
    h.write_u64(count);
    h.write_str(&serde_json::to_string(program).unwrap_or_default());
    let seg_start = plan.instant_of(out_start);
    let seg_last = plan.instant_of(out_start + count.saturating_sub(1));
    for clip in inputs {
        let Some(d) = sources.videos.get(&clip.video) else {
            return false;
        };
        // The segment reads source instants `clip.time([seg_start,
        // seg_last])`; the affine image's upper end bounds them, so the
        // smallest committed prefix past it pins every byte this
        // segment can touch. Hashing that boundary (frames + digest)
        // instead of the full digest is what keeps keys stable when a
        // live source grows behind the reads.
        let hi = clip.time.apply(seg_start).max(clip.time.apply(seg_last));
        let (frames, digest) = d.covering(hi);
        h.write_u64(frames);
        h.write_u64(digest);
        // The binding's semantic content relative to this segment: the
        // source instant its frames start at and the rate mapping. The
        // absolute offset is deliberately *not* hashed — two segments
        // rendering the same source span with the same program are the
        // same work wherever they land in the output.
        h.write_str(&clip.time.scale().to_string());
        h.write_str(&clip.time.apply(seg_start).to_string());
    }
    if has_data {
        // Data expressions evaluate at absolute domain instants, so the
        // segment's alignment becomes an input.
        h.write_str(&seg_start.to_string());
        // Fold only the array entries this segment's lookups can reach:
        // each `array[map(t)]` site reads instants bounded by the
        // affine image of the segment window, so entries past that
        // bound (appended detections) don't touch the key.
        let mut refs = Vec::new();
        program_array_refs(program, &mut refs);
        refs.sort_by(|a, b| {
            a.0.cmp(&b.0)
                .then_with(|| a.1.to_string().cmp(&b.1.to_string()))
        });
        refs.dedup();
        for (array, map) in &refs {
            h.write_str(array);
            let hi = map.apply(seg_start).max(map.apply(seg_last));
            match sources.array_entries.get(array) {
                Some(entries) => {
                    let visible = entries.partition_point(|&(t, _)| t <= hi);
                    h.write_u64(visible as u64);
                    for &(_, d) in &entries[..visible] {
                        h.write_u64(d);
                    }
                }
                // No entry structure known for this array: fall back to
                // the coarse whole-catalog digest.
                None => h.write_u64(sources.arrays),
            }
        }
    }
    true
}

/// Hashes one stream-copy plan's semantic content.
fn hash_copy(
    h: &mut Fnv64,
    video: &str,
    src_from: u64,
    src_to: u64,
    sources: &SourceDigests,
) -> bool {
    h.write_str("copy");
    let Some(d) = sources.videos.get(video) else {
        return false;
    };
    // Copies read frames `[src_from, src_to)` directly: the smallest
    // boundary at or past `src_to` pins them.
    let (frames, digest) = if d.prefixes.is_empty() {
        (u64::MAX, d.full)
    } else {
        d.prefixes
            .iter()
            .copied()
            .find(|&(n, _)| n >= src_to)
            .unwrap_or(*d.prefixes.last().expect("non-empty prefix index"))
    };
    h.write_u64(frames);
    h.write_u64(digest);
    h.write_u64(src_from);
    h.write_u64(src_to);
    true
}

/// Merges the plan's segments into canonical runs: GOP-aligned adjacent
/// render segments with equal plans (what sharding splits) and
/// contiguous stream copies of one video (what GOP-chunked copies
/// split) collapse into single segments. The result depends only on
/// what the plan *produces*, not on how the optimizer arrived at it.
fn canonical_segments(plan: &PhysicalPlan) -> Vec<Segment> {
    let gop = u64::from(plan.out_params.gop_size.max(1));
    let mut out: Vec<Segment> = Vec::with_capacity(plan.segments.len());
    for seg in &plan.segments {
        if let Some(run) = out.last_mut() {
            let adjacent = seg.out_start == run.out_start + run.count;
            match (&mut run.plan, &seg.plan) {
                (
                    SegPlan::Render {
                        program: rp,
                        inputs: ri,
                    },
                    SegPlan::Render { program, inputs },
                ) if adjacent
                    && rp == program
                    // Variant choice is advisory and byte-invisible, so
                    // canonicalization must not let it split a run.
                    && ri.len() == inputs.len()
                    && ri.iter().zip(inputs).all(|(a, b)| a.same_source(b))
                    // Merging is byte-preserving only at output-GOP
                    // boundaries: each render segment restarts the
                    // encoder, so an unaligned merge would move
                    // keyframes.
                    && (seg.out_start - run.out_start) % gop == 0 =>
                {
                    run.count += seg.count;
                    continue;
                }
                (
                    SegPlan::StreamCopy {
                        video: rv,
                        src_to: rt,
                        ..
                    },
                    SegPlan::StreamCopy {
                        video,
                        src_from,
                        src_to,
                    },
                ) if adjacent && rv == video && *rt == *src_from => {
                    *rt = *src_to;
                    run.count += seg.count;
                    continue;
                }
                _ => {}
            }
        }
        out.push(seg.clone());
    }
    out
}

/// The canonical, content-addressed fingerprint of a whole plan: the
/// render cache's key for complete results.
///
/// Invariant under the optimizer's sharding factor and rule application
/// order (for a fixed rule *outcome*); changes whenever the output
/// bytes would — different programs, clip ranges, output parameters, or
/// source contents.
pub fn plan_fingerprint(plan: &PhysicalPlan, sources: &SourceDigests) -> u64 {
    let mut h = Fnv64::new();
    h.write_str("v2v.plan.v2");
    hash_framing(&mut h, plan);
    h.write_str(&plan.domain_start.to_string());
    h.write_u64(plan.n_frames);
    let canon = canonical_segments(plan);
    h.write_u64(canon.len() as u64);
    for seg in &canon {
        h.write_u64(seg.out_start);
        match &seg.plan {
            SegPlan::Render { program, inputs } => {
                if !hash_render(
                    &mut h,
                    plan,
                    program,
                    inputs,
                    seg.out_start,
                    seg.count,
                    sources,
                ) {
                    // Unkeyable content (UDF, unknown video): poison the
                    // fingerprint with the segment's identity so it
                    // still distinguishes plans, while callers gate
                    // caching on `cacheable`.
                    h.write_str("unkeyable");
                    h.write_str(&serde_json::to_string(program).unwrap_or_default());
                }
            }
            SegPlan::StreamCopy {
                video,
                src_from,
                src_to,
            } => {
                if !hash_copy(&mut h, video, *src_from, *src_to, sources) {
                    h.write_str("unkeyable");
                    h.write_str(video);
                }
            }
        }
    }
    h.finish()
}

/// `true` when every segment of the plan can be keyed — no UDFs, every
/// referenced video digested. The engine only caches such plans.
pub fn cacheable(plan: &PhysicalPlan, sources: &SourceDigests) -> bool {
    plan.segments.iter().all(|seg| match &seg.plan {
        SegPlan::Render { program, inputs } => {
            let (_, has_udf) = program_data_sensitivity(program);
            !has_udf && inputs.iter().all(|c| sources.videos.contains_key(&c.video))
        }
        SegPlan::StreamCopy { video, .. } => sources.videos.contains_key(video),
    })
}

/// Per-segment cache keys, aligned with `plan.segments` by index.
///
/// `None` for segments that must not be cached: stream copies (already
/// zero-decode — caching them would only duplicate source bytes) and
/// render programs containing UDFs or videos without digests.
///
/// The key hashes everything that determines the segment's output
/// bytes — program, input contents and alignment, output parameters,
/// frame count — but *not* the segment's position in the output, so an
/// overlapping query whose plan produces the same span of work reuses
/// the fragment even at a different output offset.
pub fn segment_keys(plan: &PhysicalPlan, sources: &SourceDigests) -> Vec<Option<u64>> {
    plan.segments
        .iter()
        .map(|seg| match &seg.plan {
            SegPlan::StreamCopy { .. } => None,
            SegPlan::Render { program, inputs } => {
                let mut h = Fnv64::new();
                h.write_str("v2v.segkey.v2");
                hash_framing(&mut h, plan);
                hash_render(
                    &mut h,
                    plan,
                    program,
                    inputs,
                    seg.out_start,
                    seg.count,
                    sources,
                )
                .then(|| h.finish())
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::InputClip;
    use v2v_codec::CodecParams;
    use v2v_frame::FrameType;
    use v2v_time::{r, AffineTimeMap, Rational};

    fn digests(names: &[&str]) -> SourceDigests {
        SourceDigests {
            videos: names
                .iter()
                .enumerate()
                .map(|(i, n)| (n.to_string(), VideoDigest::opaque(0x1000 + i as u64)))
                .collect(),
            arrays: 7,
            array_entries: BTreeMap::new(),
        }
    }

    fn render_seg(out_start: u64, count: u64) -> Segment {
        Segment {
            out_start,
            count,
            plan: SegPlan::Render {
                program: FrameProgram::Op {
                    op: TransformOp::Blur,
                    args: vec![
                        ProgArg::Frame(FrameProgram::Input(0)),
                        ProgArg::Data(v2v_spec::DataExpr::constant(1.0f64)),
                    ],
                },
                inputs: vec![InputClip::new("a", AffineTimeMap::IDENTITY)],
            },
        }
    }

    fn base_plan(segments: Vec<Segment>, n_frames: u64) -> PhysicalPlan {
        PhysicalPlan {
            segments,
            out_params: CodecParams::new(FrameType::gray8(32, 32), 4, 0),
            frame_dur: r(1, 30),
            domain_start: Rational::ZERO,
            n_frames,
            stats: Default::default(),
        }
    }

    #[test]
    fn sharding_is_invisible() {
        // One 16-frame render vs. the same render split at GOP-aligned
        // boundaries (gop 4): identical fingerprints.
        let whole = base_plan(vec![render_seg(0, 16)], 16);
        let sharded = base_plan(
            vec![render_seg(0, 8), render_seg(8, 4), render_seg(12, 4)],
            16,
        );
        let d = digests(&["a"]);
        assert_eq!(plan_fingerprint(&whole, &d), plan_fingerprint(&sharded, &d));
    }

    #[test]
    fn unaligned_split_is_not_merged() {
        // A split at a non-GOP boundary changes keyframe placement and
        // therefore the output bytes: must NOT collapse.
        let whole = base_plan(vec![render_seg(0, 16)], 16);
        let odd = base_plan(vec![render_seg(0, 6), render_seg(6, 10)], 16);
        let d = digests(&["a"]);
        assert_ne!(plan_fingerprint(&whole, &d), plan_fingerprint(&odd, &d));
    }

    #[test]
    fn source_bytes_are_load_bearing() {
        let plan = base_plan(vec![render_seg(0, 16)], 16);
        let d1 = digests(&["a"]);
        let mut d2 = d1.clone();
        d2.videos.insert("a".into(), VideoDigest::opaque(0xdead));
        assert_ne!(plan_fingerprint(&plan, &d1), plan_fingerprint(&plan, &d2));
        assert_ne!(segment_keys(&plan, &d1)[0], segment_keys(&plan, &d2)[0],);
    }

    #[test]
    fn copy_runs_merge() {
        let seg = |out_start, count, src_from, src_to| Segment {
            out_start,
            count,
            plan: SegPlan::StreamCopy {
                video: "a".into(),
                src_from,
                src_to,
            },
        };
        let whole = base_plan(vec![seg(0, 12, 3, 15)], 12);
        let split = base_plan(vec![seg(0, 4, 3, 7), seg(4, 8, 7, 15)], 12);
        let gapped = base_plan(vec![seg(0, 4, 3, 7), seg(4, 8, 8, 16)], 12);
        let d = digests(&["a"]);
        assert_eq!(plan_fingerprint(&whole, &d), plan_fingerprint(&split, &d));
        assert_ne!(plan_fingerprint(&whole, &d), plan_fingerprint(&gapped, &d));
    }

    #[test]
    fn segment_key_ignores_output_position_without_data() {
        // Pure-frame programs over the same source span key identically
        // wherever they land in the output.
        let a = base_plan(vec![render_seg(0, 8)], 8);
        let mut moved = render_seg(4, 8);
        // Compensate the clip so the *source* span matches: identity
        // time map reads t, so shift the clip back by 4 frames.
        if let SegPlan::Render { inputs, .. } = &mut moved.plan {
            inputs[0].time = AffineTimeMap::new(Rational::ONE, r(-4, 30));
        }
        let b = base_plan(vec![render_seg(0, 4), moved], 12);
        let d = digests(&["a"]);
        let ka = segment_keys(&a, &d);
        let kb = segment_keys(&b, &d);
        assert_eq!(ka[0], kb[1], "same work, different offset: same key");
    }

    #[test]
    fn udf_segments_are_unkeyed() {
        let mut seg = render_seg(0, 8);
        if let SegPlan::Render { program, .. } = &mut seg.plan {
            *program = FrameProgram::Op {
                op: TransformOp::Udf(3),
                args: vec![ProgArg::Frame(FrameProgram::Input(0))],
            };
        }
        let plan = base_plan(vec![seg], 8);
        let d = digests(&["a"]);
        assert_eq!(segment_keys(&plan, &d), vec![None]);
        assert!(!cacheable(&plan, &d));
        assert!(cacheable(&base_plan(vec![render_seg(0, 8)], 8), &d));
    }

    #[test]
    fn data_programs_key_on_alignment_and_arrays() {
        let data_seg = |out_start| {
            let mut s = render_seg(out_start, 8);
            if let SegPlan::Render { program, .. } = &mut s.plan {
                *program = FrameProgram::Op {
                    op: TransformOp::Blur,
                    args: vec![
                        ProgArg::Frame(FrameProgram::Input(0)),
                        ProgArg::Data(v2v_spec::DataExpr::T),
                    ],
                };
            }
            s
        };
        let a = base_plan(vec![data_seg(0)], 8);
        let b = base_plan(vec![data_seg(0), data_seg(8)], 16);
        let d = digests(&["a"]);
        // Same alignment → same key; different alignment → different.
        assert_eq!(segment_keys(&a, &d)[0], segment_keys(&b, &d)[0]);
        assert_ne!(segment_keys(&b, &d)[0], segment_keys(&b, &d)[1]);
        // `t`-only programs read no arrays, so array changes leave their
        // keys alone (the windowed scheme keys only actual lookups).
        let mut d2 = d.clone();
        d2.arrays = 99;
        assert_eq!(segment_keys(&a, &d)[0], segment_keys(&a, &d2)[0]);
    }

    /// A segment reading `bb[t]` keys on exactly the entries its window
    /// can reach: appending later detections re-keys only the segments
    /// whose window covers the new entries.
    #[test]
    fn array_reads_key_on_visible_entries_only() {
        let array_seg = |out_start| {
            let mut s = render_seg(out_start, 8);
            if let SegPlan::Render { program, .. } = &mut s.plan {
                *program = FrameProgram::Op {
                    op: TransformOp::Blur,
                    args: vec![
                        ProgArg::Frame(FrameProgram::Input(0)),
                        ProgArg::Data(v2v_spec::DataExpr::array("bb")),
                    ],
                };
            }
            s
        };
        let plan = base_plan(vec![array_seg(0), array_seg(8)], 16);
        let entries = |n: i64| -> Vec<(Rational, u64)> {
            (0..n).map(|i| (r(i, 30), 0x40 + i as u64)).collect()
        };
        let mut d = digests(&["a"]);
        d.array_entries.insert("bb".into(), entries(8));
        let mut grown = d.clone();
        grown.array_entries.insert("bb".into(), entries(16));
        let k_old = segment_keys(&plan, &d);
        let k_new = segment_keys(&plan, &grown);
        assert_eq!(k_old[0], k_new[0], "early segment ignores appended entries");
        assert_ne!(k_old[1], k_new[1], "the segment whose window grew re-keys");
        // Without entry structure the coarse digest is load-bearing.
        let mut coarse = digests(&["a"]);
        coarse.arrays = 99;
        assert_ne!(
            segment_keys(&plan, &digests(&["a"]))[0],
            segment_keys(&plan, &coarse)[0]
        );
    }

    /// Segment keys pin the smallest committed prefix covering their
    /// reads: growing a source past a segment's window keeps its key;
    /// rewriting bytes inside the window changes it.
    #[test]
    fn video_prefix_growth_rekeys_only_dirty_segments() {
        let vd = |count: u64, rewrite_tail: bool| VideoDigest {
            full: 0x9000 + count + u64::from(rewrite_tail),
            prefixes: (1..=count / 4)
                .map(|g| {
                    let n = g * 4;
                    let tweak = u64::from(rewrite_tail && n >= 16);
                    (n, 0x9000 + n + tweak)
                })
                .collect(),
            start: Rational::ZERO,
            frame_dur: r(1, 30),
        };
        // seg0 reads source frames 0..8 (boundary 8); seg1 reads 8..16
        // (boundary 16).
        let plan = base_plan(vec![render_seg(0, 8), render_seg(8, 8)], 16);
        let mut d = digests(&["a"]);
        d.videos.insert("a".into(), vd(16, false));
        let mut grown = d.clone();
        grown.videos.insert("a".into(), vd(24, false));
        let mut rewritten = d.clone();
        rewritten.videos.insert("a".into(), vd(16, true));

        let k = segment_keys(&plan, &d);
        let k_grown = segment_keys(&plan, &grown);
        let k_rewritten = segment_keys(&plan, &rewritten);
        assert_eq!(k, k_grown, "appending past every read keeps all keys");
        assert_eq!(k[0], k_rewritten[0], "prefix-clean segment keeps its key");
        assert_ne!(k[1], k_rewritten[1], "segment over changed bytes re-keys");
    }
}
