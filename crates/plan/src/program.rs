//! Frame programs: compiled per-frame transformation chains.
//!
//! A [`FrameProgram`] is a [`v2v_spec::RenderExpr`] with match arms
//! resolved away and frame references replaced by *input slots*. One
//! program plus its [`InputClip`] bindings describes everything a fused
//! render pass needs per output frame.

use serde::{Deserialize, Serialize};
use v2v_spec::{DataExpr, TransformOp};
use v2v_time::AffineTimeMap;

/// A source binding for one program input slot.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct InputClip {
    /// Video name (resolved by the execution catalog).
    pub video: String,
    /// Maps an output-domain instant to the source instant.
    pub time: AffineTimeMap,
    /// Physical variant the executor should decode from. Advisory:
    /// every decode-sufficient variant yields byte-identical output, so
    /// fingerprints and cache keys ignore this field and executors may
    /// fall back to the original when the variant is absent.
    #[serde(
        default,
        skip_serializing_if = "crate::variant::VariantKind::is_original"
    )]
    pub variant: crate::variant::VariantKind,
}

impl InputClip {
    /// A clip of `video` under `time`, reading the original bitstream.
    pub fn new(video: impl Into<String>, time: AffineTimeMap) -> InputClip {
        InputClip {
            video: video.into(),
            time,
            variant: crate::variant::VariantKind::Original,
        }
    }

    /// `true` if `other` binds the same source region (ignoring the
    /// advisory variant choice).
    pub fn same_source(&self, other: &InputClip) -> bool {
        self.video == other.video && self.time == other.time
    }
}

/// A per-frame program argument.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ProgArg {
    /// A frame-valued sub-program.
    Frame(FrameProgram),
    /// A data expression, evaluated at the output instant.
    Data(DataExpr),
}

/// A compiled per-frame expression.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FrameProgram {
    /// The frame of input slot `n` at this instant.
    Input(usize),
    /// A transformation over sub-programs and data.
    Op {
        /// The operator.
        op: TransformOp,
        /// Arguments in signature order.
        args: Vec<ProgArg>,
    },
}

impl FrameProgram {
    /// `true` if the program is exactly `Input(_)` — a pure clip,
    /// eligible for stream copy.
    pub fn is_pure_input(&self) -> bool {
        matches!(self, FrameProgram::Input(_))
    }

    /// `true` if the program is `Identity(Input(_))` or `Input(_)`.
    pub fn is_identity_of_input(&self) -> bool {
        match self {
            FrameProgram::Input(_) => true,
            FrameProgram::Op { op, args } => {
                *op == TransformOp::Identity
                    && matches!(args.first(), Some(ProgArg::Frame(f)) if f.is_identity_of_input())
            }
        }
    }

    /// Highest input slot referenced plus one (the needed input count).
    pub fn input_count(&self) -> usize {
        match self {
            FrameProgram::Input(n) => n + 1,
            FrameProgram::Op { args, .. } => args
                .iter()
                .map(|a| match a {
                    ProgArg::Frame(f) => f.input_count(),
                    ProgArg::Data(_) => 0,
                })
                .max()
                .unwrap_or(0),
        }
    }

    /// Number of operator applications (plan-size metric).
    pub fn op_count(&self) -> usize {
        match self {
            FrameProgram::Input(_) => 0,
            FrameProgram::Op { args, .. } => {
                1 + args
                    .iter()
                    .map(|a| match a {
                        ProgArg::Frame(f) => f.op_count(),
                        ProgArg::Data(_) => 0,
                    })
                    .sum::<usize>()
            }
        }
    }

    /// Shifts every input slot by `delta` (used when splicing input
    /// lists during operator merging).
    pub fn shift_inputs(&self, delta: usize) -> FrameProgram {
        match self {
            FrameProgram::Input(n) => FrameProgram::Input(n + delta),
            FrameProgram::Op { op, args } => FrameProgram::Op {
                op: *op,
                args: args
                    .iter()
                    .map(|a| match a {
                        ProgArg::Frame(f) => ProgArg::Frame(f.shift_inputs(delta)),
                        ProgArg::Data(d) => ProgArg::Data(d.clone()),
                    })
                    .collect(),
            },
        }
    }

    /// Replaces every `Input(slot)` with `replacement` (whose own input
    /// slots are already final). Other slots are remapped via `remap`.
    pub fn substitute(
        &self,
        slot: usize,
        replacement: &FrameProgram,
        remap: &dyn Fn(usize) -> usize,
    ) -> FrameProgram {
        match self {
            FrameProgram::Input(n) => {
                if *n == slot {
                    replacement.clone()
                } else {
                    FrameProgram::Input(remap(*n))
                }
            }
            FrameProgram::Op { op, args } => FrameProgram::Op {
                op: *op,
                args: args
                    .iter()
                    .map(|a| match a {
                        ProgArg::Frame(f) => ProgArg::Frame(f.substitute(slot, replacement, remap)),
                        ProgArg::Data(d) => ProgArg::Data(d.clone()),
                    })
                    .collect(),
            },
        }
    }

    /// Compact one-line rendering for explain output.
    pub fn describe(&self) -> String {
        match self {
            FrameProgram::Input(n) => format!("in{n}"),
            FrameProgram::Op { op, args } => {
                let parts: Vec<String> = args
                    .iter()
                    .map(|a| match a {
                        ProgArg::Frame(f) => f.describe(),
                        ProgArg::Data(_) => "·".to_string(),
                    })
                    .collect();
                format!("{op:?}({})", parts.join(", "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(op: TransformOp, args: Vec<ProgArg>) -> FrameProgram {
        FrameProgram::Op { op, args }
    }

    #[test]
    fn purity_checks() {
        assert!(FrameProgram::Input(0).is_pure_input());
        let ident = op(
            TransformOp::Identity,
            vec![ProgArg::Frame(FrameProgram::Input(0))],
        );
        assert!(!ident.is_pure_input());
        assert!(ident.is_identity_of_input());
        let blur = op(
            TransformOp::Blur,
            vec![
                ProgArg::Frame(FrameProgram::Input(0)),
                ProgArg::Data(DataExpr::constant(1.0f64)),
            ],
        );
        assert!(!blur.is_identity_of_input());
    }

    #[test]
    fn input_count_and_op_count() {
        let g = op(
            TransformOp::Grid,
            (0..4)
                .map(|i| ProgArg::Frame(FrameProgram::Input(i)))
                .collect(),
        );
        assert_eq!(g.input_count(), 4);
        assert_eq!(g.op_count(), 1);
        let nested = op(
            TransformOp::Blur,
            vec![
                ProgArg::Frame(g.clone()),
                ProgArg::Data(DataExpr::constant(1.0f64)),
            ],
        );
        assert_eq!(nested.op_count(), 2);
        assert_eq!(nested.input_count(), 4);
    }

    #[test]
    fn substitution_splices_programs() {
        // outer = Blur(in0); replace in0 with Zoom(in0) → Blur(Zoom(in0)).
        let outer = op(
            TransformOp::Blur,
            vec![
                ProgArg::Frame(FrameProgram::Input(0)),
                ProgArg::Data(DataExpr::constant(1.0f64)),
            ],
        );
        let inner = op(
            TransformOp::Zoom,
            vec![
                ProgArg::Frame(FrameProgram::Input(0)),
                ProgArg::Data(DataExpr::constant(2.0f64)),
            ],
        );
        let merged = outer.substitute(0, &inner, &|n| n);
        assert_eq!(merged.op_count(), 2);
        assert_eq!(merged.describe(), "Blur(Zoom(in0, ·), ·)");
    }

    #[test]
    fn shift_inputs_renumbers() {
        let g = op(
            TransformOp::Crossfade,
            vec![
                ProgArg::Frame(FrameProgram::Input(0)),
                ProgArg::Frame(FrameProgram::Input(1)),
                ProgArg::Data(DataExpr::constant(0.5f64)),
            ],
        );
        let shifted = g.shift_inputs(3);
        assert_eq!(shifted.input_count(), 5);
    }
}
