//! Source metadata the optimizer consults at plan time.
//!
//! The paper's optimizer decides stream copies and smart cuts from
//! container-level facts — codec parameters and the keyframe index —
//! without touching raster data. [`SourceMeta`] is exactly that view of
//! a source; [`PlanContext`] is the catalog of them.

use std::collections::BTreeMap;
use v2v_codec::CodecParams;
use v2v_time::{Rational, TimeRange};

/// Container-level facts about one video source.
#[derive(Clone, Debug)]
pub struct SourceMeta {
    /// Codec parameters (stream-copy compatibility is equality).
    pub params: CodecParams,
    /// First frame instant.
    pub start: Rational,
    /// Frame duration.
    pub frame_dur: Rational,
    /// Frame count.
    pub count: u64,
    /// Sorted keyframe frame-indices.
    pub keyframes: Vec<u64>,
}

impl SourceMeta {
    /// The source's frame grid.
    pub fn range(&self) -> TimeRange {
        TimeRange::from_parts(self.start, self.frame_dur, self.count)
    }

    /// Frame index of instant `t`, if on the grid.
    pub fn index_of(&self, t: Rational) -> Option<u64> {
        self.range().index_of(t)
    }

    /// `true` if frame `k` is a keyframe.
    pub fn is_keyframe(&self, k: u64) -> bool {
        self.keyframes.binary_search(&k).is_ok()
    }

    /// First keyframe index in `[from, to)`, if any.
    pub fn first_keyframe_in(&self, from: u64, to: u64) -> Option<u64> {
        let i = self.keyframes.partition_point(|&k| k < from);
        self.keyframes.get(i).copied().filter(|&k| k < to)
    }
}

/// The optimizer's source catalog plus output stream facts.
#[derive(Clone, Debug, Default)]
pub struct PlanContext {
    /// Video name → metadata.
    pub sources: BTreeMap<String, SourceMeta>,
    /// Video name → facts for each materialized physical variant
    /// (empty unless a variant store is attached to the catalog).
    pub variants: BTreeMap<String, Vec<crate::variant::VariantFacts>>,
}

impl PlanContext {
    /// An empty context.
    pub fn new() -> PlanContext {
        PlanContext::default()
    }

    /// Adds a source.
    pub fn with_source(mut self, name: impl Into<String>, meta: SourceMeta) -> PlanContext {
        self.sources.insert(name.into(), meta);
        self
    }

    /// Records variant facts for a source.
    pub fn with_variants(
        mut self,
        name: impl Into<String>,
        facts: Vec<crate::variant::VariantFacts>,
    ) -> PlanContext {
        self.variants.insert(name.into(), facts);
        self
    }

    /// Looks up a source.
    pub fn source(&self, name: &str) -> Option<&SourceMeta> {
        self.sources.get(name)
    }

    /// Variant facts recorded for a source (empty slice when none).
    pub fn variants_of(&self, name: &str) -> &[crate::variant::VariantFacts] {
        self.variants.get(name).map(Vec::as_slice).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v2v_frame::FrameType;
    use v2v_time::r;

    fn meta() -> SourceMeta {
        SourceMeta {
            params: CodecParams::new(FrameType::yuv420p(64, 64), 4, 0),
            start: Rational::ZERO,
            frame_dur: r(1, 30),
            count: 20,
            keyframes: vec![0, 4, 8, 12, 16],
        }
    }

    #[test]
    fn keyframe_queries() {
        let m = meta();
        assert!(m.is_keyframe(8));
        assert!(!m.is_keyframe(9));
        assert_eq!(m.first_keyframe_in(1, 20), Some(4));
        assert_eq!(m.first_keyframe_in(5, 8), None);
        assert_eq!(m.first_keyframe_in(5, 9), Some(8));
        assert_eq!(m.first_keyframe_in(17, 20), None);
    }

    #[test]
    fn grid_queries() {
        let m = meta();
        assert_eq!(m.index_of(r(5, 30)), Some(5));
        assert_eq!(m.index_of(r(1, 7)), None);
        assert_eq!(m.range().count(), 20);
    }
}
