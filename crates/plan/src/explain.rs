//! Plan explain: text rendering of logical and physical plans.
//!
//! Reproduces the paper's Fig. 2 ("Unoptimized (top) and Optimized
//! (bottom) Plans") as text trees. Stream-copy operators — the grey
//! diamonds of the figure — are marked `◆`.

use crate::logical::{LogicalNode, LogicalPlan, LogicalSegment};
use crate::physical::{PhysicalPlan, SegPlan};
use std::fmt::Write;

/// Renders the unoptimized logical plan.
pub fn explain_logical(plan: &LogicalPlan) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Concat  [{} frames @ {} fps]",
        plan.n_frames,
        plan.frame_dur.recip()
    );
    for (i, seg) in plan.segments.iter().enumerate() {
        let last = i + 1 == plan.segments.len();
        explain_segment(&mut out, seg, "", last);
    }
    out
}

fn explain_segment(out: &mut String, seg: &LogicalSegment, prefix: &str, last: bool) {
    let branch = if last { "└─" } else { "├─" };
    let _ = writeln!(
        out,
        "{prefix}{branch} [{}..{})",
        seg.out_start,
        seg.out_start + seg.count
    );
    let child_prefix = format!("{prefix}{}  ", if last { " " } else { "│" });
    explain_node(out, &seg.node, &child_prefix, true);
}

fn explain_node(out: &mut String, node: &LogicalNode, prefix: &str, last: bool) {
    let branch = if last { "└─" } else { "├─" };
    match node {
        LogicalNode::Clip { video, time } => {
            let _ = writeln!(
                out,
                "{prefix}{branch} Clip {video}[{time}]  (decode→encode)"
            );
        }
        LogicalNode::Filter { program, inputs } => {
            let _ = writeln!(
                out,
                "{prefix}{branch} Filter {}  (decode→encode)",
                program.describe()
            );
            let child_prefix = format!("{prefix}{}  ", if last { " " } else { "│" });
            for (i, input) in inputs.iter().enumerate() {
                explain_node(out, input, &child_prefix, i + 1 == inputs.len());
            }
        }
        LogicalNode::Concat { segments } => {
            let _ = writeln!(out, "{prefix}{branch} Concat");
            let child_prefix = format!("{prefix}{}  ", if last { " " } else { "│" });
            for (i, s) in segments.iter().enumerate() {
                explain_segment(out, s, &child_prefix, i + 1 == segments.len());
            }
        }
    }
}

/// Renders the optimized physical plan.
pub fn explain_physical(plan: &PhysicalPlan) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Output  [{} frames, {} | copied {:.0}%]",
        plan.n_frames,
        plan.out_params.frame_ty,
        plan.copy_fraction() * 100.0
    );
    for (i, seg) in plan.segments.iter().enumerate() {
        let last = i + 1 == plan.segments.len();
        let branch = if last { "└─" } else { "├─" };
        match &seg.plan {
            SegPlan::Render { program, inputs } => {
                let srcs: Vec<String> = inputs
                    .iter()
                    .map(|c| {
                        if c.variant.is_original() {
                            format!("{}[{}]", c.video, c.time)
                        } else {
                            format!("{}@{}[{}]", c.video, c.variant, c.time)
                        }
                    })
                    .collect();
                let _ = writeln!(
                    out,
                    "{branch} [{}..{}) Render {}  ⇐ {}",
                    seg.out_start,
                    seg.out_start + seg.count,
                    program.describe(),
                    srcs.join(", ")
                );
            }
            SegPlan::StreamCopy {
                video,
                src_from,
                src_to,
            } => {
                let _ = writeln!(
                    out,
                    "{branch} [{}..{}) ◆ StreamCopy {video} #{src_from}..#{src_to}",
                    seg.out_start,
                    seg.out_start + seg.count,
                );
            }
        }
    }
    let s = &plan.stats;
    let _ = writeln!(
        out,
        "  stats: merged={} elided={} smart_cuts={} shards={} rendered={} copied={}",
        s.merged_filters,
        s.elided_identities,
        s.smart_cuts,
        s.shards,
        s.frames_rendered,
        s.frames_copied
    );
    out
}

#[cfg(test)]
mod tests {
    use crate::logical::lower_spec;
    use crate::meta::{PlanContext, SourceMeta};
    use crate::optimizer::{optimize, OptimizerConfig};
    use v2v_codec::CodecParams;
    use v2v_frame::FrameType;
    use v2v_spec::builder::blur;
    use v2v_spec::{OutputSettings, SpecBuilder};
    use v2v_time::{r, Rational};

    fn setup() -> (crate::logical::LogicalPlan, PlanContext) {
        let output = OutputSettings {
            frame_ty: FrameType::yuv420p(64, 64),
            frame_dur: r(1, 30),
            gop_size: 30,
            quantizer: 2,
        };
        let spec = SpecBuilder::new(output)
            .video("a", "a.svc")
            .append_clip("a", r(1, 1), r(2, 1))
            .append_filtered("a", r(5, 1), r(1, 1), |e| blur(e, 1.0))
            .build();
        let meta = SourceMeta {
            params: CodecParams::new(FrameType::yuv420p(64, 64), 30, 2),
            start: Rational::ZERO,
            frame_dur: r(1, 30),
            count: 300,
            keyframes: (0..300).step_by(30).collect(),
        };
        (
            lower_spec(&spec).unwrap(),
            PlanContext::new().with_source("a", meta),
        )
    }

    #[test]
    fn logical_explain_shows_operator_tree() {
        let (plan, _) = setup();
        let text = super::explain_logical(&plan);
        assert!(text.contains("Concat"));
        assert!(text.contains("Clip a[t"));
        assert!(text.contains("Filter Blur"));
        assert!(text.contains("decode→encode"));
    }

    #[test]
    fn physical_explain_marks_stream_copies() {
        let (plan, ctx) = setup();
        let phys = optimize(&plan, &ctx, &OptimizerConfig::default()).unwrap();
        let text = super::explain_physical(&phys);
        assert!(
            text.contains("◆ StreamCopy"),
            "copy marker missing:\n{text}"
        );
        assert!(text.contains("Render"));
        assert!(text.contains("stats:"));
    }
}
