//! The heuristic rewrite optimizer (paper §III-D).

use crate::logical::{LogicalNode, LogicalPlan, LogicalSegment};
use crate::meta::PlanContext;
use crate::physical::{PhysicalPlan, PlanStats, SegPlan, Segment};
use crate::program::{FrameProgram, InputClip, ProgArg};
use crate::trace::PlanTrace;
use crate::PlanError;
use v2v_codec::CodecParams;
use v2v_spec::TransformOp;

/// Which rewrite opportunities the optimizer may take.
///
/// Clip-into-filter fusion and operator merging are structural to
/// physicalization (turning them off means running the unoptimized
/// logical plan — see the naive executor); the copy-class optimizations
/// and sharding are toggleable for ablation.
#[derive(Clone, Copy, Debug)]
pub struct OptimizerConfig {
    /// Allow keyframe-aligned pure clips to become stream copies.
    pub stream_copy: bool,
    /// Allow unaligned pure clips to be smart-cut (head re-encode +
    /// copied remainder).
    pub smart_cut: bool,
    /// Also re-encode the clip's *final* partial GOP (the paper's exact
    /// smart-cut shape). H.264 B-frames can reference future frames, so
    /// FFmpeg-based engines must re-encode both ends; SVC has no
    /// B-frames, so tail copies are legal and this defaults off.
    pub conservative_tail: bool,
    /// Split long render segments at output-GOP boundaries for parallel
    /// execution.
    pub shard: bool,
    /// Minimum render-segment length (frames) worth sharding.
    pub shard_min_frames: u64,
    /// Target shard length in output GOPs.
    pub shard_gops: u64,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            stream_copy: true,
            smart_cut: true,
            conservative_tail: false,
            shard: true,
            shard_min_frames: 64,
            shard_gops: 2,
        }
    }
}

impl OptimizerConfig {
    /// Everything off: physicalization (fusion + merging) only.
    pub fn fusion_only() -> OptimizerConfig {
        OptimizerConfig {
            stream_copy: false,
            smart_cut: false,
            shard: false,
            ..Default::default()
        }
    }
}

/// Optimizes a logical plan into a physical plan, discarding the
/// rewrite trace. See [`optimize_traced`] for the traced variant.
pub fn optimize(
    plan: &LogicalPlan,
    ctx: &PlanContext,
    config: &OptimizerConfig,
) -> Result<PhysicalPlan, PlanError> {
    optimize_traced(plan, ctx, config).map(|(phys, _)| phys)
}

/// Optimizes a logical plan into a physical plan, recording one
/// [`RewriteEvent`](crate::trace::RewriteEvent) per rewrite application
/// (rule name, operator site, before/after node counts) into the
/// returned [`PlanTrace`].
pub fn optimize_traced(
    plan: &LogicalPlan,
    ctx: &PlanContext,
    config: &OptimizerConfig,
) -> Result<(PhysicalPlan, PlanTrace), PlanError> {
    let mut stats = PlanStats::default();
    let mut trace = PlanTrace {
        logical_nodes: plan.op_count() as u64,
        ..Default::default()
    };

    // Pass 1: flatten nested concats into the top-level segment list.
    let mut segments = Vec::new();
    for seg in &plan.segments {
        flatten(seg, &mut segments, &mut trace);
    }
    segments.sort_by_key(|s| s.out_start);

    // Pass 2: simplify each node (merge filters, elide identities).
    for seg in &mut segments {
        let out_start = seg.out_start;
        seg.node = simplify(
            std::mem::replace(&mut seg.node, LogicalNode::Concat { segments: vec![] }),
            out_start,
            &mut stats,
            &mut trace,
        );
    }

    // Resolve output stream parameters: pure splice plans keep the
    // (common) source parameters so copies can serve the whole output.
    let out_params = resolve_out_params(plan, &segments, ctx);

    // Pass 3: physicalize with stream-copy / smart-cut decisions.
    let mut phys: Vec<Segment> = Vec::new();
    for seg in &segments {
        physicalize(
            seg, plan, ctx, config, out_params, &mut phys, &mut stats, &mut trace,
        )?;
    }

    // Pass 4: temporal sharding of long renders.
    if config.shard {
        phys = shard(
            phys,
            plan,
            ctx,
            out_params.gop_size as u64,
            config,
            &mut stats,
            &mut trace,
        );
    }

    for s in &phys {
        match &s.plan {
            SegPlan::Render { .. } => {
                stats.frames_rendered += s.count;
            }
            SegPlan::StreamCopy { .. } => {
                stats.frames_copied += s.count;
            }
        }
    }
    stats.render_segments = phys.iter().filter(|s| !s.plan.is_copy()).count() as u64;
    stats.copy_segments = phys.iter().filter(|s| s.plan.is_copy()).count() as u64;

    trace.physical_segments = phys.len() as u64;
    let out = PhysicalPlan {
        segments: phys,
        out_params,
        frame_dur: plan.frame_dur,
        domain_start: plan.domain_start,
        n_frames: plan.n_frames,
        stats,
    };
    debug_assert_eq!(out.validate(), Ok(()));
    Ok((out, trace))
}

fn flatten(seg: &LogicalSegment, out: &mut Vec<LogicalSegment>, trace: &mut PlanTrace) {
    match &seg.node {
        LogicalNode::Concat { segments } => {
            trace.record(
                "concat_flatten",
                seg.out_start,
                format!("{} nested segment(s) hoisted", segments.len()),
                1 + segments.len() as u64,
                segments.len() as u64,
            );
            for s in segments {
                flatten(s, out, trace);
            }
        }
        _ => out.push(seg.clone()),
    }
}

/// Bottom-up simplification: operator merging and identity elision.
fn simplify(
    node: LogicalNode,
    out_start: u64,
    stats: &mut PlanStats,
    trace: &mut PlanTrace,
) -> LogicalNode {
    match node {
        LogicalNode::Clip { .. } => node,
        LogicalNode::Concat { segments } => LogicalNode::Concat {
            segments: segments
                .into_iter()
                .map(|s| {
                    let s_start = s.out_start;
                    LogicalSegment {
                        node: simplify(s.node, s_start, stats, trace),
                        ..s
                    }
                })
                .collect(),
        },
        LogicalNode::Filter { program, inputs } => {
            let inputs: Vec<LogicalNode> = inputs
                .into_iter()
                .map(|n| simplify(n, out_start, stats, trace))
                .collect();
            // Identity elision.
            let program = elide_identity_ops(program, out_start, stats, trace);
            if program.is_identity_of_input() && inputs.len() == 1 {
                stats.elided_identities += 1;
                trace.record("elide_identity", out_start, "identity filter removed", 2, 1);
                return inputs.into_iter().next().expect("one input");
            }
            // Operator merging: inline any input that is itself a filter.
            let (program, inputs) = merge_filter_inputs(program, inputs, out_start, stats, trace);
            LogicalNode::Filter { program, inputs }
        }
    }
}

/// Removes `Identity` applications inside a program.
fn elide_identity_ops(
    p: FrameProgram,
    out_start: u64,
    stats: &mut PlanStats,
    trace: &mut PlanTrace,
) -> FrameProgram {
    match p {
        FrameProgram::Input(_) => p,
        FrameProgram::Op { op, args } => {
            let args: Vec<ProgArg> = args
                .into_iter()
                .map(|a| match a {
                    ProgArg::Frame(f) => {
                        ProgArg::Frame(elide_identity_ops(f, out_start, stats, trace))
                    }
                    d => d,
                })
                .collect();
            if op == TransformOp::Identity {
                if let Some(ProgArg::Frame(f)) = args.into_iter().next() {
                    stats.elided_identities += 1;
                    trace.record(
                        "elide_identity",
                        out_start,
                        "identity op removed from program",
                        2,
                        1,
                    );
                    return f;
                }
                unreachable!("identity always has one frame arg");
            }
            FrameProgram::Op { op, args }
        }
    }
}

/// Splices filter inputs that are themselves filters into the parent
/// program (operator merging — one fused pass instead of an encode/decode
/// pair per call).
fn merge_filter_inputs(
    mut program: FrameProgram,
    mut inputs: Vec<LogicalNode>,
    out_start: u64,
    stats: &mut PlanStats,
    trace: &mut PlanTrace,
) -> (FrameProgram, Vec<LogicalNode>) {
    loop {
        let Some(j) = inputs
            .iter()
            .position(|n| matches!(n, LogicalNode::Filter { .. }))
        else {
            return (program, inputs);
        };
        let LogicalNode::Filter {
            program: inner,
            inputs: inner_inputs,
        } = inputs.remove(j)
        else {
            unreachable!("position() found a filter");
        };
        let inner_len = inner_inputs.len();
        let inner_desc = inner.describe();
        // New input list: [..j) ++ inner ++ [j..).
        let tail: Vec<LogicalNode> = inputs.split_off(j);
        inputs.extend(inner_inputs);
        inputs.extend(tail);
        // Rewire: slot j becomes the inner program (its slots shifted to
        // start at j); slots after j shift by inner_len - 1.
        let replacement = inner.shift_inputs(j);
        program = program.substitute(j, &replacement, &|n| {
            if n > j {
                n + inner_len - 1
            } else {
                n
            }
        });
        stats.merged_filters += 1;
        trace.record(
            "merge_filters",
            out_start,
            format!("inlined {inner_desc} into slot {j}"),
            2,
            1,
        );
    }
}

/// Output parameters: a plan whose every segment is a pure clip of
/// sources sharing identical codec parameters (and the output frame rate)
/// inherits those parameters; anything else re-encodes at the spec's
/// output settings.
fn resolve_out_params(
    plan: &LogicalPlan,
    segments: &[LogicalSegment],
    ctx: &PlanContext,
) -> CodecParams {
    let spec_params = CodecParams {
        frame_ty: plan.output.frame_ty,
        gop_size: plan.output.gop_size,
        quantizer: plan.output.quantizer,
        preset: Default::default(),
    };
    let mut common: Option<CodecParams> = None;
    for seg in segments {
        let LogicalNode::Clip { video, time } = &seg.node else {
            return spec_params;
        };
        if !time.is_shift() {
            return spec_params; // retimed clips always re-encode
        }
        let Some(meta) = ctx.source(video) else {
            return spec_params;
        };
        if meta.frame_dur != plan.frame_dur {
            return spec_params;
        }
        match common {
            None => common = Some(meta.params),
            Some(p) if p.compatible_with(&meta.params) => {}
            Some(_) => return spec_params,
        }
    }
    common.unwrap_or(spec_params)
}

#[allow(clippy::too_many_arguments)]
fn physicalize(
    seg: &LogicalSegment,
    plan: &LogicalPlan,
    ctx: &PlanContext,
    config: &OptimizerConfig,
    out_params: CodecParams,
    out: &mut Vec<Segment>,
    stats: &mut PlanStats,
    trace: &mut PlanTrace,
) -> Result<(), PlanError> {
    match &seg.node {
        LogicalNode::Concat { .. } => unreachable!("concats flattened in pass 1"),
        LogicalNode::Filter { program, inputs } => {
            let mut clips = Vec::with_capacity(inputs.len());
            for i in inputs {
                match i {
                    LogicalNode::Clip { video, time } => {
                        if ctx.source(video).is_none() {
                            return Err(PlanError::UnknownVideo(video.clone()));
                        }
                        clips.push(InputClip::new(video.clone(), *time));
                    }
                    other => unreachable!("merging left a non-clip input: {other:?}"),
                }
            }
            out.push(Segment {
                out_start: seg.out_start,
                count: seg.count,
                plan: SegPlan::Render {
                    program: program.clone(),
                    inputs: clips,
                },
            });
            Ok(())
        }
        LogicalNode::Clip { video, time } => {
            let meta = ctx
                .source(video)
                .ok_or_else(|| PlanError::UnknownVideo(video.clone()))?;
            let clip = InputClip::new(video.clone(), *time);
            let render = |from: u64, n: u64| Segment {
                out_start: from,
                count: n,
                plan: SegPlan::Render {
                    program: FrameProgram::Input(0),
                    inputs: vec![clip.clone()],
                },
            };
            // Copy legality: identical params, same frame rate, shift-only
            // time map landing on the source grid.
            let copyable = config.stream_copy
                && meta.params.compatible_with(&out_params)
                && meta.frame_dur == plan.frame_dur
                && time.is_shift();
            if !copyable {
                out.push(render(seg.out_start, seg.count));
                return Ok(());
            }
            let t0 = plan.instant_of(seg.out_start);
            let Some(src_from) = meta.index_of(time.apply(t0)) else {
                return Err(PlanError::MissingFrame {
                    video: video.clone(),
                    at: time.apply(t0),
                });
            };
            let src_to = src_from + seg.count;
            if src_to > meta.count {
                return Err(PlanError::MissingFrame {
                    video: video.clone(),
                    at: time.apply(plan.instant_of(seg.out_start + seg.count - 1)),
                });
            }
            if meta.is_keyframe(src_from) {
                trace.record(
                    "stream_copy",
                    seg.out_start,
                    format!("{video} #{src_from}..#{src_to} keyframe-aligned"),
                    1,
                    1,
                );
                out.push(Segment {
                    out_start: seg.out_start,
                    count: seg.count,
                    plan: SegPlan::StreamCopy {
                        video: video.clone(),
                        src_from,
                        src_to,
                    },
                });
                return Ok(());
            }
            // Smart cut: re-encode up to the first interior keyframe,
            // stream-copy the rest. If the clipped range contains no
            // keyframe (the paper's Q1-on-ToS case), fall back to a full
            // re-encode.
            if config.smart_cut {
                if let Some(kf) = meta.first_keyframe_in(src_from + 1, src_to) {
                    let head = kf - src_from;
                    // Conservative tail: stop the copy at the last
                    // keyframe ≤ src_to and re-encode the remainder, as an
                    // engine over a B-frame codec must.
                    let copy_to = if config.conservative_tail {
                        meta.keyframes
                            .iter()
                            .copied()
                            .take_while(|&k| k <= src_to)
                            .last()
                            .unwrap_or(kf)
                            .max(kf)
                    } else {
                        src_to
                    };
                    if copy_to <= kf {
                        out.push(render(seg.out_start, seg.count));
                        return Ok(());
                    }
                    out.push(render(seg.out_start, head));
                    out.push(Segment {
                        out_start: seg.out_start + head,
                        count: copy_to - kf,
                        plan: SegPlan::StreamCopy {
                            video: video.clone(),
                            src_from: kf,
                            src_to: copy_to,
                        },
                    });
                    let tail = src_to - copy_to;
                    if copy_to < src_to {
                        out.push(render(
                            seg.out_start + head + (copy_to - kf),
                            src_to - copy_to,
                        ));
                    }
                    stats.smart_cuts += 1;
                    trace.record(
                        "smart_cut",
                        seg.out_start,
                        format!(
                            "{video} #{src_from}..#{src_to}: re-encode {head}-frame head, \
                             copy #{kf}..#{copy_to}{}",
                            if tail > 0 {
                                format!(", re-encode {tail}-frame tail")
                            } else {
                                String::new()
                            }
                        ),
                        1,
                        if tail > 0 { 3 } else { 2 },
                    );
                    return Ok(());
                }
            }
            out.push(render(seg.out_start, seg.count));
            Ok(())
        }
    }
}

/// Splits long render segments at output-GOP multiples so the engine can
/// encode them in parallel and splice the results.
#[allow(clippy::too_many_arguments)]
fn shard(
    segments: Vec<Segment>,
    plan: &LogicalPlan,
    ctx: &PlanContext,
    gop: u64,
    config: &OptimizerConfig,
    stats: &mut PlanStats,
    trace: &mut PlanTrace,
) -> Vec<Segment> {
    let chunk = (gop * config.shard_gops.max(1)).max(1);
    let mut out = Vec::with_capacity(segments.len());
    for seg in segments {
        match &seg.plan {
            SegPlan::StreamCopy { .. } => out.push(seg),
            SegPlan::Render { program, inputs } => {
                if seg.count < config.shard_min_frames.max(2 * chunk) {
                    out.push(seg);
                    continue;
                }
                // Cut points: aligned to the first input's *source*
                // keyframes so each shard's decoder enters at a keyframe
                // instead of rolling from a distant one (with sparse
                // keyframes, naive chunking makes total decode quadratic).
                // Non-shift or grid-mismatched inputs fall back to
                // uniform chunking (seek cost is then inherent).
                let cuts = keyframe_cuts(&seg, inputs, plan, ctx)
                    .map(|candidates| {
                        let mut picked = Vec::new();
                        let mut last = 0u64;
                        for c in candidates {
                            if c >= last + chunk && seg.count - c >= chunk / 2 {
                                picked.push(c);
                                last = c;
                            }
                        }
                        picked
                    })
                    .unwrap_or_else(|| (1..seg.count / chunk).map(|k| k * chunk).collect());
                if cuts.is_empty() {
                    out.push(seg);
                    continue;
                }
                trace.record(
                    "shard",
                    seg.out_start,
                    format!(
                        "{}-frame render split into {} shard(s)",
                        seg.count,
                        cuts.len() + 1
                    ),
                    1,
                    cuts.len() as u64 + 1,
                );
                let mut prev = 0u64;
                for cut in cuts.iter().copied().chain([seg.count]) {
                    out.push(Segment {
                        out_start: seg.out_start + prev,
                        count: cut - prev,
                        plan: SegPlan::Render {
                            program: program.clone(),
                            inputs: inputs.clone(),
                        },
                    });
                    if prev > 0 {
                        stats.shards += 1;
                    }
                    prev = cut;
                }
            }
        }
    }
    out
}

/// Source-keyframe positions of the segment's first input, expressed as
/// output-frame offsets within the segment. `None` when the input's grid
/// does not line up with the output (fall back to uniform chunking).
fn keyframe_cuts(
    seg: &Segment,
    inputs: &[InputClip],
    plan: &LogicalPlan,
    ctx: &PlanContext,
) -> Option<Vec<u64>> {
    let clip = inputs.first()?;
    if !clip.time.is_shift() {
        return None;
    }
    let meta = ctx.source(&clip.video)?;
    if meta.frame_dur != plan.frame_dur {
        return None;
    }
    let t0 = plan.instant_of(seg.out_start);
    let src_from = meta.index_of(clip.time.apply(t0))?;
    let src_to = src_from + seg.count;
    Some(
        meta.keyframes
            .iter()
            .copied()
            .filter(|&k| k > src_from && k < src_to)
            .map(|k| k - src_from)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::lower_spec;
    use crate::meta::SourceMeta;
    use v2v_frame::FrameType;
    use v2v_spec::builder::{blur, grid4, zoom};
    use v2v_spec::{OutputSettings, RenderExpr, SpecBuilder};
    use v2v_time::{r, Rational};

    fn output() -> OutputSettings {
        OutputSettings {
            frame_ty: FrameType::yuv420p(64, 64),
            frame_dur: r(1, 30),
            gop_size: 30,
            quantizer: 2,
        }
    }

    /// A source matching the output params (copy-compatible) with a
    /// keyframe every `gop` frames.
    fn source(count: u64, gop: u64) -> SourceMeta {
        SourceMeta {
            params: CodecParams {
                frame_ty: FrameType::yuv420p(64, 64),
                gop_size: 30,
                quantizer: 2,
                preset: Default::default(),
            },
            start: Rational::ZERO,
            frame_dur: r(1, 30),
            count,
            keyframes: (0..count).step_by(gop as usize).collect(),
        }
    }

    fn ctx(count: u64, gop: u64) -> PlanContext {
        PlanContext::new().with_source("a", source(count, gop))
    }

    #[test]
    fn keyframe_aligned_clip_becomes_pure_copy() {
        // Clip starting at source frame 30 (a keyframe with gop 30).
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .append_clip("a", r(1, 1), r(2, 1))
            .build();
        let plan = lower_spec(&spec).unwrap();
        let phys = optimize(&plan, &ctx(300, 30), &OptimizerConfig::default()).unwrap();
        assert_eq!(phys.segments.len(), 1);
        assert!(matches!(
            phys.segments[0].plan,
            SegPlan::StreamCopy {
                src_from: 30,
                src_to: 90,
                ..
            }
        ));
        assert_eq!(phys.stats.frames_copied, 60);
        assert_eq!(phys.stats.smart_cuts, 0);
    }

    #[test]
    fn unaligned_clip_smart_cuts() {
        // Clip starting at frame 15, mid-GOP; first keyframe inside is 30.
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .append_clip("a", r(1, 2), r(2, 1))
            .build();
        let plan = lower_spec(&spec).unwrap();
        let phys = optimize(&plan, &ctx(300, 30), &OptimizerConfig::default()).unwrap();
        assert_eq!(phys.stats.smart_cuts, 1);
        assert_eq!(phys.segments.len(), 2);
        assert!(matches!(phys.segments[0].plan, SegPlan::Render { .. }));
        assert_eq!(phys.segments[0].count, 15, "head re-encodes to keyframe 30");
        assert!(matches!(
            phys.segments[1].plan,
            SegPlan::StreamCopy {
                src_from: 30,
                src_to: 75,
                ..
            }
        ));
    }

    #[test]
    fn no_interior_keyframe_means_no_smart_cut() {
        // The paper's Q1-on-ToS observation: sparse keyframes, clip fits
        // inside one GOP → optimized == full re-encode.
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .append_clip("a", r(1, 2), r(2, 1))
            .build();
        let plan = lower_spec(&spec).unwrap();
        // Keyframes every 240 frames: none inside [15, 75).
        let phys = optimize(&plan, &ctx(300, 240), &OptimizerConfig::default()).unwrap();
        assert_eq!(phys.stats.smart_cuts, 0);
        assert_eq!(phys.stats.frames_copied, 0);
    }

    #[test]
    fn filter_chain_merges_into_one_render() {
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .append_filtered("a", r(0, 1), r(1, 1), |e| blur(zoom(e, 2.0), 1.0))
            .build();
        let plan = lower_spec(&spec).unwrap();
        let phys = optimize(&plan, &ctx(300, 30), &OptimizerConfig::default()).unwrap();
        assert!(phys.stats.merged_filters >= 1);
        let renders: Vec<_> = phys.segments.iter().filter(|s| !s.plan.is_copy()).collect();
        assert!(!renders.is_empty());
        for s in renders {
            if let SegPlan::Render { program, inputs } = &s.plan {
                assert_eq!(program.op_count(), 2, "both ops fused in one program");
                assert_eq!(inputs.len(), 1);
            }
        }
    }

    #[test]
    fn grid_of_filters_merges_all() {
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .append_with(r(1, 1), |_| {
                grid4(
                    RenderExpr::video("a"),
                    blur(RenderExpr::video_shifted("a", r(2, 1)), 1.0),
                    zoom(RenderExpr::video_shifted("a", r(4, 1)), 2.0),
                    RenderExpr::video_shifted("a", r(6, 1)),
                )
            })
            .build();
        let plan = lower_spec(&spec).unwrap();
        let phys = optimize(&plan, &ctx(300, 30), &OptimizerConfig::fusion_only()).unwrap();
        assert_eq!(phys.segments.len(), 1);
        if let SegPlan::Render { program, inputs } = &phys.segments[0].plan {
            assert_eq!(inputs.len(), 4);
            assert_eq!(program.op_count(), 3); // grid + blur + zoom
            assert_eq!(program.input_count(), 4);
        } else {
            panic!("expected render");
        }
    }

    #[test]
    fn pure_clip_inherits_source_resolution() {
        // A pure clip keeps the source's stream parameters so the copy
        // class applies even when they differ from the spec's output
        // settings (the paper's Q6-on-KABR outputs are source-bitrate
        // sized for exactly this reason).
        let meta = SourceMeta {
            params: CodecParams::new(FrameType::yuv420p(128, 128), 30, 2),
            start: Rational::ZERO,
            frame_dur: r(1, 30),
            count: 300,
            keyframes: (0..300).step_by(30).collect(),
        };
        let ctx = PlanContext::new().with_source("a", meta);
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .append_clip("a", r(1, 1), r(2, 1))
            .build();
        let plan = lower_spec(&spec).unwrap();
        let phys = optimize(&plan, &ctx, &OptimizerConfig::default()).unwrap();
        assert_eq!(phys.stats.frames_copied, 60);
        assert_eq!(phys.out_params.frame_ty, FrameType::yuv420p(128, 128));
    }

    #[test]
    fn mixed_source_params_force_reencode() {
        // Splicing two sources with different codec params: the output
        // must re-encode at the spec's settings and nothing can copy.
        let mk = |w: u32| SourceMeta {
            params: CodecParams::new(FrameType::yuv420p(w, w), 30, 2),
            start: Rational::ZERO,
            frame_dur: r(1, 30),
            count: 300,
            keyframes: (0..300).step_by(30).collect(),
        };
        let ctx = PlanContext::new()
            .with_source("a", mk(128))
            .with_source("b", mk(96));
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .video("b", "b.svc")
            .append_clip("a", r(1, 1), r(1, 1))
            .append_clip("b", r(1, 1), r(1, 1))
            .build();
        let plan = lower_spec(&spec).unwrap();
        let phys = optimize(&plan, &ctx, &OptimizerConfig::default()).unwrap();
        assert_eq!(phys.stats.frames_copied, 0);
        assert_eq!(phys.out_params.frame_ty, FrameType::yuv420p(64, 64));
    }

    #[test]
    fn pure_splice_inherits_source_params() {
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .append_clip("a", r(0, 1), r(1, 1))
            .append_clip("a", r(5, 1), r(1, 1))
            .build();
        let plan = lower_spec(&spec).unwrap();
        let c = ctx(600, 30);
        let phys = optimize(&plan, &c, &OptimizerConfig::default()).unwrap();
        assert_eq!(phys.out_params, c.source("a").unwrap().params);
    }

    #[test]
    fn stream_copy_disabled_renders_everything() {
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .append_clip("a", r(1, 1), r(2, 1))
            .build();
        let plan = lower_spec(&spec).unwrap();
        let cfg = OptimizerConfig {
            stream_copy: false,
            ..Default::default()
        };
        let phys = optimize(&plan, &ctx(300, 30), &cfg).unwrap();
        assert_eq!(phys.stats.frames_copied, 0);
        assert!(phys.stats.frames_rendered == 60);
    }

    #[test]
    fn sharding_splits_long_renders() {
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .append_filtered("a", r(0, 1), r(8, 1), |e| blur(e, 1.0))
            .build();
        let plan = lower_spec(&spec).unwrap();
        let phys = optimize(&plan, &ctx(300, 30), &OptimizerConfig::default()).unwrap();
        assert!(
            phys.segments.len() > 1,
            "240 frames shard at 60-frame chunks"
        );
        assert!(phys.stats.shards >= 3);
        assert_eq!(phys.validate(), Ok(()));
        // All shards share the program.
        let counts: u64 = phys.segments.iter().map(|s| s.count).sum();
        assert_eq!(counts, 240);
    }

    #[test]
    fn unknown_video_fails() {
        let spec = SpecBuilder::new(output())
            .video("ghost", "g.svc")
            .append_clip("ghost", r(0, 1), r(1, 1))
            .build();
        let plan = lower_spec(&spec).unwrap();
        assert!(matches!(
            optimize(&plan, &PlanContext::new(), &OptimizerConfig::default()),
            Err(PlanError::UnknownVideo(_))
        ));
    }

    #[test]
    fn clip_past_source_end_fails() {
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .append_clip("a", r(9, 1), r(2, 1))
            .build();
        let plan = lower_spec(&spec).unwrap();
        assert!(matches!(
            optimize(&plan, &ctx(300, 30), &OptimizerConfig::default()),
            Err(PlanError::MissingFrame { .. })
        ));
    }

    #[test]
    fn conservative_tail_reencodes_both_partial_gops() {
        // Clip [15, 75) with keyframes every 30: head [15,30) re-encodes,
        // copy [30,60), tail [60,75) re-encodes in conservative mode
        // (B-frame semantics) but copies in default mode.
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .append_clip("a", r(1, 2), r(2, 1))
            .build();
        let plan = lower_spec(&spec).unwrap();
        let cfg = OptimizerConfig {
            conservative_tail: true,
            shard: false,
            ..Default::default()
        };
        let phys = optimize(&plan, &ctx(300, 30), &cfg).unwrap();
        assert_eq!(phys.stats.smart_cuts, 1);
        assert_eq!(phys.segments.len(), 3);
        assert!(matches!(phys.segments[0].plan, SegPlan::Render { .. }));
        assert!(matches!(
            phys.segments[1].plan,
            SegPlan::StreamCopy {
                src_from: 30,
                src_to: 60,
                ..
            }
        ));
        assert!(matches!(phys.segments[2].plan, SegPlan::Render { .. }));
        assert_eq!(phys.segments[2].count, 15);
        assert_eq!(phys.validate(), Ok(()));

        // Default mode copies the tail too.
        let default = optimize(
            &plan,
            &ctx(300, 30),
            &OptimizerConfig {
                shard: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(default.segments.len(), 2);
        assert!(default.stats.frames_copied > phys.stats.frames_copied);
    }
}
