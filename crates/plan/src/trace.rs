//! The optimizer's rewrite trace.
//!
//! [`optimize_traced`] records one [`RewriteEvent`] per rewrite
//! *application* — not just the counters in
//! [`PlanStats`](crate::PlanStats), but which rule fired where and how
//! the plan shrank or split. The trace is what `EXPLAIN` prints beside
//! the plan and what CI's metrics-snapshot job pins against golden
//! JSON, so the optimizer cannot silently stop (or start) firing a
//! rewrite between PRs.
//!
//! [`optimize_traced`]: crate::optimize_traced

use serde::{Deserialize, Serialize};

/// One rewrite application.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RewriteEvent {
    /// Rule name: `concat_flatten`, `merge_filters`, `elide_identity`,
    /// `stream_copy`, `smart_cut`, or `shard`.
    pub rule: String,
    /// Output frame index of the segment the rule touched — the stable
    /// operator-site id (operators are keyed by where their output
    /// lands).
    pub out_start: u64,
    /// Human-readable specifics (sources, ranges, fused op names).
    pub detail: String,
    /// Plan nodes/segments at the site before the rewrite.
    pub nodes_before: u64,
    /// Plan nodes/segments at the site after the rewrite.
    pub nodes_after: u64,
}

/// The full rewrite history of one `optimize` run.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanTrace {
    /// Operator count of the logical plan going in.
    pub logical_nodes: u64,
    /// Segment count of the physical plan coming out.
    pub physical_segments: u64,
    /// Every rewrite application, in firing order.
    pub events: Vec<RewriteEvent>,
}

impl PlanTrace {
    /// Records one rewrite application.
    pub fn record(
        &mut self,
        rule: &str,
        out_start: u64,
        detail: impl Into<String>,
        nodes_before: u64,
        nodes_after: u64,
    ) {
        self.events.push(RewriteEvent {
            rule: rule.to_string(),
            out_start,
            detail: detail.into(),
            nodes_before,
            nodes_after,
        });
    }

    /// How many times `rule` fired.
    pub fn fired(&self, rule: &str) -> usize {
        self.events.iter().filter(|e| e.rule == rule).count()
    }

    /// Distinct rule names that fired, sorted.
    pub fn rules_fired(&self) -> Vec<String> {
        let mut rules: Vec<String> = self.events.iter().map(|e| e.rule.clone()).collect();
        rules.sort();
        rules.dedup();
        rules
    }

    /// Pretty rendering: one line per event.
    pub fn pretty(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "rewrites: {} event(s), {} logical node(s) -> {} physical segment(s)",
            self.events.len(),
            self.logical_nodes,
            self.physical_segments
        );
        for e in &self.events {
            let _ = writeln!(
                out,
                "  {:<15} @{:<6} {}  [{} -> {} node(s)]",
                e.rule, e.out_start, e.detail, e.nodes_before, e.nodes_after
            );
        }
        out
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serializes")
    }

    /// Parses a trace back from JSON.
    pub fn from_json(text: &str) -> Result<PlanTrace, serde_json::Error> {
        serde_json::from_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut t = PlanTrace::default();
        t.record("stream_copy", 0, "a #30..#90", 1, 1);
        t.record("smart_cut", 60, "a #15..#75 head 15", 1, 2);
        t.record("stream_copy", 120, "a #0..#30", 1, 1);
        assert_eq!(t.fired("stream_copy"), 2);
        assert_eq!(t.fired("shard"), 0);
        assert_eq!(t.rules_fired(), vec!["smart_cut", "stream_copy"]);
        assert!(t.pretty().contains("smart_cut"));
    }

    #[test]
    fn json_round_trip() {
        let mut t = PlanTrace {
            logical_nodes: 5,
            physical_segments: 3,
            events: vec![],
        };
        t.record("merge_filters", 0, "Blur∘Zoom", 2, 1);
        let back = PlanTrace::from_json(&t.to_json()).unwrap();
        assert_eq!(back, t);
    }
}
