//! The persistent, content-addressed render cache.
//!
//! VSS-style cross-query reuse: rendered bytes are the expensive thing
//! V2V produces, and most production query streams repeat themselves —
//! the same highlight reel requested twice, two dashboards asking for
//! overlapping windows of one camera. The cache persists two kinds of
//! entries under one directory, both in the checksummed [`Fragment`]
//! format:
//!
//! * **whole results** (`res-<fingerprint>.svf`) — keyed by the
//!   canonical plan fingerprint
//!   ([`v2v_plan::fingerprint::plan_fingerprint`]); a repeat query is
//!   answered by reading packets back, zero decode, zero encode;
//! * **per-segment fragments** (`seg-<key>.svf`) — keyed by
//!   [`v2v_plan::fingerprint::segment_keys`]; an *overlapping* query
//!   whose plan shares segments with an earlier one splices the shared
//!   fragments by stream copy and renders only the novel remainder.
//!
//! Three properties the serving layer depends on:
//!
//! * **Crash safety.** Writes go to a temp file in the same directory
//!   and are published by `rename` — a reader never observes a torn
//!   entry, and leftover temp files from a crash are swept at open.
//! * **Corruption tolerance.** Every read verifies the fragment
//!   checksum; a bad entry (bit rot, truncation, a meddling process) is
//!   evicted and the caller re-renders. Classified as
//!   [`ErrorKind::CorruptData`] internally, never a panic.
//! * **Bounded footprint.** A byte budget with LRU eviction; the
//!   just-inserted entry is never evicted by its own insertion.
//!
//! [`ErrorKind::CorruptData`]: v2v_container::ContainerError::BadFile

use crate::flight::FragmentFlight;
use crate::mem_tier::MemTier;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use v2v_container::{fragment_to_bytes, read_fragment, Fragment, VideoStream};

/// Render-cache activity for one run, embedded in
/// [`ExecStats`](crate::ExecStats) and the trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Whole results served straight from the cache.
    #[serde(default)]
    pub result_hits: u64,
    /// Segments spliced from cached fragments instead of rendered.
    #[serde(default)]
    pub segment_hits: u64,
    /// Entries evicted during the run (budget pressure or corruption).
    #[serde(default)]
    pub evictions: u64,
    /// Compressed bytes reused from the cache instead of re-produced.
    #[serde(default)]
    pub bytes_reused: u64,
    /// Whole responses coalesced into an identical in-flight render
    /// (daemon single-flight by plan fingerprint).
    #[serde(default)]
    pub inflight_hits: u64,
    /// Segments received from another run's concurrent render instead
    /// of rendered here ([`FragmentFlight`] subscription).
    #[serde(default)]
    pub shared_segment_hits: u64,
    /// Cache hits (result or segment) served by the in-memory tier
    /// without touching disk. Also counted in `result_hits` /
    /// `segment_hits`; this field attributes the tier.
    #[serde(default)]
    pub mem_hits: u64,
    /// Segments whose fragments were produced by a remote worker
    /// (coordinator dispatch) instead of rendered in-process.
    #[serde(default)]
    pub remote_segments: u64,
}

impl CacheStats {
    /// Component-wise sum.
    pub fn merge(mut self, other: CacheStats) -> CacheStats {
        self.result_hits += other.result_hits;
        self.segment_hits += other.segment_hits;
        self.evictions += other.evictions;
        self.bytes_reused += other.bytes_reused;
        self.inflight_hits += other.inflight_hits;
        self.shared_segment_hits += other.shared_segment_hits;
        self.mem_hits += other.mem_hits;
        self.remote_segments += other.remote_segments;
        self
    }
}

/// Which tier served a cache hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheTier {
    /// Served from the in-memory hot tier, no disk I/O.
    Memory,
    /// Read (and checksum-verified) from the persistent directory.
    Disk,
}

struct EntryMeta {
    bytes: u64,
    /// Last-touch stamp for LRU eviction.
    stamp: u64,
}

struct Index {
    entries: HashMap<String, EntryMeta>,
    total_bytes: u64,
    next_stamp: u64,
}

/// A persistent, byte-budgeted, content-addressed cache of rendered
/// fragments and whole results. Thread-safe: the serving daemon shares
/// one instance across concurrent jobs.
pub struct RenderCache {
    dir: PathBuf,
    budget_bytes: u64,
    index: Mutex<Index>,
    evictions: AtomicU64,
    tmp_seq: AtomicU64,
    /// Optional hot tier above the directory; entries are promoted on
    /// access frequency and consulted before any disk read.
    mem: Option<MemTier>,
}

impl std::fmt::Debug for RenderCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RenderCache")
            .field("dir", &self.dir)
            .field("budget_bytes", &self.budget_bytes)
            .field("bytes_held", &self.bytes_held())
            .field("evictions", &self.evictions())
            .finish()
    }
}

fn result_name(fingerprint: u64) -> String {
    format!("res-{fingerprint:016x}.svf")
}

fn segment_name(key: u64) -> String {
    format!("seg-{key:016x}.svf")
}

impl RenderCache {
    /// Opens (or creates) a cache rooted at `dir` with the given byte
    /// budget, seeding the LRU order from entry modification times and
    /// sweeping temp files left by a crashed writer.
    pub fn open(dir: impl AsRef<Path>, budget_bytes: u64) -> std::io::Result<RenderCache> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut found: Vec<(String, u64, std::time::SystemTime)> = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".tmp") {
                let _ = std::fs::remove_file(entry.path());
                continue;
            }
            if !name.ends_with(".svf") {
                continue;
            }
            let meta = entry.metadata()?;
            let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
            found.push((name, meta.len(), mtime));
        }
        found.sort_by_key(|(_, _, mtime)| *mtime);
        let mut index = Index {
            entries: HashMap::with_capacity(found.len()),
            total_bytes: 0,
            next_stamp: 0,
        };
        for (name, bytes, _) in found {
            index.next_stamp += 1;
            index.total_bytes += bytes;
            index.entries.insert(
                name,
                EntryMeta {
                    bytes,
                    stamp: index.next_stamp,
                },
            );
        }
        let cache = RenderCache {
            dir,
            budget_bytes,
            index: Mutex::new(index),
            evictions: AtomicU64::new(0),
            tmp_seq: AtomicU64::new(0),
            mem: None,
        };
        // A crash can leave the directory over budget; restore the
        // invariant before serving (these do not count as run-visible
        // evictions — no run is in flight yet).
        let mut guard = cache.lock();
        cache.evict_to_budget(&mut guard, None);
        drop(guard);
        cache.evictions.store(0, Ordering::Relaxed);
        Ok(cache)
    }

    /// Attaches a hot in-memory tier with the given byte budget (0
    /// disables it). Builder-style; call before sharing the cache.
    #[must_use]
    pub fn with_mem_tier(mut self, budget_bytes: u64) -> RenderCache {
        self.mem = (budget_bytes > 0).then(|| MemTier::new(budget_bytes));
        self
    }

    /// The in-memory tier, if one is attached.
    pub fn mem_tier(&self) -> Option<&MemTier> {
        self.mem.as_ref()
    }

    /// The cache's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Entries evicted since open (budget pressure or corruption).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Total bytes currently indexed.
    pub fn bytes_held(&self) -> u64 {
        self.lock().total_bytes
    }

    /// Number of entries currently indexed.
    pub fn entries(&self) -> usize {
        self.lock().entries.len()
    }

    /// The index holds only redundant metadata (the files are the
    /// truth), so recover from poisoning rather than cascading a panic
    /// into every later request.
    fn lock(&self) -> MutexGuard<'_, Index> {
        self.index.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up a cached whole result by plan fingerprint.
    pub fn load_result(&self, fingerprint: u64) -> Option<VideoStream> {
        self.load_result_tiered(fingerprint).map(|(s, _)| s)
    }

    /// Looks up a cached whole result, reporting which tier served it.
    pub fn load_result_tiered(&self, fingerprint: u64) -> Option<(VideoStream, CacheTier)> {
        let name = result_name(fingerprint);
        if let Some(mem) = &self.mem {
            if let Some(frag) = mem.get(&name) {
                // A resident fragment was validated when it was read
                // from disk; a conversion failure here means memory
                // corruption — drop it and fall through to disk.
                match (*frag).clone().into_stream() {
                    Ok(stream) => return Some((stream, CacheTier::Memory)),
                    Err(_) => mem.invalidate(&name),
                }
            }
        }
        let frag = Arc::new(self.load(&name)?);
        match (*frag).clone().into_stream() {
            Ok(stream) => {
                if let Some(mem) = &self.mem {
                    mem.admit(&name, &frag, frag.byte_size());
                }
                Some((stream, CacheTier::Disk))
            }
            Err(_) => {
                self.evict_corrupt(&name);
                None
            }
        }
    }

    /// Looks up a cached segment fragment by key.
    pub fn load_segment(&self, key: u64) -> Option<Fragment> {
        self.load_segment_tiered(key).map(|(f, _)| (*f).clone())
    }

    /// Looks up a cached segment fragment, reporting which tier served
    /// it. The fragment is shared (`Arc`) so a memory hit copies
    /// nothing.
    pub fn load_segment_tiered(&self, key: u64) -> Option<(Arc<Fragment>, CacheTier)> {
        let name = segment_name(key);
        if let Some(mem) = &self.mem {
            if let Some(frag) = mem.get(&name) {
                return Some((frag, CacheTier::Memory));
            }
        }
        let frag = Arc::new(self.load(&name)?);
        if let Some(mem) = &self.mem {
            mem.admit(&name, &frag, frag.byte_size());
        }
        Some((frag, CacheTier::Disk))
    }

    /// Stores a whole result under the plan fingerprint. Best-effort:
    /// an I/O failure leaves the cache without the entry, nothing more.
    pub fn store_result(&self, fingerprint: u64, stream: &VideoStream) -> std::io::Result<()> {
        let frag = Fragment::from_stream(stream);
        self.store(&result_name(fingerprint), &frag)
    }

    /// Stores a rendered segment fragment under its key.
    pub fn store_segment(&self, key: u64, frag: &Fragment) -> std::io::Result<()> {
        self.store(&segment_name(key), frag)
    }

    fn load(&self, name: &str) -> Option<Fragment> {
        {
            let mut idx = self.lock();
            idx.next_stamp += 1;
            let stamp = idx.next_stamp;
            match idx.entries.get_mut(name) {
                Some(e) => e.stamp = stamp,
                None => return None,
            }
        }
        match read_fragment(self.dir.join(name)) {
            Ok(frag) => Some(frag),
            Err(_) => {
                // Corrupt (checksum, truncation) or vanished: evict so
                // the slot is re-rendered, never surfaced.
                self.evict_corrupt(name);
                None
            }
        }
    }

    fn store(&self, name: &str, frag: &Fragment) -> std::io::Result<()> {
        let bytes = fragment_to_bytes(frag)
            .map_err(|e| std::io::Error::other(format!("fragment encode: {e}")))?;
        if self.budget_bytes > 0 && bytes.len() as u64 > self.budget_bytes {
            // Larger than the whole budget: storing it would only evict
            // everything else and then itself on the next insert.
            return Ok(());
        }
        let seq = self.tmp_seq.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .dir
            .join(format!("{name}.{}.{seq}.tmp", std::process::id()));
        std::fs::write(&tmp, &bytes)?;
        // Publish atomically; a concurrent writer of the same key simply
        // wins the rename race with identical content.
        std::fs::rename(&tmp, self.dir.join(name))?;
        let mut idx = self.lock();
        idx.next_stamp += 1;
        let stamp = idx.next_stamp;
        let added = bytes.len() as u64;
        if let Some(old) = idx.entries.insert(
            name.to_string(),
            EntryMeta {
                bytes: added,
                stamp,
            },
        ) {
            idx.total_bytes -= old.bytes;
        }
        idx.total_bytes += added;
        self.evict_to_budget(&mut idx, Some(name));
        Ok(())
    }

    /// Evicts least-recently-used entries until the total fits the
    /// budget, never evicting `keep` (the just-inserted entry).
    fn evict_to_budget(&self, idx: &mut Index, keep: Option<&str>) {
        if self.budget_bytes == 0 {
            return;
        }
        while idx.total_bytes > self.budget_bytes {
            let victim = idx
                .entries
                .iter()
                .filter(|(name, _)| Some(name.as_str()) != keep)
                .min_by_key(|(_, e)| e.stamp)
                .map(|(name, _)| name.clone());
            let Some(victim) = victim else { break };
            if let Some(old) = idx.entries.remove(&victim) {
                idx.total_bytes -= old.bytes;
            }
            let _ = std::fs::remove_file(self.dir.join(&victim));
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drops a corrupt entry: file and index row, counted as an
    /// eviction exactly once even under concurrent detection.
    fn evict_corrupt(&self, name: &str) {
        let mut idx = self.lock();
        if let Some(old) = idx.entries.remove(name) {
            idx.total_bytes -= old.bytes;
            let _ = std::fs::remove_file(self.dir.join(name));
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Per-run segment-cache context threaded through
/// [`ExecOptions`](crate::ExecOptions): the shared tiers plus this
/// plan's per-segment keys (aligned with `plan.segments`; `None` marks
/// an uncacheable segment). Either tier may be absent — a daemon with
/// no `--cache-dir` still shares in-flight renders, and a one-shot
/// `v2v run` uses the disk cache without a flight.
#[derive(Debug, Default)]
pub struct SegmentCacheCtx {
    /// The shared persistent cache (with optional memory tier).
    pub cache: Option<Arc<RenderCache>>,
    /// The in-flight single-flight registry for concurrent sharing.
    pub flight: Option<Arc<FragmentFlight>>,
    /// Per-segment keys from [`v2v_plan::fingerprint::segment_keys`].
    pub keys: Vec<Option<u64>>,
    /// Optional remote dispatch hook (coordinator role): consulted for
    /// keyed whole segments that miss every local tier, before the
    /// in-process render.
    pub remote: Option<Arc<dyn crate::remote::RemoteRenderer>>,
}

impl SegmentCacheCtx {
    /// The cache key for segment `seg_index`, if it is cacheable.
    pub fn key(&self, seg_index: usize) -> Option<u64> {
        self.keys.get(seg_index).copied().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v2v_codec::CodecParams;
    use v2v_container::StreamWriter;
    use v2v_frame::{Frame, FrameType};
    use v2v_time::{r, Rational};

    fn sample_fragment(n: usize, fill: u8) -> Fragment {
        let ty = FrameType::gray8(32, 32);
        let params = CodecParams::new(ty, 4, 0);
        let mut w = StreamWriter::new(params, Rational::ZERO, r(1, 30));
        for i in 0..n {
            let mut f = Frame::black(ty);
            for v in f.plane_mut(0).data_mut() {
                *v = fill.wrapping_add(i as u8);
            }
            w.push_frame(&f).unwrap();
        }
        Fragment::from_stream(&w.finish().unwrap())
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("v2v_render_cache_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_load_round_trip_and_persistence() {
        let dir = temp_dir("round_trip");
        let frag = sample_fragment(6, 10);
        {
            let cache = RenderCache::open(&dir, 1 << 20).unwrap();
            cache.store_segment(42, &frag).unwrap();
            let back = cache.load_segment(42).unwrap();
            assert_eq!(back.len(), 6);
            assert!(cache.load_segment(43).is_none());
        }
        // A fresh open over the same directory sees the entry.
        let cache = RenderCache::open(&dir, 1 << 20).unwrap();
        assert_eq!(cache.entries(), 1);
        assert!(cache.load_segment(42).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_is_evicted_not_surfaced() {
        let dir = temp_dir("corrupt");
        let cache = RenderCache::open(&dir, 1 << 20).unwrap();
        cache.store_segment(7, &sample_fragment(5, 3)).unwrap();
        // Flip a byte in the packet table on disk.
        let path = dir.join(segment_name(7));
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(cache.load_segment(7).is_none(), "corrupt entry must miss");
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.entries(), 0);
        assert!(!path.exists(), "corrupt file must be deleted");
        // The slot is reusable.
        cache.store_segment(7, &sample_fragment(5, 3)).unwrap();
        assert!(cache.load_segment(7).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_eviction_respects_budget() {
        let dir = temp_dir("budget");
        let frag = sample_fragment(8, 1);
        let one = fragment_to_bytes(&frag).unwrap().len() as u64;
        // Room for two entries, not three.
        let cache = RenderCache::open(&dir, one * 2 + one / 2).unwrap();
        cache.store_segment(1, &frag).unwrap();
        cache.store_segment(2, &frag).unwrap();
        assert_eq!(cache.evictions(), 0);
        // Touch 1 so 2 is the LRU victim.
        assert!(cache.load_segment(1).is_some());
        cache.store_segment(3, &frag).unwrap();
        assert!(cache.evictions() >= 1);
        assert!(cache.bytes_held() <= cache.budget_bytes());
        assert!(cache.load_segment(2).is_none(), "LRU victim gone");
        assert!(cache.load_segment(1).is_some());
        assert!(cache.load_segment(3).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_sweeps_temp_files_and_over_budget_dirs() {
        let dir = temp_dir("sweep");
        {
            let cache = RenderCache::open(&dir, 1 << 20).unwrap();
            for k in 0..4 {
                cache
                    .store_segment(k, &sample_fragment(8, k as u8))
                    .unwrap();
            }
        }
        std::fs::write(dir.join("seg-dead.svf.123.tmp"), b"torn write").unwrap();
        // Reopen with a budget that fits only ~2 entries.
        let one = fragment_to_bytes(&sample_fragment(8, 0)).unwrap().len() as u64;
        let cache = RenderCache::open(&dir, one * 2 + one / 2).unwrap();
        assert!(cache.bytes_held() <= cache.budget_bytes());
        assert!(!dir.join("seg-dead.svf.123.tmp").exists());
        // Open-time pruning is not charged to any run.
        assert_eq!(cache.evictions(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn result_entries_rebuild_streams() {
        let dir = temp_dir("result");
        let cache = RenderCache::open(&dir, 1 << 20).unwrap();
        let frag = sample_fragment(6, 9);
        let stream = frag.clone().into_stream().unwrap();
        cache.store_result(0xabcd, &stream).unwrap();
        let back = cache.load_result(0xabcd).unwrap();
        assert_eq!(back.len(), stream.len());
        assert_eq!(back.content_digest(), stream.content_digest());
        assert!(cache.load_result(0xabce).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mem_tier_serves_repeats_without_disk() {
        let dir = temp_dir("mem_tier");
        let cache = RenderCache::open(&dir, 1 << 20)
            .unwrap()
            .with_mem_tier(1 << 20);
        cache.store_segment(11, &sample_fragment(6, 4)).unwrap();
        // First load: disk (counts one mem-tier access).
        let (_, tier) = cache.load_segment_tiered(11).unwrap();
        assert_eq!(tier, CacheTier::Disk);
        // Second load: disk again, but now past the promotion gate.
        let (_, tier) = cache.load_segment_tiered(11).unwrap();
        assert_eq!(tier, CacheTier::Disk);
        // Third load: memory — survives deleting the backing file.
        std::fs::remove_file(dir.join(segment_name(11))).unwrap();
        let (frag, tier) = cache.load_segment_tiered(11).unwrap();
        assert_eq!(tier, CacheTier::Memory);
        assert_eq!(frag.len(), 6);
        assert_eq!(cache.mem_tier().unwrap().hits(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn result_entries_promote_to_mem_tier() {
        let dir = temp_dir("mem_result");
        let cache = RenderCache::open(&dir, 1 << 20)
            .unwrap()
            .with_mem_tier(1 << 20);
        let stream = sample_fragment(5, 8).into_stream().unwrap();
        cache.store_result(0x77, &stream).unwrap();
        assert_eq!(cache.load_result_tiered(0x77).unwrap().1, CacheTier::Disk);
        assert_eq!(cache.load_result_tiered(0x77).unwrap().1, CacheTier::Disk);
        let (back, tier) = cache.load_result_tiered(0x77).unwrap();
        assert_eq!(tier, CacheTier::Memory);
        assert_eq!(back.content_digest(), stream.content_digest());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_entry_is_not_stored() {
        let dir = temp_dir("oversized");
        let cache = RenderCache::open(&dir, 64).unwrap();
        cache.store_segment(5, &sample_fragment(8, 2)).unwrap();
        assert_eq!(
            cache.entries(),
            0,
            "entry larger than the budget is skipped"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
