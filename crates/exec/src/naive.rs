//! The naive (unoptimized) reference executor.
//!
//! Interprets the unoptimized logical plan exactly as its operator tree
//! reads (Fig. 2 top): every `Clip` decodes its source range and encodes
//! an intermediate stream; every `Filter` decodes its input
//! intermediates, applies one transformation, and encodes again; the
//! final `Concat` splices the compatible intermediates packet-wise (the
//! ffmpeg concat-demuxer behaviour). Single-threaded. This is the
//! "unoptimized plan" arm of the paper's Figs. 3–4.

use crate::apply::apply_program;
use crate::catalog::Catalog;
use crate::cursor::SourceCursor;
use crate::executor::ExecStats;
use crate::ExecError;
use std::time::{Duration, Instant};
use v2v_codec::CodecParams;
use v2v_container::{StreamWriter, VideoStream};
use v2v_frame::ops::conform;
use v2v_plan::{LogicalNode, LogicalPlan, LogicalSegment};
use v2v_time::Rational;

/// Executes the unoptimized logical plan, materializing an encoded
/// intermediate at every operator.
pub fn execute_naive(
    plan: &LogicalPlan,
    catalog: &Catalog,
) -> Result<(VideoStream, ExecStats, Duration), ExecError> {
    let started = Instant::now();
    let mut stats = ExecStats::default();
    let out_params = CodecParams {
        frame_ty: plan.output.frame_ty,
        gop_size: plan.output.gop_size,
        quantizer: plan.output.quantizer,
        preset: Default::default(),
    };

    // Materialize every top-level segment, then concat. Concat splices
    // compatible encoded intermediates without re-encoding (the ffmpeg
    // concat-demuxer behaviour) — intermediates are always produced at
    // `out_params`, so this always applies.
    let mut writer = StreamWriter::new(out_params, Rational::ZERO, plan.frame_dur);
    for seg in &plan.segments {
        let intermediate = materialize(plan, seg, &seg.node, catalog, out_params, &mut stats)?;
        writer.push_copied(intermediate.packets())?;
        stats.packets_copied += intermediate.len() as u64;
        stats.bytes_copied += intermediate.byte_size();
        stats.segments += 1;
    }
    let out = writer.finish()?;
    Ok((out, stats, started.elapsed()))
}

/// Materializes one operator's output as an encoded intermediate stream.
fn materialize(
    plan: &LogicalPlan,
    seg: &LogicalSegment,
    node: &LogicalNode,
    catalog: &Catalog,
    out_params: CodecParams,
    stats: &mut ExecStats,
) -> Result<VideoStream, ExecError> {
    match node {
        LogicalNode::Clip { video, time } => {
            let stream = catalog
                .video(video)
                .ok_or_else(|| ExecError::UnknownVideo(video.clone()))?;
            let mut cursor = SourceCursor::new(stream, video.clone());
            let mut w = StreamWriter::new(out_params, Rational::ZERO, plan.frame_dur);
            for i in 0..seg.count {
                let t = plan.instant_of(seg.out_start + i);
                let src_t = time.apply(t);
                let idx = stream
                    .index_of(src_t)
                    .ok_or_else(|| ExecError::MissingFrame {
                        video: video.clone(),
                        at: src_t,
                    })? as u64;
                let frame = cursor.frame_at(idx)?;
                w.push_frame(&conform(&frame, out_params.frame_ty))?;
                stats.frames_encoded += 1;
            }
            stats.frames_decoded += cursor.frames_decoded;
            w.finish().map_err(ExecError::from)
        }
        LogicalNode::Filter { program, inputs } => {
            // Materialize each input operator fully, then decode them in
            // lockstep and apply this single transformation.
            let materialized: Vec<VideoStream> = inputs
                .iter()
                .map(|n| materialize(plan, seg, n, catalog, out_params, stats))
                .collect::<Result<_, _>>()?;
            let mut cursors: Vec<SourceCursor<'_>> = materialized
                .iter()
                .map(|s| SourceCursor::new(s, "intermediate"))
                .collect();
            let mut w = StreamWriter::new(out_params, Rational::ZERO, plan.frame_dur);
            let mut frames = Vec::with_capacity(cursors.len());
            for i in 0..seg.count {
                let t = plan.instant_of(seg.out_start + i);
                frames.clear();
                for c in &mut cursors {
                    frames.push(c.frame_at(i)?);
                }
                let out = apply_program(program, t, &frames, catalog.arrays(), catalog)?;
                w.push_frame(&conform(&out, out_params.frame_ty))?;
                stats.frames_encoded += 1;
            }
            stats.frames_decoded += cursors.iter().map(|c| c.frames_decoded).sum::<u64>();
            w.finish().map_err(ExecError::from)
        }
        LogicalNode::Concat { segments } => {
            // Nested splice: materialize children and concatenate the
            // compatible encoded intermediates packet-wise.
            let mut w = StreamWriter::new(out_params, Rational::ZERO, plan.frame_dur);
            for child in segments {
                let s = materialize(plan, child, &child.node, catalog, out_params, stats)?;
                w.push_copied(s.packets())?;
                stats.packets_copied += s.len() as u64;
                stats.bytes_copied += s.byte_size();
            }
            w.finish().map_err(ExecError::from)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{execute, ExecOptions};
    use v2v_frame::{marker, Frame, FrameType};
    use v2v_plan::{lower_spec, optimize, OptimizerConfig};
    use v2v_spec::builder::{blur, grid4};
    use v2v_spec::{OutputSettings, RenderExpr, SpecBuilder};
    use v2v_time::r;

    fn marked_stream(n: usize, gop: u32) -> VideoStream {
        let ty = FrameType::gray8(64, 32);
        let params = CodecParams::new(ty, gop, 0);
        let mut w = StreamWriter::new(params, Rational::ZERO, r(1, 30));
        for i in 0..n {
            let mut f = Frame::black(ty);
            marker::embed(&mut f, i as u32);
            w.push_frame(&f).unwrap();
        }
        w.finish().unwrap()
    }

    fn output() -> OutputSettings {
        OutputSettings {
            frame_ty: FrameType::gray8(64, 32),
            frame_dur: r(1, 30),
            gop_size: 30,
            quantizer: 0,
        }
    }

    /// Naive and optimized execution must agree frame-for-frame at q=0.
    fn assert_equivalent(spec: &v2v_spec::Spec, catalog: &Catalog) -> (ExecStats, ExecStats) {
        let logical = lower_spec(spec).unwrap();
        let (naive_out, naive_stats, _) = execute_naive(&logical, catalog).unwrap();
        let phys = optimize(
            &logical,
            &catalog.plan_context(),
            &OptimizerConfig::default(),
        )
        .unwrap();
        let (opt_out, opt_stats, _) = execute(&phys, catalog, &ExecOptions::default()).unwrap();
        assert_eq!(naive_out.len(), opt_out.len());
        let (fa, _) = naive_out.decode_range(0, naive_out.len()).unwrap();
        let (fb, _) = opt_out.decode_range(0, opt_out.len()).unwrap();
        for (i, (a, b)) in fa.iter().zip(&fb).enumerate() {
            // Markers must agree exactly; pixels must agree exactly at
            // q=0 when both paths render, and markers survive copies.
            assert_eq!(
                marker::read(a),
                marker::read(b),
                "frame {i} shows different source frames"
            );
            assert_eq!(a, b, "frame {i} raster differs");
        }
        (naive_stats, opt_stats)
    }

    #[test]
    fn filtered_clip_naive_does_double_work() {
        let mut catalog = Catalog::new();
        catalog.add_video("a", marked_stream(90, 30));
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .append_filtered("a", r(0, 1), r(2, 1), |e| blur(e, 0.8))
            .build();
        let (naive, opt) = assert_equivalent(&spec, &catalog);
        // Naive: clip encode + filter encode = 2 encodes per frame (the
        // final concat splices by copy); optimized renders once.
        assert_eq!(naive.frames_encoded, 120);
        assert_eq!(opt.frames_encoded, 60);
        assert!(naive.frames_decoded > opt.frames_decoded);
    }

    #[test]
    fn grid_equivalence() {
        let mut catalog = Catalog::new();
        catalog.add_video("a", marked_stream(120, 30));
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .append_with(r(1, 1), |_| {
                grid4(
                    RenderExpr::video("a"),
                    RenderExpr::video_shifted("a", r(1, 1)),
                    RenderExpr::video_shifted("a", r(2, 1)),
                    RenderExpr::video_shifted("a", r(3, 1)),
                )
            })
            .build();
        // Markers land in the top-left cell (input 0); grid scales the
        // cell, so markers are unreadable — compare raster only.
        let logical = lower_spec(&spec).unwrap();
        let (naive_out, _, _) = execute_naive(&logical, &catalog).unwrap();
        let phys = optimize(
            &logical,
            &catalog.plan_context(),
            &OptimizerConfig::default(),
        )
        .unwrap();
        let (opt_out, _, _) = execute(&phys, &catalog, &ExecOptions::default()).unwrap();
        let (fa, _) = naive_out.decode_range(0, naive_out.len()).unwrap();
        let (fb, _) = opt_out.decode_range(0, opt_out.len()).unwrap();
        assert_eq!(fa, fb);
    }

    #[test]
    fn pure_clip_naive_still_reencodes() {
        let mut catalog = Catalog::new();
        catalog.add_video("a", marked_stream(120, 30));
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .append_clip("a", r(1, 1), r(2, 1))
            .build();
        let (naive, opt) = assert_equivalent(&spec, &catalog);
        assert_eq!(naive.frames_encoded, 60, "the clip still re-encodes");
        assert_eq!(opt.frames_encoded, 0, "optimized is a pure copy");
        assert_eq!(opt.packets_copied, 60);
    }

    #[test]
    fn splice_equivalence() {
        let mut catalog = Catalog::new();
        catalog.add_video("a", marked_stream(150, 30));
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .append_clip("a", r(0, 1), r(1, 1))
            .append_clip("a", r(2, 1), r(1, 1))
            .append_clip("a", r(4, 1), r(1, 1))
            .build();
        let (naive, opt) = assert_equivalent(&spec, &catalog);
        assert_eq!(naive.frames_encoded, 90, "every clip re-encodes");
        assert_eq!(opt.frames_encoded, 0);
    }
}
