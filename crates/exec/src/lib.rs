#![warn(missing_docs)]

//! V2V execution engines (paper §IV-A).
//!
//! Two executors over the same sources:
//!
//! * [`execute`] — the optimized engine: runs a [`v2v_plan::PhysicalPlan`]
//!   through the cost-based [`scheduler`] (longest-processing-time
//!   dispatch, decode-ahead pipelining, runtime splitting of long render
//!   segments at GOP boundaries), fusing decode → transform → encode per
//!   render segment and splicing stream-copied packet runs without
//!   touching raster data;
//! * [`execute_naive`] — the unoptimized reference: interprets the
//!   logical plan operator-at-a-time, materializing an encoded
//!   intermediate stream at every `Clip`, `Filter`, and the final
//!   `Concat` — the cost model of the paper's unoptimized plans (Fig. 2
//!   top), used as the baseline arm in Figs. 3–4.
//!
//! Both return the output [`v2v_container::VideoStream`] plus
//! [`ExecStats`] (frames decoded/encoded, packets and bytes copied) so
//! benchmarks and tests can attribute costs.

pub mod apply;
pub mod catalog;
pub mod cursor;
pub mod executor;
pub mod fault;
pub mod flight;
pub mod gop_cache;
pub mod mem_tier;
pub mod naive;
pub mod remote;
pub mod render_cache;
pub mod scheduler;
pub mod streaming;
pub mod trace;

pub use apply::{apply_program, UdfKernel};
pub use catalog::{Catalog, VariantSource};
pub use cursor::SourceCursor;
pub use executor::{execute, execute_traced, ExecOptions, ExecStats};
pub use fault::{error_kind, ErrorPolicy, FaultAction, FaultInjector, FaultKind, SegmentFault};
pub use flight::{Claim, FlightGuard, FragmentFlight};
pub use gop_cache::{GopCache, GopFrames};
pub use mem_tier::MemTier;
pub use naive::execute_naive;
pub use remote::RemoteRenderer;
pub use render_cache::{CacheStats, CacheTier, RenderCache, SegmentCacheCtx};
pub use scheduler::{segment_cost, PartOutput, SchedReport};
pub use streaming::{execute_streaming, execute_streaming_with, StreamingStats};
pub use trace::{ExecTrace, SegmentTrace, StageTimes};

/// Errors raised during execution.
#[derive(Debug, thiserror::Error)]
pub enum ExecError {
    /// A plan referenced a video the catalog cannot serve.
    #[error("unknown video '{0}' in catalog")]
    UnknownVideo(String),
    /// A program used a UDF id with no registered kernel.
    #[error("no kernel registered for UDF #{0}")]
    UnknownUdf(u16),
    /// A UDF kernel failed.
    #[error("UDF #{id} failed: {message}")]
    UdfFailed {
        /// The UDF id.
        id: u16,
        /// The kernel's error message.
        message: String,
    },
    /// A program referenced an overlay image the catalog cannot serve.
    #[error("unknown overlay image '{0}' in catalog")]
    UnknownImage(String),
    /// A source frame needed by the plan does not exist.
    #[error("video '{video}' has no frame at {at}")]
    MissingFrame {
        /// The video.
        video: String,
        /// The missing instant.
        at: v2v_time::Rational,
    },
    /// A data expression produced a value of the wrong type for an
    /// operator argument.
    #[error("{op:?} argument {index}: expected {want}, got {got}")]
    BadArgument {
        /// The operator.
        op: v2v_spec::TransformOp,
        /// Zero-based signature index.
        index: usize,
        /// Expected type.
        want: &'static str,
        /// Runtime value type.
        got: &'static str,
    },
    /// A source read failed at the I/O level (real or injected).
    #[error("i/o failure reading '{video}' at frame {frame}: {message}")]
    SourceIo {
        /// The video being read.
        video: String,
        /// Source frame index of the failed read.
        frame: u64,
        /// The underlying failure.
        message: String,
    },
    /// Container-level failure.
    #[error(transparent)]
    Container(#[from] v2v_container::ContainerError),
    /// Codec-level failure.
    #[error("codec error: {0}")]
    Codec(#[from] v2v_codec::CodecError),
    /// Plan-level failure.
    #[error("plan error: {0}")]
    Plan(#[from] v2v_plan::PlanError),
}
