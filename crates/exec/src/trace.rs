//! Per-operator execution traces.
//!
//! [`execute_traced`] returns an [`ExecTrace`] beside the output: one
//! [`SegmentTrace`] per physical segment (the executor's operators),
//! each carrying the segment's own [`ExecStats`] and wall time. The
//! trace is what `EXPLAIN ANALYZE` annotates the plan with and what the
//! `--trace` CLI flag serializes, so a run's decode/copy split is
//! attributable operator by operator rather than only in aggregate.
//!
//! Wall times are measured and therefore unstable across machines;
//! golden-trace comparisons must restrict themselves to the counter
//! fields (see the metrics-snapshot CI job).
//!
//! [`execute_traced`]: crate::execute_traced

use crate::executor::ExecStats;
use crate::fault::SegmentFault;
use serde::{Deserialize, Serialize};

/// Busy time per pipeline stage of a render segment, in nanoseconds.
///
/// These are *busy* times, not span times: under the pipelined executor
/// the decode stage runs concurrently with compose/encode, so the sum of
/// the three can exceed the segment's `wall_ns`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageTimes {
    /// Source decoding and input-frame gathering (the prefetch stage).
    pub decode_ns: u64,
    /// Frame composition (`apply_program` + conform to the output type).
    pub compose_ns: u64,
    /// Encoding composed frames into output packets.
    pub encode_ns: u64,
}

impl StageTimes {
    /// Field-wise accumulation.
    pub fn merge(mut self, other: StageTimes) -> StageTimes {
        self.decode_ns += other.decode_ns;
        self.compose_ns += other.compose_ns;
        self.encode_ns += other.encode_ns;
        self
    }
}

/// Measured profile of one executed physical segment.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentTrace {
    /// Position of the segment in the physical plan (output order).
    pub index: u64,
    /// Segment kind: `stream_copy` or `render`.
    pub kind: String,
    /// First output frame index the segment produces.
    pub out_start: u64,
    /// Output frames the segment produces.
    pub frames: u64,
    /// The segment's own cost counters, including the GOP-cache lookups
    /// its cursors performed (hits/misses are attributed to exactly one
    /// cursor per request, so the roll-up is deterministic).
    pub stats: ExecStats,
    /// Segment wall time in nanoseconds (summed busy time of its parts
    /// when the scheduler split it). Unstable; excluded from golden
    /// comparisons.
    pub wall_ns: u64,
    /// Runtime parts the segment executed as: 1 unless the scheduler
    /// split it to feed idle workers. Load-dependent; excluded from
    /// golden comparisons.
    #[serde(default)]
    pub parts: u64,
    /// Per-stage busy times. Unstable; excluded from golden comparisons.
    #[serde(default)]
    pub stage: StageTimes,
}

/// Measured profile of one execution.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecTrace {
    /// Per-segment profiles, in output order.
    pub segments: Vec<SegmentTrace>,
    /// Run-level totals (includes shared-cache hit/miss counts).
    pub totals: ExecStats,
    /// End-to-end wall time in nanoseconds. Unstable; excluded from
    /// golden comparisons.
    pub wall_ns: u64,
    /// Structured error report: one entry per part that failed and was
    /// recovered, skipped, or substituted under the run's error policy.
    /// Empty on clean runs (and absent from their JSON).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub errors: Vec<SegmentFault>,
}

impl ExecTrace {
    /// Sum of per-segment frames decoded (the re-encode side of the
    /// copy/decode split).
    pub fn frames_decoded(&self) -> u64 {
        self.totals.frames_decoded
    }

    /// Sum of per-segment packets stream-copied.
    pub fn packets_copied(&self) -> u64 {
        self.totals.packets_copied
    }

    /// Pretty rendering: one line per segment plus a totals line.
    pub fn pretty(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for s in &self.segments {
            let _ = writeln!(
                out,
                "  seg {:<3} {:<11} @{:<6} {:>5} frame(s)  decoded {:>5}  encoded {:>5}  copied {:>5} pkt / {:>7} B  seeks {:>3}  {:.3} ms",
                s.index,
                s.kind,
                s.out_start,
                s.frames,
                s.stats.frames_decoded,
                s.stats.frames_encoded,
                s.stats.packets_copied,
                s.stats.bytes_copied,
                s.stats.seeks,
                s.wall_ns as f64 / 1e6,
            );
        }
        let t = &self.totals;
        let _ = writeln!(
            out,
            "  total: {} segment(s), {} decoded, {} encoded, {} copied, gop cache {}/{} hits, {:.3} ms",
            t.segments,
            t.frames_decoded,
            t.frames_encoded,
            t.packets_copied,
            t.gop_cache_hits,
            t.gop_cache_hits + t.gop_cache_misses,
            self.wall_ns as f64 / 1e6,
        );
        out
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serializes")
    }

    /// Parses a trace back from JSON.
    pub fn from_json(text: &str) -> Result<ExecTrace, serde_json::Error> {
        serde_json::from_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip() {
        let trace = ExecTrace {
            segments: vec![SegmentTrace {
                index: 0,
                kind: "stream_copy".into(),
                out_start: 0,
                frames: 60,
                stats: ExecStats {
                    packets_copied: 60,
                    bytes_copied: 12_345,
                    segments: 1,
                    ..Default::default()
                },
                wall_ns: 1_000,
                parts: 1,
                stage: StageTimes::default(),
            }],
            totals: ExecStats {
                packets_copied: 60,
                bytes_copied: 12_345,
                segments: 1,
                ..Default::default()
            },
            wall_ns: 2_000,
            errors: Vec::new(),
        };
        let back = ExecTrace::from_json(&trace.to_json()).unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.packets_copied(), 60);
        assert_eq!(back.frames_decoded(), 0);
    }

    #[test]
    fn pretty_mentions_each_segment() {
        let trace = ExecTrace {
            segments: vec![
                SegmentTrace {
                    index: 0,
                    kind: "stream_copy".into(),
                    ..Default::default()
                },
                SegmentTrace {
                    index: 1,
                    kind: "render".into(),
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        let text = trace.pretty();
        assert!(text.contains("stream_copy"));
        assert!(text.contains("render"));
        assert!(text.contains("total:"));
    }
}
