//! GOP-aware sequential source cursors.
//!
//! A render segment reads its inputs mostly in forward order; the cursor
//! keeps decoder state so consecutive reads cost one packet each, seeks
//! (backward jumps or gaps) re-enter at the preceding keyframe — the
//! same access pattern an FFmpeg-based engine gets from its demuxer.
//!
//! When attached to a [`GopCache`], the cursor decodes whole GOPs and
//! shares them through the cache, so concurrent segments reading the
//! same source ranges (grid cells, splice neighbours) decode each GOP
//! once. Frames come out behind [`Arc`] either way: the decoder's
//! zero-copy path means a served frame is never deep-copied.

use crate::fault::{FaultInjector, FaultKind};
use crate::gop_cache::{GopCache, GopFrames};
use crate::ExecError;
use std::sync::Arc;
use v2v_codec::{Decoder, Packet};
use v2v_container::{ContainerError, VideoStream};
use v2v_frame::Frame;

/// A stateful forward reader over one stream.
pub struct SourceCursor<'a> {
    stream: &'a VideoStream,
    /// Catalog name of the stream, for error reporting and cache keys.
    video: String,
    decoder: Decoder,
    cache: Option<&'a GopCache>,
    /// Fault-injection hook consulted before every packet decode.
    fault: Option<&'a FaultInjector>,
    /// The GOP currently borrowed from the cache: (keyframe index, frames).
    gop: Option<(u64, GopFrames)>,
    /// Index the decoder state corresponds to (last decoded), if any.
    at: Option<u64>,
    /// Last decoded frame (served for repeated reads of the same index).
    current: Option<Arc<Frame>>,
    /// Packets decoded through this cursor.
    pub frames_decoded: u64,
    /// Compressed bytes fed to the decoder through this cursor.
    pub bytes_decoded: u64,
    /// Keyframe entries: every decoder reset (initial positioning,
    /// backward jumps, forward jumps across a keyframe, GOP decodes).
    pub seeks: u64,
    /// GOP requests this cursor served from the shared cache (including
    /// waits on a decode another cursor was already running).
    pub gop_cache_hits: u64,
    /// GOP requests this cursor had to decode itself. Hits and misses
    /// are attributed to exactly one cursor per request, so per-segment
    /// roll-ups are deterministic regardless of worker interleaving.
    pub gop_cache_misses: u64,
}

impl<'a> SourceCursor<'a> {
    /// A cursor at the start of `stream`. `video` is the stream's
    /// catalog name, carried into `MissingFrame` errors and cache keys.
    pub fn new(stream: &'a VideoStream, video: impl Into<String>) -> SourceCursor<'a> {
        SourceCursor {
            stream,
            video: video.into(),
            decoder: Decoder::new(*stream.params()),
            cache: None,
            fault: None,
            gop: None,
            at: None,
            current: None,
            frames_decoded: 0,
            bytes_decoded: 0,
            seeks: 0,
            gop_cache_hits: 0,
            gop_cache_misses: 0,
        }
    }

    /// Attaches a shared GOP cache (ignored when the cache is disabled).
    pub fn with_cache(mut self, cache: &'a GopCache) -> SourceCursor<'a> {
        if cache.enabled() {
            self.cache = Some(cache);
        }
        self
    }

    /// Attaches a fault injector (ignored when it has no rules).
    pub fn with_fault(mut self, fault: &'a FaultInjector) -> SourceCursor<'a> {
        if !fault.is_empty() {
            self.fault = Some(fault);
        }
        self
    }

    /// The underlying stream.
    pub fn stream(&self) -> &'a VideoStream {
        self.stream
    }

    /// Decodes (or re-serves) frame `idx`.
    pub fn frame_at(&mut self, idx: u64) -> Result<Arc<Frame>, ExecError> {
        if idx >= self.stream.len() as u64 {
            return Err(ExecError::MissingFrame {
                video: self.video.clone(),
                at: self
                    .stream
                    .pts_of(self.stream.len().saturating_sub(1))
                    .unwrap_or_default(),
            });
        }
        if let Some(cache) = self.cache {
            return self.frame_from_cache(cache, idx);
        }
        if self.at == Some(idx) {
            if let Some(f) = &self.current {
                return Ok(f.clone());
            }
        }
        // Choose the roll start: continue forward, or reseek to the
        // keyframe at/before idx when behind/too far ahead.
        let from = match self.at {
            Some(at) if at < idx => at + 1,
            _ => {
                self.decoder.reset();
                self.seeks += 1;
                self.stream
                    .keyframe_at_or_before(idx as usize)
                    .ok_or(ContainerError::NoKeyframe)? as u64
            }
        };
        // If continuing forward would cross a keyframe anyway, entering at
        // that keyframe is never slower. (Mutually exclusive with the
        // reset above: a reseek already lands on this keyframe.)
        let from = match self.stream.keyframe_at_or_before(idx as usize) {
            Some(kf) if (kf as u64) > from => {
                self.decoder.reset();
                self.seeks += 1;
                kf as u64
            }
            _ => from,
        };
        let mut frame = None;
        for i in from..=idx {
            frame = Some(self.decode_packet(i)?);
        }
        // `from <= idx` always holds (a keyframe at or before `idx` was
        // found above), so the loop ran at least once.
        let frame = frame.ok_or(ContainerError::NoKeyframe)?;
        self.at = Some(idx);
        self.current = Some(frame.clone());
        Ok(frame)
    }

    /// Decodes source packet `i`, consulting the fault injector first.
    /// On an injected corruption/truncation the mangled bytes really go
    /// through the decoder (exercising the hardened parse path), and the
    /// result is a deterministic error either way.
    fn decode_packet(&mut self, i: u64) -> Result<Arc<Frame>, ExecError> {
        let pkt = self
            .stream
            .packets()
            .get(i as usize)
            .ok_or(ContainerError::NoKeyframe)?;
        if let Some(kind) = self.fault.and_then(|f| f.check(&self.video, i)) {
            return Err(self.injected_failure(pkt, i, kind));
        }
        let frame = self.decoder.decode_shared(pkt)?;
        self.frames_decoded += 1;
        self.bytes_decoded += pkt.size() as u64;
        Ok(frame)
    }

    /// Materializes one injected fault as the error a real failure of
    /// that kind would produce.
    fn injected_failure(&mut self, pkt: &Packet, i: u64, kind: FaultKind) -> ExecError {
        let mangled = match kind {
            FaultKind::Io => {
                return ExecError::SourceIo {
                    video: self.video.clone(),
                    frame: i,
                    message: "injected i/o failure".into(),
                };
            }
            FaultKind::CorruptPacket => {
                // Clobber the packet-kind byte: the decoder must reject
                // it without touching decoder state.
                let mut data = pkt.data.to_vec();
                if let Some(b) = data.first_mut() {
                    *b = 0xFF;
                }
                Packet::new(pkt.pts, pkt.keyframe, data.into())
            }
            FaultKind::TruncatedRead => {
                let cut = pkt.data.len() / 2;
                let half: &[u8] = pkt.data.get(..cut).unwrap_or_default();
                Packet::new(pkt.pts, pkt.keyframe, half.into())
            }
        };
        match self.decoder.decode_shared(&mangled) {
            Err(e) => ExecError::Codec(e),
            // The hardened decoder rejects every mangling above; keep the
            // fault deterministic even if a future codec tolerates one.
            Ok(_) => ExecError::Codec(v2v_codec::CodecError::Corrupt(
                "injected corrupt packet".into(),
            )),
        }
    }

    /// Serves `idx` through the shared GOP cache: the containing GOP is
    /// decoded in full on a miss and memoized for other cursors. The
    /// cache's in-flight gating guarantees each GOP is decoded at most
    /// once process-wide, and the hit/miss is booked on this cursor.
    fn frame_from_cache(&mut self, cache: &GopCache, idx: u64) -> Result<Arc<Frame>, ExecError> {
        let kf = self
            .stream
            .keyframe_at_or_before(idx as usize)
            .ok_or(ContainerError::NoKeyframe)? as u64;
        if self.gop.as_ref().map(|(k, _)| *k) != Some(kf) {
            let video = self.video.clone();
            let (frames, was_hit) = cache.get_or_insert_with(&video, kf, || self.decode_gop(kf))?;
            if was_hit {
                self.gop_cache_hits += 1;
            } else {
                self.gop_cache_misses += 1;
            }
            self.gop = Some((kf, frames));
        }
        // `kf <= idx < next keyframe`, so the decoded GOP covers `idx`;
        // stay defensive anyway rather than indexing.
        self.gop
            .as_ref()
            .and_then(|(_, frames)| frames.get((idx - kf) as usize).cloned())
            .ok_or_else(|| ExecError::MissingFrame {
                video: self.video.clone(),
                at: self.stream.pts_of(idx as usize).unwrap_or_default(),
            })
    }

    /// Decodes the whole GOP whose keyframe is at `kf`.
    fn decode_gop(&mut self, kf: u64) -> Result<GopFrames, ExecError> {
        let end = self
            .stream
            .next_keyframe_at_or_after(kf as usize + 1)
            .unwrap_or(self.stream.len()) as u64;
        let mut frames = Vec::with_capacity((end - kf) as usize);
        self.decoder.reset();
        self.seeks += 1;
        for i in kf..end {
            frames.push(self.decode_packet(i)?);
        }
        Ok(Arc::new(frames))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v2v_codec::CodecParams;
    use v2v_container::StreamWriter;
    use v2v_frame::FrameType;
    use v2v_time::{r, Rational};

    fn stream(n: usize, gop: u32) -> VideoStream {
        let ty = FrameType::gray8(32, 32);
        let params = CodecParams::new(ty, gop, 0);
        let mut w = StreamWriter::new(params, Rational::ZERO, r(1, 30));
        for i in 0..n {
            let mut f = Frame::black(ty);
            f.plane_mut(0).put(i % 32, 0, 255);
            w.push_frame(&f).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn sequential_reads_cost_one_packet_each() {
        let s = stream(12, 4);
        let mut c = SourceCursor::new(&s, "s");
        c.frame_at(0).unwrap();
        assert_eq!(c.frames_decoded, 1);
        for i in 1..12 {
            c.frame_at(i).unwrap();
        }
        assert_eq!(c.frames_decoded, 12);
    }

    #[test]
    fn cold_mid_gop_read_rolls_from_keyframe() {
        let s = stream(12, 4);
        let mut c = SourceCursor::new(&s, "s");
        let f = c.frame_at(6).unwrap();
        assert_eq!(c.frames_decoded, 3); // 4, 5, 6
        assert_eq!(f.plane(0).get(6, 0), 255);
    }

    #[test]
    fn repeated_read_is_free() {
        let s = stream(12, 4);
        let mut c = SourceCursor::new(&s, "s");
        c.frame_at(5).unwrap();
        let n = c.frames_decoded;
        c.frame_at(5).unwrap();
        assert_eq!(c.frames_decoded, n);
    }

    #[test]
    fn backward_seek_reenters_at_keyframe() {
        let s = stream(12, 4);
        let mut c = SourceCursor::new(&s, "s");
        c.frame_at(10).unwrap();
        let before = c.frames_decoded;
        let f = c.frame_at(2).unwrap();
        assert_eq!(c.frames_decoded - before, 3); // 0, 1, 2
        assert_eq!(f.plane(0).get(2, 0), 255);
    }

    #[test]
    fn forward_jump_across_keyframe_skips_roll() {
        let s = stream(32, 4);
        let mut c = SourceCursor::new(&s, "s");
        c.frame_at(0).unwrap();
        let before = c.frames_decoded;
        // Jump to 30: nearest keyframe is 28 → decode 28, 29, 30 (not 29
        // intermediate frames).
        c.frame_at(30).unwrap();
        assert_eq!(c.frames_decoded - before, 3);
    }

    #[test]
    fn out_of_range_errors() {
        let s = stream(5, 4);
        let mut c = SourceCursor::new(&s, "clip-a");
        let err = c.frame_at(5).unwrap_err();
        match err {
            ExecError::MissingFrame { video, .. } => assert_eq!(video, "clip-a"),
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn cached_cursors_share_decoded_gops() {
        let s = stream(12, 4);
        let cache = GopCache::new(64);
        let mut a = SourceCursor::new(&s, "s").with_cache(&cache);
        let mut b = SourceCursor::new(&s, "s").with_cache(&cache);
        for i in 0..12 {
            a.frame_at(i).unwrap();
        }
        assert_eq!(a.frames_decoded, 12);
        for i in 0..12 {
            b.frame_at(i).unwrap();
        }
        assert_eq!(b.frames_decoded, 0, "second cursor must hit the cache");
        assert_eq!(cache.hits(), 3);
        assert_eq!(cache.misses(), 3);
        // Per-cursor attribution: `a` paid for every decode, `b` only hit.
        assert_eq!((a.gop_cache_hits, a.gop_cache_misses), (0, 3));
        assert_eq!((b.gop_cache_hits, b.gop_cache_misses), (3, 0));
    }

    #[test]
    fn cached_and_uncached_frames_agree() {
        let s = stream(12, 4);
        let cache = GopCache::new(64);
        let mut cached = SourceCursor::new(&s, "s").with_cache(&cache);
        let mut plain = SourceCursor::new(&s, "s");
        for i in [6u64, 2, 11, 0, 7] {
            assert_eq!(*cached.frame_at(i).unwrap(), *plain.frame_at(i).unwrap());
        }
    }

    #[test]
    fn disabled_cache_is_ignored() {
        let s = stream(8, 4);
        let cache = GopCache::new(0);
        let mut c = SourceCursor::new(&s, "s").with_cache(&cache);
        c.frame_at(3).unwrap();
        assert_eq!(cache.hits() + cache.misses(), 0);
        assert_eq!(c.frames_decoded, 4, "falls back to sequential rolling");
    }
}
