//! GOP-aware sequential source cursors.
//!
//! A render segment reads its inputs mostly in forward order; the cursor
//! keeps decoder state so consecutive reads cost one packet each, seeks
//! (backward jumps or gaps) re-enter at the preceding keyframe — the
//! same access pattern an FFmpeg-based engine gets from its demuxer.

use crate::ExecError;
use v2v_codec::Decoder;
use v2v_container::VideoStream;
use v2v_frame::Frame;

/// A stateful forward reader over one stream.
pub struct SourceCursor<'a> {
    stream: &'a VideoStream,
    decoder: Decoder,
    /// Index the decoder state corresponds to (last decoded), if any.
    at: Option<u64>,
    /// Last decoded frame (served for repeated reads of the same index).
    current: Option<Frame>,
    /// Packets decoded through this cursor.
    pub frames_decoded: u64,
}

impl<'a> SourceCursor<'a> {
    /// A cursor at the start of `stream`.
    pub fn new(stream: &'a VideoStream) -> SourceCursor<'a> {
        SourceCursor {
            stream,
            decoder: Decoder::new(*stream.params()),
            at: None,
            current: None,
            frames_decoded: 0,
        }
    }

    /// Decodes (or re-serves) frame `idx`.
    pub fn frame_at(&mut self, idx: u64) -> Result<Frame, ExecError> {
        if idx >= self.stream.len() as u64 {
            return Err(ExecError::MissingFrame {
                video: String::new(),
                at: self
                    .stream
                    .pts_of(self.stream.len().saturating_sub(1))
                    .unwrap_or_default(),
            });
        }
        if self.at == Some(idx) {
            if let Some(f) = &self.current {
                return Ok(f.clone());
            }
        }
        // Choose the roll start: continue forward, or reseek to the
        // keyframe at/before idx when behind/too far ahead.
        let from = match self.at {
            Some(at) if at < idx => at + 1,
            _ => {
                self.decoder.reset();
                self.stream
                    .keyframe_at_or_before(idx as usize)
                    .expect("streams start with a keyframe") as u64
            }
        };
        // If continuing forward would cross a keyframe anyway, entering at
        // that keyframe is never slower.
        let from = match self.stream.keyframe_at_or_before(idx as usize) {
            Some(kf) if (kf as u64) > from => {
                self.decoder.reset();
                kf as u64
            }
            _ => from,
        };
        let mut frame = None;
        for i in from..=idx {
            let pkt = &self.stream.packets()[i as usize];
            frame = Some(self.decoder.decode(pkt)?);
            self.frames_decoded += 1;
        }
        let frame = frame.expect("at least one packet decoded");
        self.at = Some(idx);
        self.current = Some(frame.clone());
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v2v_codec::CodecParams;
    use v2v_container::StreamWriter;
    use v2v_frame::FrameType;
    use v2v_time::{r, Rational};

    fn stream(n: usize, gop: u32) -> VideoStream {
        let ty = FrameType::gray8(32, 32);
        let params = CodecParams::new(ty, gop, 0);
        let mut w = StreamWriter::new(params, Rational::ZERO, r(1, 30));
        for i in 0..n {
            let mut f = Frame::black(ty);
            f.plane_mut(0).put(i % 32, 0, 255);
            w.push_frame(&f).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn sequential_reads_cost_one_packet_each() {
        let s = stream(12, 4);
        let mut c = SourceCursor::new(&s);
        c.frame_at(0).unwrap();
        assert_eq!(c.frames_decoded, 1);
        for i in 1..12 {
            c.frame_at(i).unwrap();
        }
        assert_eq!(c.frames_decoded, 12);
    }

    #[test]
    fn cold_mid_gop_read_rolls_from_keyframe() {
        let s = stream(12, 4);
        let mut c = SourceCursor::new(&s);
        let f = c.frame_at(6).unwrap();
        assert_eq!(c.frames_decoded, 3); // 4, 5, 6
        assert_eq!(f.plane(0).get(6, 0), 255);
    }

    #[test]
    fn repeated_read_is_free() {
        let s = stream(12, 4);
        let mut c = SourceCursor::new(&s);
        c.frame_at(5).unwrap();
        let n = c.frames_decoded;
        c.frame_at(5).unwrap();
        assert_eq!(c.frames_decoded, n);
    }

    #[test]
    fn backward_seek_reenters_at_keyframe() {
        let s = stream(12, 4);
        let mut c = SourceCursor::new(&s);
        c.frame_at(10).unwrap();
        let before = c.frames_decoded;
        let f = c.frame_at(2).unwrap();
        assert_eq!(c.frames_decoded - before, 3); // 0, 1, 2
        assert_eq!(f.plane(0).get(2, 0), 255);
    }

    #[test]
    fn forward_jump_across_keyframe_skips_roll() {
        let s = stream(32, 4);
        let mut c = SourceCursor::new(&s);
        c.frame_at(0).unwrap();
        let before = c.frames_decoded;
        // Jump to 30: nearest keyframe is 28 → decode 28, 29, 30 (not 29
        // intermediate frames).
        c.frame_at(30).unwrap();
        assert_eq!(c.frames_decoded - before, 3);
    }

    #[test]
    fn out_of_range_errors() {
        let s = stream(5, 4);
        let mut c = SourceCursor::new(&s);
        assert!(c.frame_at(5).is_err());
    }
}
