//! The execution catalog: binds spec names to actual streams and data.

use std::collections::BTreeMap;
use std::sync::Arc;
use v2v_container::VideoStream;
use v2v_data::DataArray;
use v2v_frame::Frame;
use v2v_plan::{PlanContext, SourceMeta, VariantFacts, VariantKind};
use v2v_spec::{check::SourceInfo, ArgKind, Spec, UdfRegistry};

/// One attached physical variant of a catalog source.
///
/// The stream shares the original's frame grid (start, frame duration)
/// and decodes frame-for-frame identical to it over the covered prefix.
#[derive(Clone)]
pub struct VariantSource {
    /// The variant bitstream.
    pub stream: Arc<VideoStream>,
    /// Leading original frame indices this variant can serve. A live
    /// source may have grown past this since the transcode; reads at or
    /// beyond it must fall back to the original.
    pub covered_frames: u64,
}

/// Bound sources for one execution: videos, data arrays, overlay images.
///
/// The same catalog serves the checker (frame types + availability), the
/// optimizer (codec params + keyframe index), and the executors (packets
/// and pixels). Streams are `Arc`-shared: cloning a catalog or handing it
/// to parallel segments never copies media.
#[derive(Clone, Default)]
pub struct Catalog {
    videos: BTreeMap<String, Arc<VideoStream>>,
    variants: BTreeMap<String, BTreeMap<VariantKind, VariantSource>>,
    arrays: BTreeMap<String, DataArray>,
    images: BTreeMap<String, Arc<Frame>>,
    udf_signatures: UdfRegistry,
    udf_kernels: BTreeMap<u16, Arc<dyn crate::apply::UdfKernel>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Binds a video stream to a name.
    pub fn add_video(&mut self, name: impl Into<String>, stream: VideoStream) -> &mut Catalog {
        self.videos.insert(name.into(), Arc::new(stream));
        self
    }

    /// Binds an already-shared video stream.
    pub fn add_video_arc(
        &mut self,
        name: impl Into<String>,
        stream: Arc<VideoStream>,
    ) -> &mut Catalog {
        self.videos.insert(name.into(), stream);
        self
    }

    /// Binds a data array to a name.
    pub fn add_array(&mut self, name: impl Into<String>, array: DataArray) -> &mut Catalog {
        self.arrays.insert(name.into(), array);
        self
    }

    /// Binds an overlay image to a locator string.
    pub fn add_image(&mut self, locator: impl Into<String>, image: Frame) -> &mut Catalog {
        self.images.insert(locator.into(), Arc::new(image));
        self
    }

    /// Registers a user-defined transformation: its static signature (for
    /// the checker) and its kernel (for the executors).
    pub fn register_udf(
        &mut self,
        id: u16,
        name: impl Into<String>,
        args: Vec<ArgKind>,
        kernel: Arc<dyn crate::apply::UdfKernel>,
    ) -> &mut Catalog {
        self.udf_signatures.register(id, name, args);
        self.udf_kernels.insert(id, kernel);
        self
    }

    /// The registered UDF signatures (checker input).
    pub fn udf_registry(&self) -> &UdfRegistry {
        &self.udf_signatures
    }

    /// The kernel for UDF `id`, if registered.
    pub fn udf_kernel(&self, id: u16) -> Option<Arc<dyn crate::apply::UdfKernel>> {
        self.udf_kernels.get(&id).cloned()
    }

    /// Looks up a video.
    pub fn video(&self, name: &str) -> Option<&Arc<VideoStream>> {
        self.videos.get(name)
    }

    /// Attaches a physical variant to an already-bound source. The
    /// caller is responsible for the decode-identity invariant: over
    /// `covered_frames`, the variant must decode frame-for-frame
    /// identical to the original (or to the conformed original, for
    /// proxies) — see `v2v-store`, which verifies content digests
    /// before attaching.
    pub fn add_variant(
        &mut self,
        name: impl Into<String>,
        kind: VariantKind,
        stream: Arc<VideoStream>,
        covered_frames: u64,
    ) -> &mut Catalog {
        self.variants.entry(name.into()).or_default().insert(
            kind,
            VariantSource {
                stream,
                covered_frames,
            },
        );
        self
    }

    /// Looks up an attached variant of a source.
    pub fn variant(&self, name: &str, kind: VariantKind) -> Option<&VariantSource> {
        self.variants.get(name)?.get(&kind)
    }

    /// Detaches one variant; returns `true` if it was attached.
    pub fn remove_variant(&mut self, name: &str, kind: VariantKind) -> bool {
        let Some(set) = self.variants.get_mut(name) else {
            return false;
        };
        let removed = set.remove(&kind).is_some();
        if set.is_empty() {
            self.variants.remove(name);
        }
        removed
    }

    /// Attached variant kinds per source (status / admin views).
    pub fn variant_kinds(&self) -> BTreeMap<String, Vec<VariantKind>> {
        self.variants
            .iter()
            .map(|(name, set)| (name.clone(), set.keys().copied().collect()))
            .collect()
    }

    /// Looks up an overlay image.
    pub fn image(&self, locator: &str) -> Option<&Arc<Frame>> {
        self.images.get(locator)
    }

    /// The bound data arrays (what data expressions evaluate against).
    pub fn arrays(&self) -> &BTreeMap<String, DataArray> {
        &self.arrays
    }

    /// Mutable access to the bound arrays (the data-dependent rewriter
    /// materializes SQL-backed arrays here).
    pub fn arrays_mut(&mut self) -> &mut BTreeMap<String, DataArray> {
        &mut self.arrays
    }

    /// Source facts for the optimizer.
    pub fn plan_context(&self) -> PlanContext {
        let mut ctx = PlanContext::new();
        for (name, stream) in &self.videos {
            ctx = ctx.with_source(
                name.clone(),
                SourceMeta {
                    params: *stream.params(),
                    start: stream.start(),
                    frame_dur: stream.frame_dur(),
                    count: stream.len() as u64,
                    keyframes: stream
                        .keyframe_indices()
                        .into_iter()
                        .map(|k| k as u64)
                        .collect(),
                },
            );
        }
        for (name, set) in &self.variants {
            let Some(original) = self.videos.get(name) else {
                continue;
            };
            let mut facts = vec![VariantFacts {
                kind: VariantKind::Original,
                params: *original.params(),
                keyframes: original
                    .keyframe_indices()
                    .into_iter()
                    .map(|k| k as u64)
                    .collect(),
                byte_size: original.byte_size(),
                covered_frames: original.len() as u64,
            }];
            for (&kind, v) in set {
                // A variant covering more frames than the original has
                // is stale (the source was replaced): skip it.
                if v.covered_frames > original.len() as u64 {
                    continue;
                }
                facts.push(VariantFacts {
                    kind,
                    params: *v.stream.params(),
                    keyframes: v
                        .stream
                        .keyframe_indices()
                        .into_iter()
                        .map(|k| k as u64)
                        .collect(),
                    byte_size: v.stream.byte_size(),
                    covered_frames: v.covered_frames.min(v.stream.len() as u64),
                });
            }
            ctx = ctx.with_variants(name.clone(), facts);
        }
        ctx
    }

    /// Source facts for the static checker.
    pub fn source_infos(&self) -> BTreeMap<String, SourceInfo> {
        self.videos
            .iter()
            .map(|(name, stream)| {
                (
                    name.clone(),
                    SourceInfo {
                        frame_ty: stream.params().frame_ty,
                        available: stream.available(),
                    },
                )
            })
            .collect()
    }

    /// `true` if every video and array the spec references is bound.
    pub fn covers(&self, spec: &Spec) -> bool {
        spec.referenced_videos()
            .iter()
            .all(|v| self.videos.contains_key(v))
            && spec
                .referenced_arrays()
                .iter()
                .all(|a| self.arrays.contains_key(a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v2v_codec::CodecParams;
    use v2v_container::StreamWriter;
    use v2v_frame::FrameType;
    use v2v_time::{r, Rational};

    fn stream(n: usize) -> VideoStream {
        let ty = FrameType::gray8(32, 32);
        let params = CodecParams::new(ty, 4, 0);
        let mut w = StreamWriter::new(params, Rational::ZERO, r(1, 30));
        for _ in 0..n {
            w.push_frame(&Frame::black(ty)).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn plan_context_reflects_streams() {
        let mut c = Catalog::new();
        c.add_video("a", stream(9));
        let ctx = c.plan_context();
        let meta = ctx.source("a").unwrap();
        assert_eq!(meta.count, 9);
        assert_eq!(meta.keyframes, vec![0, 4, 8]);
        assert_eq!(meta.frame_dur, r(1, 30));
    }

    #[test]
    fn source_infos_reflect_availability() {
        let mut c = Catalog::new();
        c.add_video("a", stream(6));
        let infos = c.source_infos();
        assert_eq!(infos["a"].available.count(), 6);
        assert_eq!(infos["a"].frame_ty, FrameType::gray8(32, 32));
    }

    #[test]
    fn covers_checks_both_namespaces() {
        let mut c = Catalog::new();
        c.add_video("a", stream(3));
        c.add_array("bb", DataArray::new());
        let spec =
            v2v_spec::SpecBuilder::new(v2v_spec::OutputSettings::new(FrameType::gray8(32, 32), 30))
                .video("a", "a.svc")
                .data_array("bb", "bb.json")
                .append_filtered("a", r(0, 1), r(1, 10), |e| {
                    v2v_spec::builder::bounding_box(e, "bb")
                })
                .build();
        assert!(c.covers(&spec));
        let mut missing = Catalog::new();
        missing.add_video("a", stream(3));
        assert!(!missing.covers(&spec));
    }
}
