//! Frame program interpretation: one output frame per call.

use crate::ExecError;
use std::collections::BTreeMap;
use std::sync::Arc;
use v2v_data::{DataArray, Value};
use v2v_frame::{ops, Frame};
use v2v_plan::{FrameProgram, ProgArg};
use v2v_spec::TransformOp;
use v2v_time::Rational;

/// A user-defined transformation kernel (paper §III-C UDFs).
///
/// `frames`/`data` arrive in the signature's frame/data order; the
/// kernel returns the transformed frame or a message surfaced as a
/// [`crate::ExecError::UdfFailed`].
pub trait UdfKernel: Send + Sync {
    /// Applies the UDF at instant `t`.
    fn apply(&self, t: Rational, frames: &[Frame], data: &[Value]) -> Result<Frame, String>;
}

impl<F> UdfKernel for F
where
    F: Fn(Rational, &[Frame], &[Value]) -> Result<Frame, String> + Send + Sync,
{
    fn apply(&self, t: Rational, frames: &[Frame], data: &[Value]) -> Result<Frame, String> {
        self(t, frames, data)
    }
}

/// Resolves overlay-image locators and UDF kernels (usually backed by
/// the catalog).
pub trait ImageSource {
    /// The image bound to `locator`, if any.
    fn image(&self, locator: &str) -> Option<Arc<Frame>>;

    /// The kernel registered for UDF `id`, if any.
    fn udf(&self, _id: u16) -> Option<Arc<dyn UdfKernel>> {
        None
    }
}

impl ImageSource for crate::Catalog {
    fn image(&self, locator: &str) -> Option<Arc<Frame>> {
        // Inherent `Catalog::image` takes precedence over this trait
        // method, so this is a plain delegation, not recursion.
        crate::Catalog::image(self, locator).cloned()
    }

    fn udf(&self, id: u16) -> Option<Arc<dyn UdfKernel>> {
        self.udf_kernel(id)
    }
}

/// No images or UDFs bound (programs without overlays/UDFs).
pub struct NoImages;

impl ImageSource for NoImages {
    fn image(&self, _: &str) -> Option<Arc<Frame>> {
        None
    }
}

fn num(op: TransformOp, index: usize, v: &Value) -> Result<f64, ExecError> {
    v.as_f64().ok_or(ExecError::BadArgument {
        op,
        index,
        want: "number",
        got: v.type_name(),
    })
}

fn string(op: TransformOp, index: usize, v: &Value) -> Result<&str, ExecError> {
    v.as_str().ok_or(ExecError::BadArgument {
        op,
        index,
        want: "string",
        got: v.type_name(),
    })
}

/// Evaluates `program` at domain instant `t`.
///
/// `inputs` holds the already-decoded (and type-conformed) frame for each
/// input slot; `arrays` back data expressions; `images` resolves overlay
/// locators.
pub fn apply_program(
    program: &FrameProgram,
    t: Rational,
    inputs: &[Arc<Frame>],
    arrays: &BTreeMap<String, DataArray>,
    images: &dyn ImageSource,
) -> Result<Frame, ExecError> {
    match program {
        FrameProgram::Input(n) => Ok(inputs[*n].as_ref().clone()),
        FrameProgram::Op { op, args } => {
            // Evaluate arguments in signature order.
            let mut frames: Vec<Frame> = Vec::new();
            let mut data: Vec<Value> = Vec::new();
            for a in args {
                match a {
                    ProgArg::Frame(f) => frames.push(apply_program(f, t, inputs, arrays, images)?),
                    ProgArg::Data(d) => data.push(d.eval(t, arrays)),
                }
            }
            apply_op(*op, t, frames, data, images)
        }
    }
}

fn apply_op(
    op: TransformOp,
    t: Rational,
    frames: Vec<Frame>,
    data: Vec<Value>,
    images: &dyn ImageSource,
) -> Result<Frame, ExecError> {
    use TransformOp as Op;
    let f0 = || &frames[0];
    match op {
        Op::Udf(id) => {
            let kernel = images.udf(id).ok_or(ExecError::UnknownUdf(id))?;
            kernel
                .apply(t, &frames, &data)
                .map_err(|message| ExecError::UdfFailed { id, message })
        }
        Op::Identity => Ok(frames.into_iter().next().expect("typed arity")),
        Op::Zoom => {
            let factor = num(op, 1, &data[0])?;
            Ok(ops::zoom(f0(), factor))
        }
        Op::ZoomAt => {
            let factor = num(op, 1, &data[0])?;
            let cx = num(op, 2, &data[1])? as f32;
            let cy = num(op, 3, &data[2])? as f32;
            Ok(ops::zoom_at(f0(), factor, cx, cy))
        }
        Op::Crop => {
            let f = f0();
            let (w, h) = (f.width() as f64, f.height() as f64);
            let x = (num(op, 1, &data[0])? * w) as u32;
            let y = (num(op, 2, &data[1])? * h) as u32;
            let cw = (num(op, 3, &data[2])? * w).max(1.0) as u32;
            let ch = (num(op, 4, &data[3])? * h).max(1.0) as u32;
            let cropped = ops::crop(f, x, y, cw, ch);
            // Keep the pipeline frame type uniform.
            Ok(ops::conform(&cropped, f.ty()))
        }
        Op::Overlay => {
            let path = string(op, 1, &data[0])?;
            let img = images
                .image(path)
                .ok_or_else(|| ExecError::UnknownImage(path.to_string()))?;
            Ok(ops::overlay(f0(), &img, 0, 0, 255))
        }
        Op::OverlayAt => {
            let path = string(op, 1, &data[0])?;
            let img = images
                .image(path)
                .ok_or_else(|| ExecError::UnknownImage(path.to_string()))?;
            let f = f0();
            let x = (num(op, 2, &data[1])? * f.width() as f64) as usize;
            let y = (num(op, 3, &data[2])? * f.height() as f64) as usize;
            let alpha = (num(op, 4, &data[3])?.clamp(0.0, 1.0) * 255.0) as u8;
            Ok(ops::overlay(f, &img, x, y, alpha))
        }
        Op::BoundingBox => {
            let boxes = data[0].as_boxes().ok_or(ExecError::BadArgument {
                op,
                index: 1,
                want: "boxes",
                got: data[0].type_name(),
            })?;
            Ok(ops::draw_bounding_boxes(f0(), boxes))
        }
        Op::Highlight => {
            let boxes = data[0].as_boxes().ok_or(ExecError::BadArgument {
                op,
                index: 1,
                want: "boxes",
                got: data[0].type_name(),
            })?;
            let dim = num(op, 2, &data[1])? as f32;
            Ok(ops::highlight_regions(f0(), boxes, dim))
        }
        Op::TextOverlay => {
            let text = match &data[0] {
                // Convenience: numbers and rationals render as text too.
                Value::Str(s) => s.clone(),
                Value::Null => String::new(),
                other => other.to_string(),
            };
            let f = f0();
            let x = (num(op, 2, &data[1])? * f.width() as f64) as i64;
            let y = (num(op, 3, &data[2])? * f.height() as f64) as i64;
            if text.is_empty() {
                return Ok(f.clone());
            }
            let mut out = f.clone();
            let scale = (f.height() / 180).max(1) as u32;
            v2v_frame::draw::label(
                &mut out,
                x,
                y,
                &text,
                scale,
                ops::Rgb::WHITE,
                ops::Rgb::BLACK,
            );
            Ok(out)
        }
        Op::Grid => Ok(ops::grid(&frames, ops::GridLayout::QUAD, frames[0].ty())),
        Op::Blur => {
            let sigma = num(op, 1, &data[0])? as f32;
            Ok(ops::gaussian_blur(f0(), sigma))
        }
        Op::Sharpen => {
            let amount = num(op, 1, &data[0])? as f32;
            Ok(ops::sharpen(f0(), amount))
        }
        Op::Denoise => Ok(ops::median_denoise(f0())),
        Op::EdgeDetect => Ok(ops::edge_detect(f0())),
        Op::Grayscale => Ok(ops::grayscale(f0())),
        Op::Invert => Ok(ops::invert(f0())),
        Op::Brightness => {
            let b = num(op, 1, &data[0])? as f32;
            let c = num(op, 2, &data[1])? as f32;
            Ok(ops::brightness_contrast(f0(), b, c))
        }
        Op::ColorGrade => {
            let gamma = num(op, 1, &data[0])? as f32;
            let sat = num(op, 2, &data[1])? as f32;
            Ok(ops::color_grade(f0(), gamma, sat))
        }
        Op::IfThenElse => {
            // NULL conditions take the else branch (SQL semantics).
            let cond = data[0].as_bool().unwrap_or(false);
            let mut it = frames.into_iter();
            let then_f = it.next().expect("typed arity");
            let else_f = it.next().expect("typed arity");
            Ok(if cond { then_f } else { else_f })
        }
        Op::Crossfade => {
            let alpha = num(op, 2, &data[0])? as f32;
            Ok(ops::crossfade(&frames[0], &frames[1], alpha))
        }
        Op::FadeToBlack => {
            let alpha = num(op, 1, &data[0])? as f32;
            Ok(ops::fade_to_black(f0(), alpha))
        }
        Op::Stabilize => {
            let dx = num(op, 1, &data[0])? as f32;
            let dy = num(op, 2, &data[1])? as f32;
            let margin = num(op, 3, &data[2])? as f32;
            Ok(ops::stabilize_crop(f0(), dx, dy, margin))
        }
        Op::PictureInPicture => {
            let x = num(op, 2, &data[0])? as f32;
            let y = num(op, 3, &data[1])? as f32;
            let scale = num(op, 4, &data[2])? as f32;
            Ok(ops::picture_in_picture(&frames[0], &frames[1], x, y, scale))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v2v_frame::FrameType;
    use v2v_spec::DataExpr;
    use v2v_time::r;

    fn solid(luma: u8) -> Arc<Frame> {
        let mut f = Frame::black(FrameType::gray8(64, 64));
        for v in f.plane_mut(0).data_mut() {
            *v = luma;
        }
        Arc::new(f)
    }

    fn prog(op: TransformOp, args: Vec<ProgArg>) -> FrameProgram {
        FrameProgram::Op { op, args }
    }

    #[test]
    fn input_slots_resolve() {
        let p = FrameProgram::Input(1);
        let out = apply_program(
            &p,
            r(0, 1),
            &[solid(1), solid(2)],
            &BTreeMap::new(),
            &NoImages,
        )
        .unwrap();
        assert_eq!(out.plane(0).get(0, 0), 2);
    }

    #[test]
    fn if_then_else_branches_on_data() {
        let mut arrays = BTreeMap::new();
        arrays.insert(
            "a".to_string(),
            DataArray::from_pairs([(r(0, 1), Value::Int(3)), (r(1, 1), Value::Int(9))]),
        );
        let p = prog(
            TransformOp::IfThenElse,
            vec![
                ProgArg::Data(DataExpr::lt(DataExpr::array("a"), DataExpr::constant(5i64))),
                ProgArg::Frame(FrameProgram::Input(0)),
                ProgArg::Frame(FrameProgram::Input(1)),
            ],
        );
        let inputs = [solid(100), solid(200)];
        let at0 = apply_program(&p, r(0, 1), &inputs, &arrays, &NoImages).unwrap();
        assert_eq!(at0.plane(0).get(0, 0), 100);
        let at1 = apply_program(&p, r(1, 1), &inputs, &arrays, &NoImages).unwrap();
        assert_eq!(at1.plane(0).get(0, 0), 200);
        // Missing data → NULL → else branch.
        let at9 = apply_program(&p, r(9, 1), &inputs, &arrays, &NoImages).unwrap();
        assert_eq!(at9.plane(0).get(0, 0), 200);
    }

    #[test]
    fn bounding_box_empty_is_identity() {
        let mut arrays = BTreeMap::new();
        arrays.insert("bb".to_string(), DataArray::new());
        let p = prog(
            TransformOp::BoundingBox,
            vec![
                ProgArg::Frame(FrameProgram::Input(0)),
                ProgArg::Data(DataExpr::array("bb")),
            ],
        );
        let input = solid(50);
        let out = apply_program(
            &p,
            r(0, 1),
            std::slice::from_ref(&input),
            &arrays,
            &NoImages,
        )
        .unwrap();
        assert_eq!(out, *input);
    }

    #[test]
    fn missing_overlay_image_errors() {
        let p = prog(
            TransformOp::Overlay,
            vec![
                ProgArg::Frame(FrameProgram::Input(0)),
                ProgArg::Data(DataExpr::constant("ghost.png")),
            ],
        );
        let err = apply_program(&p, r(0, 1), &[solid(0)], &BTreeMap::new(), &NoImages);
        assert!(matches!(err, Err(ExecError::UnknownImage(_))));
    }

    #[test]
    fn bad_argument_type_errors() {
        let p = prog(
            TransformOp::Blur,
            vec![
                ProgArg::Frame(FrameProgram::Input(0)),
                ProgArg::Data(DataExpr::constant("not a number")),
            ],
        );
        let err = apply_program(&p, r(0, 1), &[solid(0)], &BTreeMap::new(), &NoImages);
        assert!(matches!(err, Err(ExecError::BadArgument { .. })));
    }

    #[test]
    fn nested_program_applies_in_order() {
        // Brightness(+50) then Invert: 0 → 50 → 205.
        let inner = prog(
            TransformOp::Brightness,
            vec![
                ProgArg::Frame(FrameProgram::Input(0)),
                ProgArg::Data(DataExpr::constant(50.0f64)),
                ProgArg::Data(DataExpr::constant(1.0f64)),
            ],
        );
        let p = prog(TransformOp::Invert, vec![ProgArg::Frame(inner)]);
        let out = apply_program(&p, r(0, 1), &[solid(0)], &BTreeMap::new(), &NoImages).unwrap();
        assert_eq!(out.plane(0).get(0, 0), 205);
    }

    #[test]
    fn grid_composes_four_inputs() {
        let p = prog(
            TransformOp::Grid,
            (0..4)
                .map(|i| ProgArg::Frame(FrameProgram::Input(i)))
                .collect(),
        );
        let inputs = [solid(10), solid(20), solid(30), solid(40)];
        let out = apply_program(&p, r(0, 1), &inputs, &BTreeMap::new(), &NoImages).unwrap();
        assert_eq!(out.plane(0).get(10, 10), 10);
        assert_eq!(out.plane(0).get(50, 50), 40);
    }

    #[test]
    fn text_overlay_with_null_is_identity() {
        let p = prog(
            TransformOp::TextOverlay,
            vec![
                ProgArg::Frame(FrameProgram::Input(0)),
                ProgArg::Data(DataExpr::constant(Value::Null)),
                ProgArg::Data(DataExpr::constant(0.1f64)),
                ProgArg::Data(DataExpr::constant(0.1f64)),
            ],
        );
        let input = solid(7);
        let out = apply_program(
            &p,
            r(0, 1),
            std::slice::from_ref(&input),
            &BTreeMap::new(),
            &NoImages,
        )
        .unwrap();
        assert_eq!(out, *input);
    }
}
