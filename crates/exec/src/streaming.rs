//! Ordered streaming execution: begin playback before synthesis ends.
//!
//! The paper's interactivity story (§I): "Through database-style
//! optimizations described in this paper and on-demand streaming, V2V
//! enables a VDBMS to execute such a query and to begin playback within
//! seconds." The batch executor returns only when the whole output
//! exists; [`execute_streaming`] instead delivers packets *in
//! presentation order as soon as they are ready*, while later segments
//! are still being rendered in parallel.
//!
//! Segments are independent (each starts its own GOP), so the scheduler
//! renders them concurrently — splitting long renders at GOP boundaries
//! when workers idle — and its ordered-delivery stage releases each
//! part's packets once all earlier output has been delivered. A plan
//! whose first segment is a stream copy starts playback after a refcount
//! bump — the measured `time_to_first_packet` in [`StreamingStats`] is
//! how the interactive claim is quantified in the benches.

use crate::catalog::Catalog;
use crate::executor::{ExecOptions, ExecStats};
use crate::fault::SegmentFault;
use crate::gop_cache::GopCache;
use crate::scheduler::{execute_scheduled, PartOutput};
use crate::ExecError;
use std::time::{Duration, Instant};
use v2v_codec::Packet;
use v2v_container::{StreamWriter, VideoStream};
use v2v_plan::PhysicalPlan;
use v2v_time::Rational;

/// Latency profile of a streaming run.
#[derive(Clone, Debug, Default)]
pub struct StreamingStats {
    /// Plan-independent preparation time (cache and writer construction)
    /// spent before the executor started dispatching work. Kept separate
    /// so `time_to_first_packet` isolates the paper's interactivity
    /// claim.
    pub setup: Duration,
    /// Wall time from executor start until the first packet reached the
    /// sink (excludes `setup`).
    pub time_to_first_packet: Duration,
    /// Wall time from executor start until the last packet reached the
    /// sink (excludes `setup`).
    pub total: Duration,
    /// Aggregated execution costs.
    pub exec: ExecStats,
    /// Structured error report: one entry per part that failed and was
    /// recovered, skipped, or substituted under the run's error policy.
    pub errors: Vec<SegmentFault>,
}

/// Executes a plan, delivering packets to `sink` in presentation order
/// as parts complete. Returns the assembled stream (identical to the
/// batch executor's output) plus latency stats.
///
/// Worker parallelism uses the scheduler's scoped pool; ordered delivery
/// runs on the calling thread, so `sink` needs no synchronization.
pub fn execute_streaming(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    sink: impl FnMut(&Packet),
) -> Result<(VideoStream, StreamingStats), ExecError> {
    execute_streaming_with(plan, catalog, &ExecOptions::default(), sink)
}

/// [`execute_streaming`] with explicit [`ExecOptions`].
///
/// Streaming runs honor the same options as batch runs — `parallel`,
/// `num_threads`, `pipeline_depth`, `runtime_split`, and
/// `gop_cache_frames` — so a streaming execution reports the same cache
/// hit/miss counts as a batch execution of the same plan. Packets reach
/// `sink` already re-stamped onto the output presentation grid, so the
/// sink-visible bytes are identical however the scheduler split the
/// work.
pub fn execute_streaming_with(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    opts: &ExecOptions,
    mut sink: impl FnMut(&Packet),
) -> Result<(VideoStream, StreamingStats), ExecError> {
    let started = Instant::now();
    let cache = GopCache::new(opts.gop_cache_frames);
    let mut writer = StreamWriter::new(plan.out_params, Rational::ZERO, plan.frame_dur);
    let mut stats = StreamingStats {
        setup: started.elapsed(),
        ..Default::default()
    };
    let exec_started = Instant::now();
    let mut first_sent = false;
    let mut deliver = |part: PartOutput| -> Result<(), ExecError> {
        let base = writer.len() as i64;
        for (k, p) in part.packets.iter().enumerate() {
            if !first_sent {
                stats.time_to_first_packet = exec_started.elapsed();
                first_sent = true;
            }
            sink(&p.retimed(plan.frame_dur * Rational::from_int(base + k as i64)));
        }
        writer.push_copied(&part.packets)?;
        stats.exec = stats.exec.merge(part.stats);
        if let Some(fault) = part.fault {
            stats.errors.push(fault);
        }
        Ok(())
    };
    let evictions_before = opts
        .segment_cache
        .as_deref()
        .and_then(|sc| sc.cache.as_deref())
        .map(|c| c.evictions());
    let report = execute_scheduled(plan, catalog, opts, Some(&cache), &mut deliver)?;
    stats.exec.splits = report.splits;
    stats.exec.steals = report.steals;
    if let (Some(c), Some(before)) = (
        opts.segment_cache
            .as_deref()
            .and_then(|sc| sc.cache.as_deref()),
        evictions_before,
    ) {
        stats.exec.cache.evictions += c.evictions().saturating_sub(before);
    }
    if let Some(injector) = &opts.fault {
        stats.exec.faults_injected = injector.injections();
    }
    let out = writer.finish()?;
    stats.total = exec_started.elapsed();
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{execute, ExecOptions};
    use v2v_codec::CodecParams;
    use v2v_frame::{marker, Frame, FrameType};
    use v2v_plan::{lower_spec, optimize, OptimizerConfig};
    use v2v_spec::builder::blur;
    use v2v_spec::{OutputSettings, SpecBuilder};
    use v2v_time::r;

    fn marked_stream(n: usize, gop: u32) -> VideoStream {
        let ty = FrameType::gray8(64, 32);
        let params = CodecParams::new(ty, gop, 0);
        let mut w = StreamWriter::new(params, Rational::ZERO, r(1, 30));
        for i in 0..n {
            let mut f = Frame::black(ty);
            marker::embed(&mut f, i as u32);
            w.push_frame(&f).unwrap();
        }
        w.finish().unwrap()
    }

    fn setup() -> (Catalog, v2v_spec::Spec) {
        let mut catalog = Catalog::new();
        catalog.add_video("src", marked_stream(300, 30));
        let output = OutputSettings {
            frame_ty: FrameType::gray8(64, 32),
            frame_dur: r(1, 30),
            gop_size: 30,
            quantizer: 0,
        };
        let spec = SpecBuilder::new(output)
            .video("src", "src.svc")
            .append_clip("src", r(1, 1), Rational::from_int(2))
            .append_filtered("src", r(4, 1), Rational::from_int(4), |e| blur(e, 1.0))
            .build();
        (catalog, spec)
    }

    #[test]
    fn streaming_output_matches_batch() {
        let (catalog, spec) = setup();
        let logical = lower_spec(&spec).unwrap();
        let plan = optimize(
            &logical,
            &catalog.plan_context(),
            &OptimizerConfig::default(),
        )
        .unwrap();
        let mut sink_count = 0usize;
        let (streamed, stats) = execute_streaming(&plan, &catalog, |_| sink_count += 1).unwrap();
        let (batch, _, _) = execute(&plan, &catalog, &ExecOptions::default()).unwrap();
        assert_eq!(sink_count, streamed.len());
        assert_eq!(streamed.len(), batch.len());
        let (fa, _) = streamed.decode_range(0, streamed.len()).unwrap();
        let (fb, _) = batch.decode_range(0, batch.len()).unwrap();
        assert_eq!(fa, fb);
        assert!(stats.time_to_first_packet <= stats.total);
    }

    #[test]
    fn sink_receives_packets_in_presentation_order() {
        let (catalog, spec) = setup();
        let logical = lower_spec(&spec).unwrap();
        let plan = optimize(
            &logical,
            &catalog.plan_context(),
            &OptimizerConfig::default(),
        )
        .unwrap();
        let mut keyframes_seen = 0;
        let mut count = 0usize;
        execute_streaming(&plan, &catalog, |p| {
            if count == 0 {
                assert!(p.keyframe, "stream must open with a keyframe");
            }
            if p.keyframe {
                keyframes_seen += 1;
            }
            count += 1;
        })
        .unwrap();
        assert_eq!(count, 180);
        assert!(keyframes_seen >= plan.segments.len());
    }

    #[test]
    fn copy_first_plans_start_fast() {
        // A plan whose first segment is a copy should deliver its first
        // packet long before the blur-heavy tail finishes.
        let (catalog, spec) = setup();
        let logical = lower_spec(&spec).unwrap();
        let plan = optimize(
            &logical,
            &catalog.plan_context(),
            &OptimizerConfig::default(),
        )
        .unwrap();
        assert!(plan.segments[0].plan.is_copy(), "test premise");
        let (_, stats) = execute_streaming(&plan, &catalog, |_| {}).unwrap();
        assert!(
            stats.time_to_first_packet < stats.total / 2,
            "ttfp {:?} vs total {:?}",
            stats.time_to_first_packet,
            stats.total
        );
    }

    #[test]
    fn streaming_and_batch_report_identical_gop_cache_counts() {
        // Regression: streaming used to build a default-size cache no
        // matter what the caller configured, so batch and streaming runs
        // of the same plan under the same options reported different
        // hit/miss counts. A single-segment render keeps cursor order
        // deterministic so the counts are exactly comparable.
        use v2v_spec::builder::grid4;
        use v2v_spec::RenderExpr;
        let mut catalog = Catalog::new();
        catalog.add_video("src", marked_stream(120, 30));
        let output = OutputSettings {
            frame_ty: FrameType::gray8(64, 32),
            frame_dur: r(1, 30),
            gop_size: 30,
            quantizer: 0,
        };
        let spec = SpecBuilder::new(output)
            .video("src", "src.svc")
            .append_with(r(1, 1), |_| {
                grid4(
                    RenderExpr::video("src"),
                    RenderExpr::video_shifted("src", r(1, 30)),
                    RenderExpr::video_shifted("src", r(2, 30)),
                    RenderExpr::video_shifted("src", r(3, 30)),
                )
            })
            .build();
        let logical = lower_spec(&spec).unwrap();
        let plan = optimize(
            &logical,
            &catalog.plan_context(),
            &OptimizerConfig {
                shard_min_frames: u64::MAX, // one render segment
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(plan.segments.len(), 1, "test premise: single segment");
        for cache_frames in [0usize, 512, 4096] {
            let opts = ExecOptions {
                gop_cache_frames: cache_frames,
                parallel: false,
                ..Default::default()
            };
            let (_, batch_stats, _) = execute(&plan, &catalog, &opts).unwrap();
            let (_, streaming_stats) =
                execute_streaming_with(&plan, &catalog, &opts, |_| {}).unwrap();
            assert_eq!(
                batch_stats.gop_cache_hits, streaming_stats.exec.gop_cache_hits,
                "hits diverge at cache_frames={cache_frames}"
            );
            assert_eq!(
                batch_stats.gop_cache_misses, streaming_stats.exec.gop_cache_misses,
                "misses diverge at cache_frames={cache_frames}"
            );
            assert_eq!(batch_stats, streaming_stats.exec, "full stats diverge");
        }
    }

    #[test]
    fn worker_errors_propagate() {
        let (catalog, spec) = setup();
        let logical = lower_spec(&spec).unwrap();
        let mut plan = optimize(
            &logical,
            &catalog.plan_context(),
            &OptimizerConfig::default(),
        )
        .unwrap();
        // Corrupt a segment to reference a missing video.
        if let v2v_plan::SegPlan::StreamCopy { video, .. } = &mut plan.segments[0].plan {
            *video = "ghost".into();
        }
        assert!(execute_streaming(&plan, &catalog, |_| {}).is_err());
    }
}
