//! Deterministic fault injection and degraded-mode error policy.
//!
//! The executors promise a *complete* output: every planned frame is
//! accounted for even when a source turns hostile mid-run. This module
//! supplies the two halves of that promise:
//!
//! * [`FaultInjector`] — a test/ops hook ([`ExecOptions::fault`]) that
//!   deterministically injects I/O failures, corrupt packets, and
//!   truncated reads at cursor decode sites. Rules match on
//!   `(video, frame index)`, not call order, so a faulted run behaves
//!   identically under the serial, pipelined, and split arms.
//! * [`ErrorPolicy`] — what the scheduler does when a part fails after
//!   its bounded retries: abort the run (default, the historical
//!   behavior), skip the segment (a hole in the output), or substitute
//!   encoded black frames so the output keeps its full length.
//!
//! Every degraded part is reported as a [`SegmentFault`] — a structured,
//! serializable record carried on [`PartOutput::fault`], collected into
//! [`ExecTrace::errors`], and surfaced by the CLI's `--error-report`.
//!
//! [`ExecOptions::fault`]: crate::ExecOptions::fault
//! [`PartOutput::fault`]: crate::PartOutput::fault
//! [`ExecTrace::errors`]: crate::ExecTrace::errors

use crate::ExecError;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// The kind of fault a rule injects at a decode site.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FaultKind {
    /// A synthetic I/O failure: the packet read itself fails.
    Io,
    /// The packet bytes are corrupted (kind byte clobbered) before the
    /// decoder sees them, exercising the hardened parse path.
    CorruptPacket,
    /// The packet is cut in half before the decoder sees it.
    TruncatedRead,
}

impl FaultKind {
    /// Stable lowercase name, used in counters and span attributes.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Io => "io",
            FaultKind::CorruptPacket => "corrupt_packet",
            FaultKind::TruncatedRead => "truncated_read",
        }
    }
}

/// One injection rule: fires when any cursor over `video` touches
/// source frame `frame`.
#[derive(Debug)]
struct Rule {
    video: String,
    frame: u64,
    kind: FaultKind,
    /// Cap on how many times this rule fires (`None` = every touch).
    times: Option<u64>,
    fired: AtomicU64,
}

/// A deterministic fault injector, shared by every cursor of a run via
/// [`ExecOptions::fault`](crate::ExecOptions::fault).
///
/// Rules match on `(video, source frame index)` — a property of the
/// *work*, not of scheduling — so which worker or pipeline stage decodes
/// the frame does not change whether the fault fires. A bounded rule
/// (`times`) models a transient fault: the first `times` touches fail,
/// later touches (retries) succeed.
#[derive(Debug, Default)]
pub struct FaultInjector {
    rules: Vec<Rule>,
}

impl FaultInjector {
    /// An injector with no rules (never fires).
    pub fn new() -> FaultInjector {
        FaultInjector::default()
    }

    /// Adds a rule that fires on *every* touch of `(video, frame)`.
    pub fn fail(mut self, video: impl Into<String>, frame: u64, kind: FaultKind) -> FaultInjector {
        self.rules.push(Rule {
            video: video.into(),
            frame,
            kind,
            times: None,
            fired: AtomicU64::new(0),
        });
        self
    }

    /// Adds a transient rule: the first `times` touches of
    /// `(video, frame)` fail, later touches succeed.
    pub fn fail_times(
        mut self,
        video: impl Into<String>,
        frame: u64,
        kind: FaultKind,
        times: u64,
    ) -> FaultInjector {
        self.rules.push(Rule {
            video: video.into(),
            frame,
            kind,
            times: Some(times),
            fired: AtomicU64::new(0),
        });
        self
    }

    /// `true` when no rule is registered (the cursors' fast path).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Checks whether a fault fires for this touch of `(video, frame)`,
    /// consuming one firing of the first matching rule.
    pub fn check(&self, video: &str, frame: u64) -> Option<FaultKind> {
        for rule in &self.rules {
            if rule.frame != frame || rule.video != video {
                continue;
            }
            let fires = match rule.times {
                None => {
                    rule.fired.fetch_add(1, Ordering::Relaxed);
                    true
                }
                Some(t) => rule
                    .fired
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                        (v < t).then_some(v + 1)
                    })
                    .is_ok(),
            };
            if fires {
                return Some(rule.kind);
            }
        }
        None
    }

    /// Total faults injected so far. `fired` counts actual firings for
    /// bounded rules too (the increment stops at the cap).
    pub fn injections(&self) -> u64 {
        self.rules
            .iter()
            .map(|r| r.fired.load(Ordering::Relaxed))
            .sum()
    }
}

/// What the scheduler does with a part that still fails after its
/// bounded retries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ErrorPolicy {
    /// Propagate the error and abort the run (the historical behavior).
    #[default]
    Abort,
    /// Drop the failed range: the output is shorter by the lost frames,
    /// later segments splice in directly after the hole.
    SkipSegment,
    /// Encode black frames over the failed range so the output keeps
    /// its planned length and timing.
    SubstituteBlack,
}

impl ErrorPolicy {
    /// Stable lowercase name (`abort` / `skip` / `black`), the same
    /// tokens [`FromStr`](std::str::FromStr) accepts.
    pub fn name(self) -> &'static str {
        match self {
            ErrorPolicy::Abort => "abort",
            ErrorPolicy::SkipSegment => "skip",
            ErrorPolicy::SubstituteBlack => "black",
        }
    }
}

impl std::fmt::Display for ErrorPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ErrorPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<ErrorPolicy, String> {
        match s {
            "abort" => Ok(ErrorPolicy::Abort),
            "skip" | "skip_segment" => Ok(ErrorPolicy::SkipSegment),
            "black" | "substitute_black" => Ok(ErrorPolicy::SubstituteBlack),
            other => Err(format!(
                "unknown error policy '{other}' (expected abort, skip, or black)"
            )),
        }
    }
}

/// How a failed part was resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FaultAction {
    /// A retry succeeded; the output is byte-identical to a clean run.
    Recovered,
    /// The range was dropped from the output ([`ErrorPolicy::SkipSegment`]).
    Skipped,
    /// The range was filled with encoded black frames
    /// ([`ErrorPolicy::SubstituteBlack`]).
    SubstitutedBlack,
}

impl FaultAction {
    /// Stable lowercase name, used in counters and reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultAction::Recovered => "recovered",
            FaultAction::Skipped => "skipped",
            FaultAction::SubstitutedBlack => "substituted_black",
        }
    }
}

/// A structured record of one degraded (or recovered) part: which output
/// range was affected, what the error was, and how it was resolved.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentFault {
    /// Index of the segment in the physical plan.
    pub seg_index: u64,
    /// Absolute output frame index of the affected range.
    pub abs_start: u64,
    /// Output frames in the affected range.
    pub frames: u64,
    /// How the failure was resolved.
    pub action: FaultAction,
    /// Retries spent before the resolution (including the successful
    /// one for [`FaultAction::Recovered`]).
    pub retries: u64,
    /// The original error, rendered.
    pub error: String,
    /// Machine-readable error class (see [`error_kind`]).
    pub kind: String,
}

/// Classifies an [`ExecError`] into a small stable vocabulary for
/// counters and reports.
pub fn error_kind(e: &ExecError) -> &'static str {
    use v2v_container::ContainerError;
    match e {
        ExecError::UnknownVideo(_) | ExecError::UnknownImage(_) | ExecError::UnknownUdf(_) => {
            "not_found"
        }
        ExecError::UdfFailed { .. } => "udf",
        ExecError::MissingFrame { .. } => "missing_frame",
        ExecError::BadArgument { .. } => "invalid_argument",
        ExecError::SourceIo { .. } => "io",
        ExecError::Codec(_) => "corrupt_data",
        ExecError::Container(ContainerError::Io(_)) => "io",
        ExecError::Container(_) => "corrupt_data",
        ExecError::Plan(_) => "plan",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_match_on_video_and_frame() {
        let inj = FaultInjector::new().fail("a", 7, FaultKind::Io);
        assert_eq!(inj.check("a", 6), None);
        assert_eq!(inj.check("b", 7), None);
        assert_eq!(inj.check("a", 7), Some(FaultKind::Io));
        // Unbounded rules keep firing.
        assert_eq!(inj.check("a", 7), Some(FaultKind::Io));
        assert_eq!(inj.injections(), 2);
    }

    #[test]
    fn bounded_rules_model_transient_faults() {
        let inj = FaultInjector::new().fail_times("a", 3, FaultKind::CorruptPacket, 2);
        assert_eq!(inj.check("a", 3), Some(FaultKind::CorruptPacket));
        assert_eq!(inj.check("a", 3), Some(FaultKind::CorruptPacket));
        assert_eq!(inj.check("a", 3), None, "the third touch succeeds");
        assert_eq!(inj.injections(), 2);
    }

    #[test]
    fn policy_parses_and_round_trips() {
        for (text, want) in [
            ("abort", ErrorPolicy::Abort),
            ("skip", ErrorPolicy::SkipSegment),
            ("black", ErrorPolicy::SubstituteBlack),
        ] {
            let parsed: ErrorPolicy = text.parse().unwrap();
            assert_eq!(parsed, want);
            assert_eq!(parsed.name(), text);
        }
        assert!("garbage".parse::<ErrorPolicy>().is_err());
    }

    #[test]
    fn segment_fault_serializes_stably() {
        let fault = SegmentFault {
            seg_index: 2,
            abs_start: 60,
            frames: 30,
            action: FaultAction::SubstitutedBlack,
            retries: 1,
            error: "codec error: corrupt packet".into(),
            kind: "corrupt_data".into(),
        };
        let json = serde_json::to_string(&fault).unwrap();
        assert!(json.contains("\"substituted_black\""));
        let back: SegmentFault = serde_json::from_str(&json).unwrap();
        assert_eq!(back, fault);
    }
}
