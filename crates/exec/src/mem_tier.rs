//! The hot in-memory fragment tier above the persistent render cache.
//!
//! Under heavy serving traffic the same few fragments are read over and
//! over; a disk round-trip (plus checksum verification) per hit is pure
//! overhead once an entry is hot. This tier keeps *frequently accessed*
//! fragments resident as parsed [`Fragment`]s behind `Arc`, so a hot
//! hit is a hash lookup and a refcount bump.
//!
//! Policy:
//!
//! * **Byte-budgeted LRU.** Entries are charged their serialized byte
//!   size; the least-recently-touched entry is evicted when the total
//!   exceeds the budget. An entry larger than the whole budget is never
//!   admitted.
//! * **Frequency-gated promotion.** An entry becomes resident only
//!   after [`promote_after`](MemTier::promote_after) accesses (ghost
//!   counters track non-resident keys), so a one-off scan cannot flush
//!   the hot set — the clock-like "second chance" half of LRU/clock.
//! * **No authority.** The tier holds copies of data whose truth lives
//!   on disk (or is re-renderable); it can be dropped at any time
//!   without correctness impact, and a poisoned lock is recovered, not
//!   propagated.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use v2v_container::Fragment;

/// Ghost (non-resident) frequency counters are bounded so an endless
/// stream of distinct keys cannot grow the map without limit; when the
/// cap is hit the counters reset, which only delays promotions.
const MAX_GHOSTS: usize = 65_536;

struct MemEntry {
    frag: Arc<Fragment>,
    bytes: u64,
    /// Last-touch stamp for LRU eviction.
    stamp: u64,
}

#[derive(Default)]
struct Inner {
    resident: HashMap<String, MemEntry>,
    /// Access counts for keys not (yet) resident.
    ghosts: HashMap<String, u32>,
    total_bytes: u64,
    next_stamp: u64,
}

/// A byte-budgeted, frequency-promoted, in-memory fragment cache.
///
/// Shared by reference from a [`RenderCache`](crate::RenderCache); keys
/// are the cache's entry names so the two tiers address the same
/// namespace.
pub struct MemTier {
    budget_bytes: u64,
    promote_after: u32,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    evictions: AtomicU64,
    promotions: AtomicU64,
}

impl std::fmt::Debug for MemTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemTier")
            .field("budget_bytes", &self.budget_bytes)
            .field("bytes_held", &self.bytes_held())
            .field("hits", &self.hits())
            .field("promotions", &self.promotions())
            .finish()
    }
}

impl MemTier {
    /// A tier with the given byte budget; entries are promoted on their
    /// second access (`promote_after` = 2).
    pub fn new(budget_bytes: u64) -> MemTier {
        MemTier::with_promote_after(budget_bytes, 2)
    }

    /// A tier that promotes an entry once it has been accessed
    /// `promote_after` times (minimum 1: promote on first access).
    pub fn with_promote_after(budget_bytes: u64, promote_after: u32) -> MemTier {
        MemTier {
            budget_bytes,
            promote_after: promote_after.max(1),
            inner: Mutex::new(Inner::default()),
            hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Accesses promoted past the gate so far.
    pub fn promotions(&self) -> u64 {
        self.promotions.load(Ordering::Relaxed)
    }

    /// Lookups served from memory.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Resident entries evicted under budget pressure.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Bytes currently resident.
    pub fn bytes_held(&self) -> u64 {
        self.lock().total_bytes
    }

    /// Resident entry count.
    pub fn entries(&self) -> usize {
        self.lock().resident.len()
    }

    /// Accesses required before a key becomes resident.
    pub fn promote_after(&self) -> u32 {
        self.promote_after
    }

    /// Looks up `name`, refreshing its LRU stamp on a hit. A miss also
    /// counts one ghost access so a later [`admit`](MemTier::admit) can
    /// decide on promotion.
    pub fn get(&self, name: &str) -> Option<Arc<Fragment>> {
        let mut inner = self.lock();
        inner.next_stamp += 1;
        let stamp = inner.next_stamp;
        if let Some(e) = inner.resident.get_mut(name) {
            e.stamp = stamp;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(Arc::clone(&e.frag));
        }
        Self::bump_ghost(&mut inner, name);
        None
    }

    /// Offers a fragment just read from the slower tier. It becomes
    /// resident if its access count (including the [`get`](MemTier::get)
    /// miss that preceded this call) has reached the promotion gate and
    /// it fits the budget.
    pub fn admit(&self, name: &str, frag: &Arc<Fragment>, bytes: u64) {
        if self.budget_bytes == 0 || bytes > self.budget_bytes {
            return;
        }
        let mut inner = self.lock();
        if inner.resident.contains_key(name) {
            return;
        }
        let freq = inner.ghosts.get(name).copied().unwrap_or(0);
        if freq < self.promote_after {
            return;
        }
        inner.ghosts.remove(name);
        inner.next_stamp += 1;
        let stamp = inner.next_stamp;
        inner.resident.insert(
            name.to_string(),
            MemEntry {
                frag: Arc::clone(frag),
                bytes,
                stamp,
            },
        );
        inner.total_bytes += bytes;
        self.promotions.fetch_add(1, Ordering::Relaxed);
        self.evict_to_budget(&mut inner, name);
    }

    /// Drops `name` if resident — called when the disk tier evicts or
    /// replaces the entry so the tiers cannot serve diverging bytes.
    pub fn invalidate(&self, name: &str) {
        let mut inner = self.lock();
        if let Some(old) = inner.resident.remove(name) {
            inner.total_bytes -= old.bytes;
        }
        inner.ghosts.remove(name);
    }

    fn bump_ghost(inner: &mut Inner, name: &str) {
        if inner.ghosts.len() >= MAX_GHOSTS && !inner.ghosts.contains_key(name) {
            inner.ghosts.clear();
        }
        *inner.ghosts.entry(name.to_string()).or_insert(0) += 1;
    }

    fn evict_to_budget(&self, inner: &mut Inner, keep: &str) {
        while inner.total_bytes > self.budget_bytes {
            let victim = inner
                .resident
                .iter()
                .filter(|(name, _)| name.as_str() != keep)
                .min_by_key(|(_, e)| e.stamp)
                .map(|(name, _)| name.clone());
            let Some(victim) = victim else { break };
            if let Some(old) = inner.resident.remove(&victim) {
                inner.total_bytes -= old.bytes;
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v2v_codec::CodecParams;
    use v2v_container::{fragment_to_bytes, StreamWriter};
    use v2v_frame::{Frame, FrameType};
    use v2v_time::{r, Rational};

    fn frag(n: usize, fill: u8) -> (Arc<Fragment>, u64) {
        let ty = FrameType::gray8(32, 32);
        let params = CodecParams::new(ty, 4, 0);
        let mut w = StreamWriter::new(params, Rational::ZERO, r(1, 30));
        for i in 0..n {
            let mut f = Frame::black(ty);
            for v in f.plane_mut(0).data_mut() {
                *v = fill.wrapping_add(i as u8);
            }
            w.push_frame(&f).unwrap();
        }
        let frag = Fragment::from_stream(&w.finish().unwrap());
        let bytes = fragment_to_bytes(&frag).unwrap().len() as u64;
        (Arc::new(frag), bytes)
    }

    #[test]
    fn promotion_requires_repeat_access() {
        let tier = MemTier::new(1 << 20);
        let (f, b) = frag(4, 1);
        // First access: miss, admitted but below the gate → not resident.
        assert!(tier.get("seg-a").is_none());
        tier.admit("seg-a", &f, b);
        assert_eq!(tier.entries(), 0, "one access must not promote");
        // Second access: miss again, now past the gate → resident.
        assert!(tier.get("seg-a").is_none());
        tier.admit("seg-a", &f, b);
        assert_eq!(tier.entries(), 1);
        assert_eq!(tier.promotions(), 1);
        // Third access is a memory hit.
        assert!(tier.get("seg-a").is_some());
        assert_eq!(tier.hits(), 1);
    }

    #[test]
    fn promote_after_one_admits_immediately() {
        let tier = MemTier::with_promote_after(1 << 20, 1);
        let (f, b) = frag(4, 2);
        assert!(tier.get("seg-a").is_none());
        tier.admit("seg-a", &f, b);
        assert!(tier.get("seg-a").is_some());
    }

    #[test]
    fn lru_eviction_respects_byte_budget() {
        let (f, one) = frag(8, 3);
        // Room for two entries, not three; promote on first access.
        let tier = MemTier::with_promote_after(one * 2 + one / 2, 1);
        for name in ["seg-1", "seg-2"] {
            assert!(tier.get(name).is_none());
            tier.admit(name, &f, one);
        }
        assert_eq!(tier.entries(), 2);
        assert_eq!(tier.evictions(), 0);
        // Touch seg-1 so seg-2 is the LRU victim.
        assert!(tier.get("seg-1").is_some());
        assert!(tier.get("seg-3").is_none());
        tier.admit("seg-3", &f, one);
        assert_eq!(tier.evictions(), 1);
        assert!(tier.bytes_held() <= tier.budget_bytes());
        assert!(tier.get("seg-2").is_none(), "LRU victim gone");
        assert!(tier.get("seg-1").is_some());
        assert!(tier.get("seg-3").is_some());
    }

    #[test]
    fn oversized_entry_is_never_admitted() {
        let (f, b) = frag(8, 4);
        let tier = MemTier::with_promote_after(b / 2, 1);
        assert!(tier.get("seg-big").is_none());
        tier.admit("seg-big", &f, b);
        assert_eq!(tier.entries(), 0);
    }

    #[test]
    fn invalidate_drops_resident_entry() {
        let tier = MemTier::with_promote_after(1 << 20, 1);
        let (f, b) = frag(4, 5);
        assert!(tier.get("seg-a").is_none());
        tier.admit("seg-a", &f, b);
        assert!(tier.get("seg-a").is_some());
        tier.invalidate("seg-a");
        assert_eq!(tier.entries(), 0);
        assert!(tier.get("seg-a").is_none());
    }

    #[test]
    fn zero_budget_disables_the_tier() {
        let tier = MemTier::with_promote_after(0, 1);
        let (f, b) = frag(4, 6);
        assert!(tier.get("seg-a").is_none());
        tier.admit("seg-a", &f, b);
        assert_eq!(tier.entries(), 0);
    }
}
