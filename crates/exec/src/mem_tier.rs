//! The hot in-memory fragment tier above the persistent render cache.
//!
//! Under heavy serving traffic the same few fragments are read over and
//! over; a disk round-trip (plus checksum verification) per hit is pure
//! overhead once an entry is hot. This tier keeps *frequently accessed*
//! fragments resident as parsed [`Fragment`]s behind `Arc`, so a hot
//! hit is a hash lookup and a refcount bump.
//!
//! Policy:
//!
//! * **Byte-budgeted LRU.** Entries are charged their serialized byte
//!   size; the least-recently-touched entry is evicted when the total
//!   exceeds the budget. An entry larger than the whole budget is never
//!   admitted.
//! * **Frequency-gated promotion.** An entry becomes resident only
//!   after [`promote_after`](MemTier::promote_after) accesses (ghost
//!   counters track non-resident keys), so a one-off scan cannot flush
//!   the hot set — the clock-like "second chance" half of LRU/clock.
//! * **No authority.** The tier holds copies of data whose truth lives
//!   on disk (or is re-renderable); it can be dropped at any time
//!   without correctness impact, and a poisoned lock is recovered, not
//!   propagated.
//!
//! Concurrency: the map is split into `SHARD_COUNT` lock shards keyed
//! by entry name, so concurrent hits on distinct entries never contend.
//! LRU stamps and the byte total are global atomics — eviction still
//! picks the globally least-recently-used entry (it scans the shards,
//! which is fine because eviction is rare next to the hit path).

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use v2v_container::Fragment;

/// Number of lock shards. A small power of two: enough that a handful
/// of serving threads hammering the hit path rarely collide, small
/// enough that the eviction scan stays trivial.
const SHARD_COUNT: usize = 8;

/// Ghost (non-resident) frequency counters are bounded per shard so an
/// endless stream of distinct keys cannot grow the maps without limit;
/// when a shard's cap is hit its counters reset, which only delays
/// promotions.
const MAX_GHOSTS_PER_SHARD: usize = 65_536 / SHARD_COUNT;

struct MemEntry {
    frag: Arc<Fragment>,
    bytes: u64,
    /// Last-touch stamp (from the tier-global counter) for LRU
    /// eviction.
    stamp: u64,
}

#[derive(Default)]
struct Shard {
    resident: HashMap<String, MemEntry>,
    /// Access counts for keys not (yet) resident.
    ghosts: HashMap<String, u32>,
}

/// A byte-budgeted, frequency-promoted, in-memory fragment cache.
///
/// Shared by reference from a [`RenderCache`](crate::RenderCache); keys
/// are the cache's entry names so the two tiers address the same
/// namespace.
pub struct MemTier {
    budget_bytes: u64,
    promote_after: u32,
    shards: Vec<Mutex<Shard>>,
    total_bytes: AtomicU64,
    next_stamp: AtomicU64,
    hits: AtomicU64,
    evictions: AtomicU64,
    promotions: AtomicU64,
}

impl std::fmt::Debug for MemTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemTier")
            .field("budget_bytes", &self.budget_bytes)
            .field("bytes_held", &self.bytes_held())
            .field("hits", &self.hits())
            .field("promotions", &self.promotions())
            .finish()
    }
}

impl MemTier {
    /// A tier with the given byte budget; entries are promoted on their
    /// second access (`promote_after` = 2).
    pub fn new(budget_bytes: u64) -> MemTier {
        MemTier::with_promote_after(budget_bytes, 2)
    }

    /// A tier that promotes an entry once it has been accessed
    /// `promote_after` times (minimum 1: promote on first access).
    pub fn with_promote_after(budget_bytes: u64, promote_after: u32) -> MemTier {
        MemTier {
            budget_bytes,
            promote_after: promote_after.max(1),
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            total_bytes: AtomicU64::new(0),
            next_stamp: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
        }
    }

    fn shard(&self, name: &str) -> MutexGuard<'_, Shard> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        name.hash(&mut h);
        self.shards[(h.finish() as usize) % SHARD_COUNT]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_shard(&self, index: usize) -> MutexGuard<'_, Shard> {
        self.shards[index]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Accesses promoted past the gate so far.
    pub fn promotions(&self) -> u64 {
        self.promotions.load(Ordering::Relaxed)
    }

    /// Lookups served from memory.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Resident entries evicted under budget pressure.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Bytes currently resident.
    pub fn bytes_held(&self) -> u64 {
        self.total_bytes.load(Ordering::Relaxed)
    }

    /// Resident entry count.
    pub fn entries(&self) -> usize {
        (0..SHARD_COUNT)
            .map(|i| self.lock_shard(i).resident.len())
            .sum()
    }

    /// Accesses required before a key becomes resident.
    pub fn promote_after(&self) -> u32 {
        self.promote_after
    }

    /// Looks up `name`, refreshing its LRU stamp on a hit. A miss also
    /// counts one ghost access so a later [`admit`](MemTier::admit) can
    /// decide on promotion.
    pub fn get(&self, name: &str) -> Option<Arc<Fragment>> {
        let stamp = self.next_stamp.fetch_add(1, Ordering::Relaxed) + 1;
        let mut shard = self.shard(name);
        if let Some(e) = shard.resident.get_mut(name) {
            e.stamp = stamp;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(Arc::clone(&e.frag));
        }
        Self::bump_ghost(&mut shard, name);
        None
    }

    /// Offers a fragment just read from the slower tier. It becomes
    /// resident if its access count (including the [`get`](MemTier::get)
    /// miss that preceded this call) has reached the promotion gate and
    /// it fits the budget.
    pub fn admit(&self, name: &str, frag: &Arc<Fragment>, bytes: u64) {
        if self.budget_bytes == 0 || bytes > self.budget_bytes {
            return;
        }
        {
            let mut shard = self.shard(name);
            if shard.resident.contains_key(name) {
                return;
            }
            let freq = shard.ghosts.get(name).copied().unwrap_or(0);
            if freq < self.promote_after {
                return;
            }
            shard.ghosts.remove(name);
            let stamp = self.next_stamp.fetch_add(1, Ordering::Relaxed) + 1;
            shard.resident.insert(
                name.to_string(),
                MemEntry {
                    frag: Arc::clone(frag),
                    bytes,
                    stamp,
                },
            );
        }
        self.total_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.promotions.fetch_add(1, Ordering::Relaxed);
        self.evict_to_budget(name);
    }

    /// Drops `name` if resident — called when the disk tier evicts or
    /// replaces the entry so the tiers cannot serve diverging bytes.
    pub fn invalidate(&self, name: &str) {
        let mut shard = self.shard(name);
        if let Some(old) = shard.resident.remove(name) {
            self.total_bytes.fetch_sub(old.bytes, Ordering::Relaxed);
        }
        shard.ghosts.remove(name);
    }

    fn bump_ghost(shard: &mut Shard, name: &str) {
        if shard.ghosts.len() >= MAX_GHOSTS_PER_SHARD && !shard.ghosts.contains_key(name) {
            shard.ghosts.clear();
        }
        *shard.ghosts.entry(name.to_string()).or_insert(0) += 1;
    }

    /// Evicts globally least-recently-stamped entries until the total
    /// fits the budget, never evicting `keep` (the just-admitted
    /// entry). Shards are locked one at a time; an entry retouched
    /// between the scan and the removal is hot again and spared.
    fn evict_to_budget(&self, keep: &str) {
        while self.total_bytes.load(Ordering::Relaxed) > self.budget_bytes {
            let mut victim: Option<(usize, String, u64)> = None;
            for i in 0..SHARD_COUNT {
                let shard = self.lock_shard(i);
                for (name, e) in &shard.resident {
                    if name.as_str() == keep {
                        continue;
                    }
                    let better = victim
                        .as_ref()
                        .map_or(true, |(_, _, stamp)| e.stamp < *stamp);
                    if better {
                        victim = Some((i, name.clone(), e.stamp));
                    }
                }
            }
            let Some((i, name, stamp)) = victim else {
                break;
            };
            let mut shard = self.lock_shard(i);
            let untouched = shard.resident.get(&name).is_some_and(|e| e.stamp == stamp);
            if untouched {
                if let Some(old) = shard.resident.remove(&name) {
                    self.total_bytes.fetch_sub(old.bytes, Ordering::Relaxed);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v2v_codec::CodecParams;
    use v2v_container::{fragment_to_bytes, StreamWriter};
    use v2v_frame::{Frame, FrameType};
    use v2v_time::{r, Rational};

    fn frag(n: usize, fill: u8) -> (Arc<Fragment>, u64) {
        let ty = FrameType::gray8(32, 32);
        let params = CodecParams::new(ty, 4, 0);
        let mut w = StreamWriter::new(params, Rational::ZERO, r(1, 30));
        for i in 0..n {
            let mut f = Frame::black(ty);
            for v in f.plane_mut(0).data_mut() {
                *v = fill.wrapping_add(i as u8);
            }
            w.push_frame(&f).unwrap();
        }
        let frag = Fragment::from_stream(&w.finish().unwrap());
        let bytes = fragment_to_bytes(&frag).unwrap().len() as u64;
        (Arc::new(frag), bytes)
    }

    #[test]
    fn promotion_requires_repeat_access() {
        let tier = MemTier::new(1 << 20);
        let (f, b) = frag(4, 1);
        // First access: miss, admitted but below the gate → not resident.
        assert!(tier.get("seg-a").is_none());
        tier.admit("seg-a", &f, b);
        assert_eq!(tier.entries(), 0, "one access must not promote");
        // Second access: miss again, now past the gate → resident.
        assert!(tier.get("seg-a").is_none());
        tier.admit("seg-a", &f, b);
        assert_eq!(tier.entries(), 1);
        assert_eq!(tier.promotions(), 1);
        // Third access is a memory hit.
        assert!(tier.get("seg-a").is_some());
        assert_eq!(tier.hits(), 1);
    }

    #[test]
    fn promote_after_one_admits_immediately() {
        let tier = MemTier::with_promote_after(1 << 20, 1);
        let (f, b) = frag(4, 2);
        assert!(tier.get("seg-a").is_none());
        tier.admit("seg-a", &f, b);
        assert!(tier.get("seg-a").is_some());
    }

    #[test]
    fn lru_eviction_respects_byte_budget() {
        let (f, one) = frag(8, 3);
        // Room for two entries, not three; promote on first access.
        let tier = MemTier::with_promote_after(one * 2 + one / 2, 1);
        for name in ["seg-1", "seg-2"] {
            assert!(tier.get(name).is_none());
            tier.admit(name, &f, one);
        }
        assert_eq!(tier.entries(), 2);
        assert_eq!(tier.evictions(), 0);
        // Touch seg-1 so seg-2 is the LRU victim.
        assert!(tier.get("seg-1").is_some());
        assert!(tier.get("seg-3").is_none());
        tier.admit("seg-3", &f, one);
        assert_eq!(tier.evictions(), 1);
        assert!(tier.bytes_held() <= tier.budget_bytes());
        assert!(tier.get("seg-2").is_none(), "LRU victim gone");
        assert!(tier.get("seg-1").is_some());
        assert!(tier.get("seg-3").is_some());
    }

    #[test]
    fn oversized_entry_is_never_admitted() {
        let (f, b) = frag(8, 4);
        let tier = MemTier::with_promote_after(b / 2, 1);
        assert!(tier.get("seg-big").is_none());
        tier.admit("seg-big", &f, b);
        assert_eq!(tier.entries(), 0);
    }

    #[test]
    fn invalidate_drops_resident_entry() {
        let tier = MemTier::with_promote_after(1 << 20, 1);
        let (f, b) = frag(4, 5);
        assert!(tier.get("seg-a").is_none());
        tier.admit("seg-a", &f, b);
        assert!(tier.get("seg-a").is_some());
        tier.invalidate("seg-a");
        assert_eq!(tier.entries(), 0);
        assert!(tier.get("seg-a").is_none());
    }

    #[test]
    fn zero_budget_disables_the_tier() {
        let tier = MemTier::with_promote_after(0, 1);
        let (f, b) = frag(4, 6);
        assert!(tier.get("seg-a").is_none());
        tier.admit("seg-a", &f, b);
        assert_eq!(tier.entries(), 0);
    }

    #[test]
    fn concurrent_hits_on_distinct_entries() {
        let tier = MemTier::with_promote_after(1 << 24, 1);
        let names: Vec<String> = (0..16).map(|i| format!("seg-{i}")).collect();
        for name in &names {
            let (f, b) = frag(4, 7);
            assert!(tier.get(name).is_none());
            tier.admit(name, &f, b);
        }
        std::thread::scope(|scope| {
            for name in &names {
                scope.spawn(|| {
                    for _ in 0..200 {
                        assert!(tier.get(name).is_some());
                    }
                });
            }
        });
        assert_eq!(tier.hits(), 16 * 200);
        assert_eq!(tier.entries(), 16);
    }
}
