//! Remote segment rendering hook.
//!
//! The scheduler is deliberately ignorant of *how* a segment might be
//! rendered elsewhere — it only knows that, for a keyed whole render
//! segment that missed every local tier, it may ask a
//! [`RemoteRenderer`] before falling back to rendering in-process. The
//! serving layer implements the trait over its worker pool (consistent
//! hashing, per-dispatch deadlines, bounded re-dispatch); tests
//! implement it with canned fragments.

use v2v_container::Fragment;

/// A hook that can produce a segment's fragment from outside this
/// process.
///
/// Contract: a returned fragment must be **verified content** for
/// `key` — the implementation is responsible for digest-checking
/// whatever transport it used (see
/// [`v2v_container::fragment_from_wire`]). Returning `None` means "no
/// remote result, render locally"; the scheduler treats every `None`
/// as a graceful fallback, never an error.
pub trait RemoteRenderer: Send + Sync + std::fmt::Debug {
    /// Attempts to obtain the fragment for plan segment `seg_index`
    /// with content key `key`. `cost` is the scheduler's abstract cost
    /// estimate for the segment ([`crate::segment_cost`]), which
    /// implementations may use to derive dispatch deadlines.
    fn render_remote(&self, seg_index: usize, key: u64, cost: f64) -> Option<Fragment>;
}
