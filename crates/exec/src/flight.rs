//! In-flight single-flight registry for fragment keys.
//!
//! When two concurrent plans contain the same cacheable segment, the
//! disk cache only helps if one finishes before the other starts; two
//! renders *in flight at once* each miss and both pay the full decode.
//! `FragmentFlight` closes that window with the same in-flight-set
//! pattern as [`GopCache`](crate::GopCache): the first worker to reach
//! a key claims it and becomes the **owner**; everyone else arriving
//! while the render is in flight blocks and receives the owner's
//! published [`Fragment`] — each shared segment is rendered exactly
//! once across every concurrent consumer.
//!
//! Ordering invariant (the reason duplicates are *provably* impossible
//! rather than merely unlikely): callers claim the flight **before**
//! consulting the memory/disk tiers, and an owner stores to disk
//! **before** publishing. A latecomer therefore either joins the flight
//! (shared) or, if the flight already drained, finds the entry on disk.
//!
//! Failure is not sticky: an owner that errors (or panics — the guard
//! publishes on drop) releases the key with no fragment, and every
//! waiter falls back to rendering locally.
//!
//! Concurrency: the slot map is split into `SHARD_COUNT` lock shards
//! (each with its own condvar) keyed by the low bits of the fragment
//! key, so claims on distinct keys rarely touch the same lock and a
//! publish only wakes the waiters of its own shard.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use v2v_container::Fragment;

/// Number of lock shards. Fragment keys are FNV fingerprints, so the
/// low bits are already well mixed.
const SHARD_COUNT: usize = 8;

enum SlotState {
    /// The owner is rendering; waiters block on the shard's condvar.
    Rendering,
    /// The owner finished. `None` means it failed and waiters must
    /// render locally.
    Done(Option<Arc<Fragment>>),
}

struct Slot {
    state: SlotState,
    /// Blocked claimants still to drain; the last one out removes the
    /// slot so a later sequential repeat goes to the disk tier instead
    /// of pinning bytes here forever.
    waiters: usize,
}

#[derive(Default)]
struct Inner {
    slots: HashMap<u64, Slot>,
}

#[derive(Default)]
struct Shard {
    inner: Mutex<Inner>,
    done: Condvar,
}

impl Shard {
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Exactly-once publish/subscribe on fragment keys, shared across every
/// engine run that participates in work sharing (one instance per
/// daemon).
pub struct FragmentFlight {
    shards: Vec<Shard>,
    published: AtomicU64,
    shared: AtomicU64,
}

impl Default for FragmentFlight {
    fn default() -> FragmentFlight {
        FragmentFlight {
            shards: (0..SHARD_COUNT).map(|_| Shard::default()).collect(),
            published: AtomicU64::new(0),
            shared: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for FragmentFlight {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FragmentFlight")
            .field("inflight", &self.inflight())
            .field("published", &self.published())
            .field("shared", &self.shared())
            .finish()
    }
}

/// Result of [`FragmentFlight::claim`].
pub enum Claim<'a> {
    /// This caller owns the render. It must [`publish`](FlightGuard::publish)
    /// (or drop the guard, which publishes "failed").
    Owner(FlightGuard<'a>),
    /// Another worker rendered the key; `None` means that render failed
    /// and the caller should render locally (without re-claiming).
    Shared(Option<Arc<Fragment>>),
}

/// Ownership of one in-flight key. Publishing (or dropping) releases
/// every waiter.
pub struct FlightGuard<'a> {
    flight: &'a FragmentFlight,
    key: u64,
    released: bool,
}

impl FlightGuard<'_> {
    /// The claimed key.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Hands the rendered fragment to every waiter and releases the
    /// key. Call only after the fragment is durably stored (disk tier),
    /// so post-flight latecomers hit the cache.
    pub fn publish(mut self, frag: Arc<Fragment>) {
        self.released = true;
        self.flight.release(self.key, Some(frag));
        self.flight.published.fetch_add(1, Ordering::Relaxed);
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.released {
            // Owner failed (error or panic): wake waiters empty-handed
            // so they render locally instead of blocking forever.
            self.flight.release(self.key, None);
        }
    }
}

impl FragmentFlight {
    /// An empty registry.
    pub fn new() -> FragmentFlight {
        FragmentFlight::default()
    }

    fn shard(&self, key: u64) -> &Shard {
        &self.shards[(key % SHARD_COUNT as u64) as usize]
    }

    /// Fragments published by owners so far.
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::Relaxed)
    }

    /// Claims served from another worker's in-flight render.
    pub fn shared(&self) -> u64 {
        self.shared.load(Ordering::Relaxed)
    }

    /// Keys currently being rendered by an owner.
    pub fn inflight(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                shard
                    .lock()
                    .slots
                    .values()
                    .filter(|s| matches!(s.state, SlotState::Rendering))
                    .count()
            })
            .sum()
    }

    /// True while another worker owns `key` — used by the scheduler to
    /// defer a task that would only block, and by tests to synchronize.
    pub fn is_inflight(&self, key: u64) -> bool {
        matches!(
            self.shard(key).lock().slots.get(&key).map(|s| &s.state),
            Some(SlotState::Rendering)
        )
    }

    /// Claims `key`: the first caller becomes the owner; concurrent
    /// callers block until the owner publishes and receive the shared
    /// fragment.
    pub fn claim(&self, key: u64) -> Claim<'_> {
        let shard = self.shard(key);
        let mut inner = shard.lock();
        loop {
            match inner.slots.get_mut(&key) {
                None => {
                    inner.slots.insert(
                        key,
                        Slot {
                            state: SlotState::Rendering,
                            waiters: 0,
                        },
                    );
                    return Claim::Owner(FlightGuard {
                        flight: self,
                        key,
                        released: false,
                    });
                }
                Some(slot) => match &slot.state {
                    SlotState::Done(frag) => {
                        let frag = frag.clone();
                        if frag.is_some() {
                            self.shared.fetch_add(1, Ordering::Relaxed);
                        }
                        return Claim::Shared(frag);
                    }
                    SlotState::Rendering => {
                        slot.waiters += 1;
                        inner = shard
                            .done
                            .wait(inner)
                            .unwrap_or_else(PoisonError::into_inner);
                        // Re-inspect under the refreshed guard; the slot
                        // may have become Done, or (spurious wake) still
                        // be Rendering — the loop handles both.
                        let slot = inner
                            .slots
                            .get_mut(&key)
                            .expect("slot removed while waiters were registered");
                        if let SlotState::Done(frag) = &slot.state {
                            let frag = frag.clone();
                            slot.waiters -= 1;
                            if slot.waiters == 0 {
                                inner.slots.remove(&key);
                            }
                            if frag.is_some() {
                                self.shared.fetch_add(1, Ordering::Relaxed);
                            }
                            return Claim::Shared(frag);
                        }
                        slot.waiters -= 1;
                        // Spurious wakeup: loop and re-wait.
                    }
                },
            }
        }
    }

    /// Marks `key` done and wakes every waiter. With no waiters the
    /// slot is removed immediately (latecomers go to the disk tier).
    fn release(&self, key: u64, frag: Option<Arc<Fragment>>) {
        let shard = self.shard(key);
        let mut inner = shard.lock();
        if let Some(slot) = inner.slots.get_mut(&key) {
            if slot.waiters == 0 {
                inner.slots.remove(&key);
            } else {
                slot.state = SlotState::Done(frag);
            }
        }
        drop(inner);
        shard.done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use v2v_codec::CodecParams;
    use v2v_container::StreamWriter;
    use v2v_frame::{Frame, FrameType};
    use v2v_time::{r, Rational};

    fn sample_fragment(fill: u8) -> Arc<Fragment> {
        let ty = FrameType::gray8(16, 16);
        let params = CodecParams::new(ty, 4, 0);
        let mut w = StreamWriter::new(params, Rational::ZERO, r(1, 30));
        let mut f = Frame::black(ty);
        for v in f.plane_mut(0).data_mut() {
            *v = fill;
        }
        w.push_frame(&f).unwrap();
        Arc::new(Fragment::from_stream(&w.finish().unwrap()))
    }

    #[test]
    fn exactly_one_owner_under_contention() {
        let flight = FragmentFlight::new();
        let renders = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| match flight.claim(99) {
                    Claim::Owner(guard) => {
                        renders.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window so waiters really queue.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        guard.publish(sample_fragment(7));
                    }
                    Claim::Shared(frag) => {
                        let frag = frag.expect("owner published");
                        assert_eq!(frag.len(), 1);
                    }
                });
            }
        });
        assert_eq!(renders.load(Ordering::SeqCst), 1, "exactly one render");
        assert_eq!(flight.published(), 1);
        assert_eq!(flight.shared(), 7);
        assert_eq!(flight.inflight(), 0);
        // The drained slot is gone: a later claim owns afresh.
        assert!(matches!(flight.claim(99), Claim::Owner(_)));
    }

    #[test]
    fn dropped_guard_releases_waiters_empty_handed() {
        let flight = FragmentFlight::new();
        std::thread::scope(|scope| {
            let Claim::Owner(guard) = flight.claim(5) else {
                panic!("first claim must own");
            };
            let waiter = scope.spawn(|| match flight.claim(5) {
                Claim::Shared(frag) => assert!(frag.is_none(), "failed owner shares nothing"),
                Claim::Owner(_) => panic!("waiter must not own while key is claimed"),
            });
            while !flight.is_inflight(5) {
                std::thread::yield_now();
            }
            // Give the waiter time to block, then fail the render.
            std::thread::sleep(std::time::Duration::from_millis(10));
            drop(guard);
            waiter.join().unwrap();
        });
        assert_eq!(flight.published(), 0);
        assert_eq!(flight.shared(), 0);
        // The key is claimable again after the failure.
        assert!(matches!(flight.claim(5), Claim::Owner(_)));
    }

    #[test]
    fn distinct_keys_do_not_contend() {
        let flight = FragmentFlight::new();
        let Claim::Owner(a) = flight.claim(1) else {
            panic!("own 1");
        };
        let Claim::Owner(b) = flight.claim(2) else {
            panic!("own 2");
        };
        assert_eq!(flight.inflight(), 2);
        a.publish(sample_fragment(1));
        b.publish(sample_fragment(2));
        assert_eq!(flight.inflight(), 0);
    }

    #[test]
    fn same_shard_keys_share_a_lock_without_interference() {
        // Keys 8 apart land in the same shard; claims must still be
        // independent per key.
        let flight = FragmentFlight::new();
        let Claim::Owner(a) = flight.claim(16) else {
            panic!("own 16");
        };
        let Claim::Owner(b) = flight.claim(24) else {
            panic!("own 24");
        };
        assert!(flight.is_inflight(16));
        assert!(flight.is_inflight(24));
        a.publish(sample_fragment(1));
        assert!(!flight.is_inflight(16));
        assert!(flight.is_inflight(24));
        b.publish(sample_fragment(2));
        assert_eq!(flight.inflight(), 0);
    }

    #[test]
    fn is_inflight_tracks_ownership_window() {
        let flight = FragmentFlight::new();
        assert!(!flight.is_inflight(3));
        let Claim::Owner(guard) = flight.claim(3) else {
            panic!("own");
        };
        assert!(flight.is_inflight(3));
        guard.publish(sample_fragment(3));
        assert!(!flight.is_inflight(3));
    }
}
