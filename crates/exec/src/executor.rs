//! The optimized physical-plan executor.
//!
//! Segments have no dependencies on each other (each render segment
//! starts its own GOP; copies are self-contained), so the engine
//! evaluates them in parallel and splices the resulting packet runs in
//! output order — "we use the dependency graph to execute operators in
//! parallel as an additional optimization at runtime" (§IV-A). The
//! parallelism itself lives in [`crate::scheduler`]: work is dispatched
//! longest-first by estimated cost, long renders are split at output-GOP
//! boundaries when workers idle, and each render part internally
//! pipelines decode-ahead, parallel compose, and per-GOP encoding.

use crate::catalog::Catalog;
use crate::fault::{ErrorPolicy, FaultInjector};
use crate::gop_cache::GopCache;
use crate::scheduler::{execute_scheduled, PartOutput};
use crate::trace::{ExecTrace, SegmentTrace};
use crate::ExecError;
use std::sync::Arc;
use std::time::{Duration, Instant};
use v2v_container::{StreamWriter, VideoStream};
use v2v_plan::PhysicalPlan;
use v2v_time::Rational;

/// Execution options.
#[derive(Clone, Debug)]
pub struct ExecOptions {
    /// Evaluate segments in parallel (the runtime half of the paper's
    /// optimization story). Disable for the ablation benches; when
    /// `false` the engine runs strictly sequentially, ignoring
    /// `num_threads`, `pipeline_depth`, and `runtime_split`.
    pub parallel: bool,
    /// Capacity of the shared decoded-GOP cache, in frames. Segments
    /// reading the same source ranges (grid cells, splice neighbours)
    /// decode each GOP once and share it. `0` disables the cache.
    ///
    /// The default must comfortably hold several *whole* GOPs or LRU
    /// eviction defeats reuse: a movie-style 10 s GOP at 24 fps is 240
    /// frames, and a 2×2 grid keeps four of those in flight plus one
    /// incoming, so anything under ~1700 thrashes on such sources (the default leaves
    /// headroom above that working set).
    pub gop_cache_frames: usize,
    /// Worker threads for the scheduler. `0` means auto: the
    /// `V2V_NUM_THREADS` environment variable if set, else the machine's
    /// available parallelism. Each engine gets its own scoped pool, so
    /// two engines in one process never fight over a global pool.
    pub num_threads: usize,
    /// Decode-ahead depth of the intra-segment pipeline, in output GOPs:
    /// the prefetch stage may run this many GOPs ahead of the encoder,
    /// and up to this many output GOPs are composed/encoded per parallel
    /// batch. `0` disables pipelining (render parts run the classic
    /// sequential decode → compose → encode loop).
    pub pipeline_depth: usize,
    /// Allow running renders to split at output-GOP boundaries when
    /// workers go idle. Splits are lossless (output GOPs are
    /// codec-independent) and replace the planner's static shard-size
    /// guess with load-driven balancing.
    pub runtime_split: bool,
    /// Deterministic fault injection hook: every cursor consults the
    /// injector before decoding a source packet. `None` (the default)
    /// costs one branch per decode; runs without an injector are
    /// byte-identical to builds without the hook.
    pub fault: Option<Arc<FaultInjector>>,
    /// Degraded-mode policy: what the scheduler does with a part that
    /// still fails after `max_retries` retries. The default aborts the
    /// run, which is the historical behavior.
    pub on_error: ErrorPolicy,
    /// Bounded per-part retries before `on_error` applies. A retry
    /// re-runs the failed range from its GOP-aligned start, so a
    /// transient fault recovers byte-identically.
    pub max_retries: u32,
    /// Persistent segment-cache context for this run: the shared
    /// [`RenderCache`](crate::RenderCache) plus the plan's per-segment
    /// keys. `None` (the default) disables fragment reuse; runs without
    /// it are byte-identical to builds without the hook. Ignored while
    /// a fault injector is active — injected faults must never leak
    /// into (or be masked by) persistent state.
    pub segment_cache: Option<Arc<crate::render_cache::SegmentCacheCtx>>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            parallel: true,
            gop_cache_frames: 4096,
            num_threads: 0,
            pipeline_depth: 2,
            runtime_split: true,
            fault: None,
            on_error: ErrorPolicy::default(),
            max_retries: 1,
            segment_cache: None,
        }
    }
}

impl ExecOptions {
    /// The worker count the scheduler will actually use: 1 when
    /// `parallel` is off, else `num_threads`, else `V2V_NUM_THREADS`,
    /// else the machine's available parallelism.
    pub fn effective_threads(&self) -> usize {
        if !self.parallel {
            return 1;
        }
        if self.num_threads > 0 {
            return self.num_threads;
        }
        if let Ok(v) = std::env::var("V2V_NUM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// Cost accounting for one execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ExecStats {
    /// Source/intermediate packets decoded.
    pub frames_decoded: u64,
    /// Frames pushed through an encoder.
    pub frames_encoded: u64,
    /// Packets spliced by stream copy.
    pub packets_copied: u64,
    /// Compressed bytes spliced by stream copy.
    pub bytes_copied: u64,
    /// Compressed bytes fed to decoders (the storage-read currency).
    pub bytes_decoded: u64,
    /// Compressed bytes produced by encoders.
    pub bytes_encoded: u64,
    /// Decoder keyframe entries (initial positioning and re-seeks).
    pub seeks: u64,
    /// Segments executed.
    pub segments: u64,
    /// GOP lookups served from the shared decoded-GOP cache. Attributed
    /// per cursor (exactly one cursor books each lookup), so per-segment
    /// values are deterministic under parallel execution.
    pub gop_cache_hits: u64,
    /// GOP lookups that had to decode.
    pub gop_cache_misses: u64,
    /// Times the scheduler split a running render to feed idle workers
    /// (run-level; load-dependent, zero under serial execution).
    #[serde(default)]
    pub splits: u64,
    /// Split-off tasks picked up by another worker (run-level).
    #[serde(default)]
    pub steals: u64,
    /// Faults the injector fired during the run (run-level; zero
    /// without an injector).
    #[serde(default)]
    pub faults_injected: u64,
    /// Part retries the scheduler spent recovering from failures.
    #[serde(default)]
    pub retries: u64,
    /// Failed parts dropped from the output under
    /// [`ErrorPolicy::SkipSegment`].
    #[serde(default)]
    pub parts_skipped: u64,
    /// Failed parts replaced by encoded black under
    /// [`ErrorPolicy::SubstituteBlack`].
    #[serde(default)]
    pub parts_substituted: u64,
    /// Output frames filled with encoded black.
    #[serde(default)]
    pub frames_substituted: u64,
    /// Persistent render-cache activity (zero when no cache is wired).
    #[serde(default)]
    pub cache: crate::render_cache::CacheStats,
}

impl ExecStats {
    /// Field-wise accumulation: counters add. Used by both the batch and
    /// streaming executors so the two cannot drift.
    pub fn merge(mut self, other: ExecStats) -> ExecStats {
        self.frames_decoded += other.frames_decoded;
        self.frames_encoded += other.frames_encoded;
        self.packets_copied += other.packets_copied;
        self.bytes_copied += other.bytes_copied;
        self.bytes_decoded += other.bytes_decoded;
        self.bytes_encoded += other.bytes_encoded;
        self.seeks += other.seeks;
        self.segments += other.segments;
        self.gop_cache_hits += other.gop_cache_hits;
        self.gop_cache_misses += other.gop_cache_misses;
        self.splits += other.splits;
        self.steals += other.steals;
        self.faults_injected += other.faults_injected;
        self.retries += other.retries;
        self.parts_skipped += other.parts_skipped;
        self.parts_substituted += other.parts_substituted;
        self.frames_substituted += other.frames_substituted;
        self.cache = self.cache.merge(other.cache);
        self
    }
}

/// Executes a physical plan against a catalog.
///
/// Returns the output stream, the accumulated stats, and the wall time.
/// Thin wrapper over [`execute_traced`] for callers that do not need the
/// per-segment trace.
pub fn execute(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    opts: &ExecOptions,
) -> Result<(VideoStream, ExecStats, Duration), ExecError> {
    let (out, trace, wall) = execute_traced(plan, catalog, opts)?;
    Ok((out, trace.totals, wall))
}

/// Executes a physical plan, profiling every segment.
///
/// Returns the output stream, the [`ExecTrace`] (per-segment stats and
/// wall times plus run totals), and the end-to-end wall time.
pub fn execute_traced(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    opts: &ExecOptions,
) -> Result<(VideoStream, ExecTrace, Duration), ExecError> {
    let started = Instant::now();
    let cache = GopCache::new(opts.gop_cache_frames);
    let mut writer = StreamWriter::new(plan.out_params, Rational::ZERO, plan.frame_dur);
    let mut trace = ExecTrace::default();
    let mut deliver = |part: PartOutput| -> Result<(), ExecError> {
        writer.push_copied(&part.packets)?;
        if let Some(fault) = &part.fault {
            trace.errors.push(fault.clone());
        }
        match trace.segments.last_mut() {
            // Continuation part of the segment we're already tracing
            // (parts of one segment arrive contiguously, in order).
            Some(last) if last.index == part.seg_index as u64 && part.stats.segments == 0 => {
                last.frames += part.count;
                last.stats = last.stats.merge(part.stats);
                last.stage = last.stage.merge(part.stage);
                last.wall_ns += part.wall_ns;
                last.parts += 1;
            }
            _ => {
                let seg = &plan.segments[part.seg_index];
                trace.segments.push(SegmentTrace {
                    index: part.seg_index as u64,
                    kind: seg.plan.kind_name().to_string(),
                    out_start: seg.out_start,
                    frames: part.count,
                    stats: part.stats,
                    wall_ns: part.wall_ns,
                    parts: 1,
                    stage: part.stage,
                });
            }
        }
        Ok(())
    };
    let evictions_before = opts
        .segment_cache
        .as_deref()
        .and_then(|sc| sc.cache.as_deref())
        .map(|c| c.evictions());
    let report = execute_scheduled(plan, catalog, opts, Some(&cache), &mut deliver)?;
    for seg in &trace.segments {
        trace.totals = trace.totals.merge(seg.stats);
    }
    trace.totals.splits = report.splits;
    trace.totals.steals = report.steals;
    if let (Some(c), Some(before)) = (
        opts.segment_cache
            .as_deref()
            .and_then(|sc| sc.cache.as_deref()),
        evictions_before,
    ) {
        // Evictions are a property of the shared cache, not any one
        // part; attribute the delta this run caused to the run totals.
        trace.totals.cache.evictions += c.evictions().saturating_sub(before);
    }
    if let Some(injector) = &opts.fault {
        // Run-level, from the injector itself: a fault that killed its
        // part never reaches the per-part stats roll-up.
        trace.totals.faults_injected = injector.injections();
    }
    let out = writer.finish()?;
    let wall = started.elapsed();
    trace.wall_ns = wall.as_nanos() as u64;
    Ok((out, trace, wall))
}

#[cfg(test)]
mod tests {
    use super::*;
    use v2v_codec::CodecParams;
    use v2v_frame::{marker, Frame, FrameType};
    use v2v_plan::{lower_spec, optimize, OptimizerConfig, SegPlan, Segment};
    use v2v_spec::builder::blur;
    use v2v_spec::{OutputSettings, SpecBuilder};
    use v2v_time::r;

    /// A lossless test stream whose frames carry index markers.
    fn marked_stream(n: usize, gop: u32) -> VideoStream {
        let ty = FrameType::gray8(64, 32);
        let params = CodecParams::new(ty, gop, 0);
        let mut w = StreamWriter::new(params, Rational::ZERO, r(1, 30));
        for i in 0..n {
            let mut f = Frame::black(ty);
            marker::embed(&mut f, i as u32);
            w.push_frame(&f).unwrap();
        }
        w.finish().unwrap()
    }

    fn output() -> OutputSettings {
        OutputSettings {
            frame_ty: FrameType::gray8(64, 32),
            frame_dur: r(1, 30),
            gop_size: 30,
            quantizer: 0,
        }
    }

    fn run(
        spec: &v2v_spec::Spec,
        catalog: &Catalog,
        cfg: &OptimizerConfig,
    ) -> (VideoStream, ExecStats) {
        let logical = lower_spec(spec).unwrap();
        let phys = optimize(&logical, &catalog.plan_context(), cfg).unwrap();
        let (out, stats, _) = execute(&phys, catalog, &ExecOptions::default()).unwrap();
        (out, stats)
    }

    #[test]
    fn clip_is_frame_exact_via_copy() {
        let mut catalog = Catalog::new();
        catalog.add_video("a", marked_stream(120, 30));
        // Clip [30/30, 90/30): starts on keyframe 30 → pure copy.
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .append_clip("a", r(1, 1), r(2, 1))
            .build();
        let (out, stats) = run(&spec, &catalog, &OptimizerConfig::default());
        assert_eq!(out.len(), 60);
        assert_eq!(stats.packets_copied, 60);
        assert_eq!(stats.frames_encoded, 0);
        let (frames, _) = out.decode_range(0, 60).unwrap();
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(marker::read(f), Some(30 + i as u32), "frame {i}");
        }
    }

    #[test]
    fn smart_cut_is_frame_exact() {
        let mut catalog = Catalog::new();
        catalog.add_video("a", marked_stream(120, 30));
        // Clip starting mid-GOP at frame 15.
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .append_clip("a", r(1, 2), r(2, 1))
            .build();
        let (out, stats) = run(&spec, &catalog, &OptimizerConfig::default());
        assert_eq!(out.len(), 60);
        assert!(stats.packets_copied >= 45, "middle copied");
        assert_eq!(stats.frames_encoded, 15, "head re-encoded");
        let (frames, _) = out.decode_range(0, 60).unwrap();
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(marker::read(f), Some(15 + i as u32), "frame {i}");
        }
    }

    #[test]
    fn optimized_equals_unsharded_render() {
        // A filtered clip rendered with and without sharding/parallelism
        // must produce identical frames (q=0).
        let mut catalog = Catalog::new();
        catalog.add_video("a", marked_stream(150, 30));
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .append_filtered("a", r(0, 1), r(4, 1), |e| blur(e, 1.0))
            .build();
        let (sharded, s1) = run(&spec, &catalog, &OptimizerConfig::default());
        let (plain, s2) = run(&spec, &catalog, &OptimizerConfig::fusion_only());
        assert!(s1.segments > s2.segments, "sharding must split segments");
        let (fa, _) = sharded.decode_range(0, sharded.len()).unwrap();
        let (fb, _) = plain.decode_range(0, plain.len()).unwrap();
        assert_eq!(fa.len(), fb.len());
        for (i, (a, b)) in fa.iter().zip(&fb).enumerate() {
            assert_eq!(a, b, "frame {i} differs between sharded and plain");
        }
    }

    #[test]
    fn splice_of_two_sources() {
        let mut catalog = Catalog::new();
        catalog.add_video("a", marked_stream(60, 30));
        catalog.add_video("b", marked_stream(60, 30));
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .video("b", "b.svc")
            .append_clip("a", r(0, 1), r(1, 1))
            .append_clip("b", r(1, 1), r(1, 1))
            .build();
        let (out, _) = run(&spec, &catalog, &OptimizerConfig::default());
        assert_eq!(out.len(), 60);
        let (frames, _) = out.decode_range(0, 60).unwrap();
        assert_eq!(marker::read(&frames[0]), Some(0));
        assert_eq!(marker::read(&frames[29]), Some(29));
        assert_eq!(marker::read(&frames[30]), Some(30)); // b's frame 30
        assert_eq!(marker::read(&frames[59]), Some(59));
    }

    #[test]
    fn missing_video_errors() {
        let catalog = Catalog::new();
        let plan = PhysicalPlan {
            segments: vec![Segment {
                out_start: 0,
                count: 1,
                plan: SegPlan::StreamCopy {
                    video: "ghost".into(),
                    src_from: 0,
                    src_to: 1,
                },
            }],
            out_params: CodecParams::new(FrameType::gray8(64, 32), 30, 0),
            frame_dur: r(1, 30),
            domain_start: Rational::ZERO,
            n_frames: 1,
            stats: Default::default(),
        };
        assert!(matches!(
            execute(&plan, &catalog, &ExecOptions::default()),
            Err(ExecError::UnknownVideo(_))
        ));
    }

    #[test]
    fn grid_query_shares_gops_through_cache() {
        // A 2×2 grid of four time-shifted views of one source: the four
        // cursors read overlapping GOPs, so all but the first lookup of
        // each GOP must come from the shared cache.
        use v2v_spec::builder::grid4;
        use v2v_spec::RenderExpr;
        let mut catalog = Catalog::new();
        catalog.add_video("a", marked_stream(120, 30));
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .append_with(r(1, 1), |_| {
                grid4(
                    RenderExpr::video("a"),
                    RenderExpr::video_shifted("a", r(1, 30)),
                    RenderExpr::video_shifted("a", r(2, 30)),
                    RenderExpr::video_shifted("a", r(3, 30)),
                )
            })
            .build();
        let logical = lower_spec(&spec).unwrap();
        let phys = optimize(
            &logical,
            &catalog.plan_context(),
            &OptimizerConfig::default(),
        )
        .unwrap();
        let (out, stats, _) = execute(&phys, &catalog, &ExecOptions::default()).unwrap();
        assert_eq!(out.len(), 30);
        assert!(
            stats.gop_cache_hits > 0,
            "grid inputs must share decoded GOPs: {stats:?}"
        );

        // Disabling the cache must not change the output.
        let (out_nc, stats_nc, _) = execute(
            &phys,
            &catalog,
            &ExecOptions {
                gop_cache_frames: 0,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(stats_nc.gop_cache_hits, 0);
        assert_eq!(stats_nc.gop_cache_misses, 0);
        let (fa, _) = out.decode_range(0, out.len()).unwrap();
        let (fb, _) = out_nc.decode_range(0, out_nc.len()).unwrap();
        assert_eq!(fa, fb, "cache on/off must be byte-identical");
    }

    #[test]
    fn serial_and_parallel_agree() {
        let mut catalog = Catalog::new();
        catalog.add_video("a", marked_stream(150, 30));
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .append_filtered("a", r(0, 1), r(4, 1), |e| blur(e, 0.8))
            .build();
        let logical = lower_spec(&spec).unwrap();
        let phys = optimize(
            &logical,
            &catalog.plan_context(),
            &OptimizerConfig::default(),
        )
        .unwrap();
        let (par, _, _) = execute(
            &phys,
            &catalog,
            &ExecOptions {
                parallel: true,
                ..Default::default()
            },
        )
        .unwrap();
        let (ser, _, _) = execute(
            &phys,
            &catalog,
            &ExecOptions {
                parallel: false,
                ..Default::default()
            },
        )
        .unwrap();
        let (fa, _) = par.decode_range(0, par.len()).unwrap();
        let (fb, _) = ser.decode_range(0, ser.len()).unwrap();
        assert_eq!(fa, fb);
    }
}
