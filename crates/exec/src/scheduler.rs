//! Cost-based segment scheduling with runtime work splitting.
//!
//! The paper's runtime story (§IV-A) is to "use the dependency graph to
//! execute operators in parallel"; this module is the engine behind
//! both executors' parallelism. It improves on plain
//! segment-at-a-time fan-out in three ways:
//!
//! 1. **Cost-ordered dispatch.** Each segment's cost is estimated from
//!    the physical plan (copy ≈ packets, render ≈ frames × program
//!    width, the same weights as [`v2v_plan::CostModel`]) and work is
//!    handed out longest-processing-time-first, the classic makespan
//!    heuristic: expensive renders start first so they never become the
//!    lonely tail of the run.
//! 2. **Runtime splitting.** When a worker goes idle and the queue is
//!    dry, a running render *splits at an output-GOP boundary*: the
//!    remaining range is halved and the far half is pushed back as a
//!    stolen task. Output GOPs are independent under the codec (intra
//!    frames reference nothing, inter frames chain only within their
//!    GOP, and a fresh [`Encoder`] at a GOP boundary reproduces
//!    identical bytes), so splits are lossless — this replaces the
//!    planner's static `shard_gops` guess with dynamic balancing while
//!    keeping every arm byte-identical.
//! 3. **Intra-part pipelining.** Within a render part, a decode-ahead
//!    prefetch thread pulls source frames through [`SourceCursor`] /
//!    the shared GOP cache into a bounded channel, frames are composed
//!    in parallel over a batch window, and independent output GOPs are
//!    encoded concurrently, their packet runs spliced in order — the
//!    runtime analogue of the planner's lossless shard re-concat.
//!
//! Parts are emitted to a `deliver` callback **in presentation order**
//! (a reorder buffer holds early finishers), so the batch executor can
//! splice directly into a [`StreamWriter`] and the streaming executor
//! can sink packets as soon as the head of the output is ready.
//!
//! [`StreamWriter`]: v2v_container::StreamWriter

use crate::apply::apply_program;
use crate::catalog::Catalog;
use crate::cursor::SourceCursor;
use crate::executor::{ExecOptions, ExecStats};
use crate::fault::{error_kind, ErrorPolicy, FaultAction, FaultInjector, SegmentFault};
use crate::flight::Claim;
use crate::gop_cache::GopCache;
use crate::render_cache::{CacheStats, CacheTier, SegmentCacheCtx};
use crate::trace::StageTimes;
use crate::ExecError;
use crossbeam::channel;
use rayon::ThreadPoolBuilder;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;
use v2v_codec::{Encoder, Packet};
use v2v_frame::ops::{conform, conform_shared};
use v2v_frame::{Frame, FrameType};
use v2v_plan::{CostModel, FrameProgram, InputClip, PhysicalPlan, SegPlan, Segment};
use v2v_time::Rational;

/// Scheduler-level counters for one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedReport {
    /// Times a running render gave away half of its remaining range.
    pub splits: u64,
    /// Split-off tasks that were picked up by another worker.
    pub steals: u64,
}

/// One contiguous run of output packets produced by a worker: a whole
/// segment, or a GOP-aligned part of one after a runtime split.
#[derive(Debug)]
pub struct PartOutput {
    /// Index of the segment in the physical plan.
    pub seg_index: usize,
    /// Absolute output frame index of the part's first packet.
    pub abs_start: u64,
    /// Output frames in this part.
    pub count: u64,
    /// The part's packets, keyframe-first (parts start on GOP
    /// boundaries).
    pub packets: Vec<Packet>,
    /// Cost counters. `segments` is 1 only on a segment's first part so
    /// per-segment merges stay exact.
    pub stats: ExecStats,
    /// Busy time per pipeline stage.
    pub stage: StageTimes,
    /// Part wall time in nanoseconds.
    pub wall_ns: u64,
    /// Set when this part failed and was recovered, skipped, or
    /// substituted under the run's [`ErrorPolicy`].
    pub fault: Option<SegmentFault>,
    /// Set when the worker already persisted this part's segment to the
    /// render cache (a single-flight owner stores before publishing),
    /// so the delivery-side store accumulator must not store it again.
    pub cache_stored: bool,
}

/// A schedulable unit: a segment-relative frame range of one segment.
struct Task {
    seg_index: usize,
    /// Segment-relative first frame (a multiple of the output GOP size).
    from: u64,
    /// Segment-relative end frame (exclusive).
    to: u64,
    /// Estimated cost in [`CostModel`] units.
    cost: f64,
    /// `true` if this task was split off a running part.
    stolen: bool,
    /// `true` once the task has been pushed back because its fragment
    /// key was in flight on another run — deferred at most once so the
    /// queue always drains.
    deferred: bool,
}

struct SchedState {
    /// Pending tasks sorted by ascending cost (pop from the back = LPT).
    queue: Vec<Task>,
    running: usize,
    idle: usize,
    shutdown: bool,
    splits: u64,
    steals: u64,
}

/// State shared between workers, split probes, and the driver.
struct Shared {
    state: Mutex<SchedState>,
    work: Condvar,
    /// Mirror of `state.idle`, readable without the lock (split probes
    /// run on the hot path; a stale read only delays or skips one
    /// split, never breaks correctness).
    idle_hint: AtomicUsize,
    /// Mirror of `state.queue.len()`.
    queued_hint: AtomicUsize,
}

impl Shared {
    fn new(queue: Vec<Task>) -> Shared {
        let queued = queue.len();
        Shared {
            state: Mutex::new(SchedState {
                queue,
                running: 0,
                idle: 0,
                shutdown: false,
                splits: 0,
                steals: 0,
            }),
            work: Condvar::new(),
            idle_hint: AtomicUsize::new(0),
            queued_hint: AtomicUsize::new(queued),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SchedState> {
        self.state.lock().expect("scheduler state poisoned")
    }

    fn shutdown(&self) {
        self.lock().shutdown = true;
        self.work.notify_all();
    }

    fn report(&self) -> SchedReport {
        let st = self.lock();
        SchedReport {
            splits: st.splits,
            steals: st.steals,
        }
    }
}

/// Everything a worker needs to execute parts of one segment.
struct PartCtx<'a> {
    plan: &'a PhysicalPlan,
    seg: &'a Segment,
    seg_index: usize,
    catalog: &'a Catalog,
    cache: Option<&'a GopCache>,
    fault: Option<&'a FaultInjector>,
    /// Persistent segment cache for this run (`None` disables reuse;
    /// always `None` while a fault injector is active).
    seg_cache: Option<&'a SegmentCacheCtx>,
}

/// A split probe carried into a render loop: checked at output-GOP
/// boundaries, it gives the far half of the remaining range away when
/// another worker is hungry.
struct SplitProbe<'a> {
    shared: &'a Shared,
    seg_index: usize,
    /// Estimated cost per output frame, for pricing the split-off task.
    per_frame_cost: f64,
    /// The end this part still owns: lowered on every split. Error
    /// recovery retries only `[from, committed_end)` — the far halves a
    /// part gave away before failing belong to other workers.
    committed_end: AtomicU64,
}

impl SplitProbe<'_> {
    /// The highest frame index this part is still responsible for.
    fn owned_end(&self) -> u64 {
        self.committed_end.load(Ordering::Acquire)
    }

    /// Possibly splits the range `[j, end)` at a GOP boundary. Returns
    /// the (possibly lowered) end. `j` must be GOP-aligned relative to
    /// the segment start.
    fn maybe_split(&self, j: u64, end: u64, gop: u64) -> u64 {
        if self.shared.idle_hint.load(Ordering::Relaxed) == 0
            || self.shared.queued_hint.load(Ordering::Relaxed) > 0
        {
            return end;
        }
        let remaining = end.saturating_sub(j);
        let ngops = remaining.div_ceil(gop);
        if ngops < 2 {
            return end;
        }
        // Keep the near half (rounded up), give the far half away.
        let split_at = j + ngops.div_ceil(2) * gop;
        debug_assert!(split_at > j && split_at < end);
        let mut st = self.shared.lock();
        if st.shutdown {
            return end;
        }
        let task = Task {
            seg_index: self.seg_index,
            from: split_at,
            to: end,
            cost: self.per_frame_cost * (end - split_at) as f64,
            stolen: true,
            deferred: false,
        };
        let pos = st.queue.partition_point(|t| t.cost <= task.cost);
        st.queue.insert(pos, task);
        st.splits += 1;
        self.committed_end.store(split_at, Ordering::Release);
        self.shared
            .queued_hint
            .store(st.queue.len(), Ordering::Relaxed);
        drop(st);
        self.shared.work.notify_one();
        split_at
    }
}

/// Estimates a segment's execution cost in [`CostModel`] units,
/// mirroring the executor's actual cost structure: a copy is a
/// per-packet constant, a render pays decode + program ops + encode per
/// output pixel.
pub fn segment_cost(plan: &PhysicalPlan, seg: &Segment) -> f64 {
    match &seg.plan {
        SegPlan::StreamCopy { .. } => seg.count as f64 * CostModel::default().copy_per_packet,
        SegPlan::Render { program, inputs } => {
            seg.count as f64 * render_frame_cost(plan, program, inputs)
        }
    }
}

/// Estimated cost of rendering one output frame of a program.
fn render_frame_cost(plan: &PhysicalPlan, program: &FrameProgram, inputs: &[InputClip]) -> f64 {
    let model = CostModel::default();
    let px = f64::from(plan.out_params.frame_ty.width) * f64::from(plan.out_params.frame_ty.height);
    px * (inputs.len() as f64 * model.decode_per_pixel
        + program.op_count().max(1) as f64 * model.op_per_pixel
        + model.encode_per_pixel)
}

/// Executes every segment of `plan`, invoking `deliver` with each part
/// in presentation order. With one effective worker this is a plain
/// in-order loop; otherwise a cost-ordered worker pool with runtime
/// splitting and (optionally) intra-part pipelining.
pub(crate) fn execute_scheduled(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    opts: &ExecOptions,
    cache: Option<&GopCache>,
    deliver: &mut dyn FnMut(PartOutput) -> Result<(), ExecError>,
) -> Result<SchedReport, ExecError> {
    let workers = opts.effective_threads();
    let fault = opts.fault.as_deref().filter(|f| !f.is_empty());
    // Segment reuse is disabled while faults are being injected: a
    // degraded (skipped/substituted) part must never be persisted, and a
    // cache hit would mask the injection the test asked for.
    let seg_cache = if fault.is_none() {
        opts.segment_cache.as_deref()
    } else {
        None
    };
    let mut store_accum: Option<StoreAccum> = None;
    let mut deliver = |part: PartOutput| -> Result<(), ExecError> {
        if let Some(sc) = seg_cache {
            accumulate_for_store(sc, plan, &mut store_accum, &part);
        }
        deliver(part)
    };
    if workers <= 1 {
        for (i, seg) in plan.segments.iter().enumerate() {
            let ctx = PartCtx {
                plan,
                seg,
                seg_index: i,
                catalog,
                cache,
                fault,
                seg_cache,
            };
            let part = match run_part(&ctx, 0, seg.count, None, 0, 1) {
                Ok(part) => part,
                Err(err) => recover_part(&ctx, opts, 0, seg.count, 0, 1, err)?,
            };
            deliver(part)?;
        }
        return Ok(SchedReport::default());
    }

    let total: u64 = plan.segments.iter().map(|s| s.count).sum();
    let mut tasks: Vec<Task> = plan
        .segments
        .iter()
        .enumerate()
        .filter(|(_, seg)| seg.count > 0)
        .map(|(i, seg)| Task {
            seg_index: i,
            from: 0,
            to: seg.count,
            cost: segment_cost(plan, seg),
            stolen: false,
            deferred: false,
        })
        .collect();
    // Ascending cost, ties broken so the back of the queue (popped
    // first) is the earliest segment — better for streaming delivery.
    tasks.sort_by(|a, b| {
        a.cost
            .total_cmp(&b.cost)
            .then(b.seg_index.cmp(&a.seg_index))
    });
    let shared = Shared::new(tasks);
    let pipeline_frames = opts
        .pipeline_depth
        .saturating_mul(plan.out_params.gop_size as usize);
    let (tx, rx) = channel::unbounded::<Result<PartOutput, ExecError>>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let shared = &shared;
            scope.spawn(move || {
                worker_loop(
                    plan,
                    catalog,
                    cache,
                    opts,
                    shared,
                    workers,
                    pipeline_frames,
                    &tx,
                )
            });
        }
        drop(tx);
        drive(&rx, &mut deliver, total, &shared)
    })
}

/// The ordered-delivery driver: buffers early-finishing parts and
/// releases them to `deliver` strictly by absolute output position.
fn drive(
    rx: &channel::Receiver<Result<PartOutput, ExecError>>,
    deliver: &mut dyn FnMut(PartOutput) -> Result<(), ExecError>,
    total: u64,
    shared: &Shared,
) -> Result<SchedReport, ExecError> {
    let mut buffered: BTreeMap<u64, PartOutput> = BTreeMap::new();
    let mut next_abs = 0u64;
    let mut result: Result<(), ExecError> = Ok(());
    'recv: while next_abs < total {
        let part = rx
            .recv()
            .expect("scheduler workers deliver every part or an error");
        match part {
            Ok(part) => {
                buffered.insert(part.abs_start, part);
                while let Some(ready) = buffered.remove(&next_abs) {
                    let count = ready.count;
                    if let Err(e) = deliver(ready) {
                        result = Err(e);
                        break 'recv;
                    }
                    next_abs += count;
                }
            }
            Err(e) => {
                result = Err(e);
                break 'recv;
            }
        }
    }
    shared.shutdown();
    result.map(|()| shared.report())
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    cache: Option<&GopCache>,
    opts: &ExecOptions,
    shared: &Shared,
    workers: usize,
    pipeline_frames: usize,
    tx: &channel::Sender<Result<PartOutput, ExecError>>,
) {
    let fault_active = opts.fault.as_deref().is_some_and(|f| !f.is_empty());
    let flight = if fault_active {
        None
    } else {
        opts.segment_cache
            .as_deref()
            .and_then(|sc| sc.flight.as_deref().map(|f| (sc, f)))
    };
    loop {
        let (task, running_now) = {
            let mut st = shared.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(t) = st.queue.pop() {
                    // Overlap-aware dispatch: a whole segment whose key
                    // is being rendered by another run right now would
                    // only block on its flight — push it behind the
                    // other pending work (once) and take something that
                    // makes progress. By the time it is re-popped the
                    // other run has usually published.
                    if let Some((sc, flight)) = flight {
                        if !t.deferred
                            && !st.queue.is_empty()
                            && t.from == 0
                            && t.to == plan.segments[t.seg_index].count
                        {
                            if let Some(key) = sc.key(t.seg_index) {
                                if flight.is_inflight(key) {
                                    let mut t = t;
                                    t.deferred = true;
                                    st.queue.insert(0, t);
                                    continue;
                                }
                            }
                        }
                    }
                    if t.stolen {
                        st.steals += 1;
                    }
                    st.running += 1;
                    shared.queued_hint.store(st.queue.len(), Ordering::Relaxed);
                    break (t, st.running);
                }
                if st.running == 0 {
                    st.shutdown = true;
                    drop(st);
                    shared.work.notify_all();
                    return;
                }
                st.idle += 1;
                shared.idle_hint.store(st.idle, Ordering::Relaxed);
                st = shared.work.wait(st).expect("scheduler state poisoned");
                st.idle -= 1;
                shared.idle_hint.store(st.idle, Ordering::Relaxed);
            }
        };
        let seg = &plan.segments[task.seg_index];
        let fault = opts.fault.as_deref().filter(|f| !f.is_empty());
        let ctx = PartCtx {
            plan,
            seg,
            seg_index: task.seg_index,
            catalog,
            cache,
            fault,
            seg_cache: if fault.is_none() {
                opts.segment_cache.as_deref()
            } else {
                None
            },
        };
        // A lone running part composes with the whole pool's width; with
        // many parts in flight each keeps roughly its fair share.
        let fanout = (workers / running_now.max(1)).max(1);
        let probe = opts.runtime_split.then(|| SplitProbe {
            shared,
            seg_index: task.seg_index,
            per_frame_cost: if task.to > task.from {
                task.cost / (task.to - task.from) as f64
            } else {
                0.0
            },
            committed_end: AtomicU64::new(task.to),
        });
        let res = run_part(
            &ctx,
            task.from,
            task.to,
            probe.as_ref(),
            pipeline_frames,
            fanout,
        );
        let res = match res {
            Ok(part) => Ok(part),
            Err(err) => {
                // Retry only the range this part still owns: far halves
                // given away by earlier splits run on other workers.
                let end = probe
                    .as_ref()
                    .map(|p| p.owned_end())
                    .unwrap_or(task.to)
                    .min(task.to);
                recover_part(&ctx, opts, task.from, end, pipeline_frames, fanout, err)
            }
        };
        let failed = res.is_err();
        {
            let mut st = shared.lock();
            st.running -= 1;
            if failed || (st.queue.is_empty() && st.running == 0) {
                st.shutdown = true;
            }
        }
        shared.work.notify_all();
        // A send failure only means the driver already bailed.
        let _ = tx.send(res);
        if failed {
            return;
        }
    }
}

/// True when a fragment can stand in for this whole segment: identical
/// frame count, grid, and codec parameters. Content-addressed keys make
/// a mismatch nearly impossible; the check keeps a hash collision or a
/// foreign cache directory from corrupting output.
fn fragment_matches(ctx: &PartCtx<'_>, frag: &v2v_container::Fragment) -> bool {
    frag.len() as u64 == ctx.seg.count
        && frag.frame_dur() == ctx.plan.frame_dur
        && frag.params().compatible_with(&ctx.plan.out_params)
}

/// A whole-segment part whose packets come from a reused fragment, with
/// the given cache attribution.
fn part_from_fragment(
    ctx: &PartCtx<'_>,
    frag: &v2v_container::Fragment,
    cache: CacheStats,
) -> PartOutput {
    PartOutput {
        seg_index: ctx.seg_index,
        abs_start: ctx.seg.out_start,
        count: ctx.seg.count,
        packets: frag.packets().to_vec(),
        stats: ExecStats {
            segments: 1,
            cache,
            ..Default::default()
        },
        stage: StageTimes::default(),
        wall_ns: 0,
        fault: None,
        cache_stored: false,
    }
}

/// Loads this segment's fragment from the memory/disk tiers, if
/// present and valid, returning the attributed part plus the fragment
/// (so a single-flight owner can publish it to waiters).
fn load_cached_part(
    ctx: &PartCtx<'_>,
    sc: &SegmentCacheCtx,
    key: u64,
) -> Option<(PartOutput, Arc<v2v_container::Fragment>)> {
    let cache = sc.cache.as_deref()?;
    let (frag, tier) = cache.load_segment_tiered(key)?;
    if !fragment_matches(ctx, &frag) {
        return None;
    }
    let stats = CacheStats {
        segment_hits: 1,
        bytes_reused: frag.byte_size(),
        mem_hits: u64::from(tier == CacheTier::Memory),
        ..Default::default()
    };
    Some((part_from_fragment(ctx, &frag, stats), frag))
}

/// Asks the remote dispatch hook for this segment's fragment. The
/// transport is responsible for digest verification; here the fragment
/// is additionally shape-checked against the plan, persisted to the
/// local cache (so the coordinator's own tiers warm up for the next
/// query), and attributed as a remote segment. `None` on any failure —
/// the caller falls back to an in-process render.
fn remote_part(
    ctx: &PartCtx<'_>,
    sc: &SegmentCacheCtx,
    key: u64,
) -> Option<(PartOutput, Arc<v2v_container::Fragment>)> {
    let remote = sc.remote.as_deref()?;
    let cost = segment_cost(ctx.plan, ctx.seg);
    let frag = remote.render_remote(ctx.seg_index, key, cost)?;
    if !fragment_matches(ctx, &frag) {
        return None;
    }
    let frag = Arc::new(frag);
    let stats = CacheStats {
        remote_segments: 1,
        bytes_reused: frag.byte_size(),
        ..Default::default()
    };
    let mut part = part_from_fragment(ctx, &frag, stats);
    if let Some(cache) = sc.cache.as_deref() {
        if cache.store_segment(key, &frag).is_ok() {
            part.cache_stored = true;
        }
    }
    Some((part, frag))
}

/// Renders one segment range, sharing work through the segment-cache
/// context when the range is a whole keyed segment.
///
/// Ordering invariant: the flight is claimed **before** the cache tiers
/// are consulted, and an owner stores to disk **before** publishing.
/// Any concurrent duplicate therefore either joins the flight or finds
/// the entry on disk — a segment is never rendered twice, under any
/// interleaving.
#[allow(clippy::too_many_arguments)]
fn render_segment(
    ctx: &PartCtx<'_>,
    program: &FrameProgram,
    inputs: &[InputClip],
    from: u64,
    to: u64,
    probe: Option<&SplitProbe<'_>>,
    pipeline_frames: usize,
    fanout: usize,
) -> Result<PartOutput, ExecError> {
    // Only whole segments are shared or cached: a split range would
    // interleave reused and freshly encoded packets inside one encoder
    // session.
    let whole = from == 0 && to == ctx.seg.count && ctx.seg.count > 0 && ctx.fault.is_none();
    let keyed = whole.then(|| {
        ctx.seg_cache
            .and_then(|sc| sc.key(ctx.seg_index).map(|k| (sc, k)))
    });
    let Some(Some((sc, key))) = keyed else {
        return render_fresh(
            ctx,
            program,
            inputs,
            from,
            to,
            probe,
            pipeline_frames,
            fanout,
        );
    };
    let Some(flight) = sc.flight.as_deref() else {
        // No concurrent sharing (one-shot `v2v run`): memory/disk tiers,
        // then remote dispatch, then a fresh render that may split under
        // the probe.
        if let Some((part, _)) = load_cached_part(ctx, sc, key) {
            return Ok(part);
        }
        if let Some((part, _)) = remote_part(ctx, sc, key) {
            return Ok(part);
        }
        return render_fresh(
            ctx,
            program,
            inputs,
            from,
            to,
            probe,
            pipeline_frames,
            fanout,
        );
    };
    match flight.claim(key) {
        Claim::Owner(guard) => {
            if let Some((part, frag)) = load_cached_part(ctx, sc, key) {
                guard.publish(frag);
                return Ok(part);
            }
            // Remote dispatch before a local render: the received
            // fragment is stored to disk first (inside `remote_part`),
            // so the store-before-publish invariant holds here too.
            if let Some((part, frag)) = remote_part(ctx, sc, key) {
                guard.publish(frag);
                return Ok(part);
            }
            // Render the whole segment without a split probe: waiters
            // need one coherent fragment, and giving half away would
            // leave them with nothing to subscribe to. The daemon's
            // concurrent jobs keep the other workers busy instead.
            let mut part = render_fresh(
                ctx,
                program,
                inputs,
                from,
                to,
                None,
                pipeline_frames,
                fanout,
            )?;
            match v2v_container::Fragment::new(
                ctx.plan.out_params,
                ctx.plan.frame_dur,
                part.packets.clone(),
            ) {
                Ok(frag) => {
                    let frag = Arc::new(frag);
                    // Disk before publish: a latecomer that misses the
                    // drained flight must find the entry on disk.
                    if let Some(cache) = sc.cache.as_deref() {
                        if cache.store_segment(key, &frag).is_ok() {
                            part.cache_stored = true;
                        }
                    }
                    guard.publish(frag);
                }
                // An unfragmentable part (shouldn't happen for a clean
                // whole render): drop the guard so waiters fall back.
                Err(_) => drop(guard),
            }
            Ok(part)
        }
        Claim::Shared(Some(frag)) if fragment_matches(ctx, &frag) => {
            let stats = CacheStats {
                shared_segment_hits: 1,
                bytes_reused: frag.byte_size(),
                ..Default::default()
            };
            Ok(part_from_fragment(ctx, &frag, stats))
        }
        // Owner failed, or (vanishingly unlikely) published a fragment
        // that does not fit this plan: render locally, probe allowed.
        Claim::Shared(_) => render_fresh(
            ctx,
            program,
            inputs,
            from,
            to,
            probe,
            pipeline_frames,
            fanout,
        ),
    }
}

/// Dispatches a fresh render of `[from, to)` to the pipelined or
/// sequential loop.
#[allow(clippy::too_many_arguments)]
fn render_fresh(
    ctx: &PartCtx<'_>,
    program: &FrameProgram,
    inputs: &[InputClip],
    from: u64,
    to: u64,
    probe: Option<&SplitProbe<'_>>,
    pipeline_frames: usize,
    fanout: usize,
) -> Result<PartOutput, ExecError> {
    if pipeline_frames > 0 {
        run_render_pipelined(
            ctx,
            program,
            inputs,
            from,
            to,
            probe,
            pipeline_frames,
            fanout,
        )
    } else {
        run_render_sequential(ctx, program, inputs, from, to, probe)
    }
}

/// In-flight state for persisting one segment's rendered packets: parts
/// of a segment reach the deliver callback contiguously and in order,
/// so a single accumulator suffices.
struct StoreAccum {
    seg_index: usize,
    key: u64,
    packets: Vec<Packet>,
    delivered: u64,
    clean: bool,
}

/// Feeds one delivered part into the segment-store accumulator and
/// flushes a finished segment to the persistent cache. Parts that were
/// themselves cache hits (local, shared, or already stored by a
/// single-flight owner), segments without a key (stream copies, UDF
/// programs), and segments touched by fault recovery are never stored.
fn accumulate_for_store(
    sc: &SegmentCacheCtx,
    plan: &PhysicalPlan,
    accum: &mut Option<StoreAccum>,
    part: &PartOutput,
) {
    if part.cache_stored
        || part.stats.cache.segment_hits > 0
        || part.stats.cache.shared_segment_hits > 0
    {
        return;
    }
    let Some(cache) = sc.cache.as_deref() else {
        return;
    };
    let Some(seg) = plan.segments.get(part.seg_index) else {
        return;
    };
    if seg.count == 0 {
        return;
    }
    let Some(key) = sc.key(part.seg_index) else {
        return;
    };
    if part.abs_start == seg.out_start {
        *accum = Some(StoreAccum {
            seg_index: part.seg_index,
            key,
            packets: Vec::with_capacity(seg.count as usize),
            delivered: 0,
            clean: true,
        });
    }
    let Some(acc) = accum.as_mut() else { return };
    if acc.seg_index != part.seg_index {
        return;
    }
    acc.clean &= part.fault.is_none();
    acc.delivered += part.count;
    if acc.clean {
        acc.packets.extend(part.packets.iter().cloned());
    }
    if acc.delivered >= seg.count {
        if acc.clean && acc.delivered == seg.count {
            if let Ok(frag) = v2v_container::Fragment::new(
                plan.out_params,
                plan.frame_dur,
                std::mem::take(&mut acc.packets),
            ) {
                // A failed store (disk full, permissions) only costs the
                // next run a re-render; never fail the query for it.
                let _ = cache.store_segment(acc.key, &frag);
            }
        }
        *accum = None;
    }
}

/// Executes the segment-relative range `[from, to)` of one segment.
/// Renders may end early (at a GOP boundary) if the probe split the
/// range; the returned part covers exactly what was produced.
fn run_part(
    ctx: &PartCtx<'_>,
    from: u64,
    to: u64,
    probe: Option<&SplitProbe<'_>>,
    pipeline_frames: usize,
    fanout: usize,
) -> Result<PartOutput, ExecError> {
    let started = Instant::now();
    let mut part = match &ctx.seg.plan {
        SegPlan::StreamCopy {
            video,
            src_from,
            src_to,
        } => {
            debug_assert!(from == 0 && to == ctx.seg.count, "copies are never split");
            let stream = ctx
                .catalog
                .video(video)
                .ok_or_else(|| ExecError::UnknownVideo(video.clone()))?;
            let packets =
                stream.copy_packet_range(*src_from as usize, *src_to as usize, Rational::ZERO)?;
            let stats = ExecStats {
                packets_copied: packets.len() as u64,
                bytes_copied: packets.iter().map(|p| p.size() as u64).sum(),
                segments: 1,
                ..Default::default()
            };
            PartOutput {
                seg_index: ctx.seg_index,
                abs_start: ctx.seg.out_start,
                count: ctx.seg.count,
                packets,
                stats,
                stage: StageTimes::default(),
                wall_ns: 0,
                fault: None,
                cache_stored: false,
            }
        }
        SegPlan::Render { program, inputs } => render_segment(
            ctx,
            program,
            inputs,
            from,
            to,
            probe,
            pipeline_frames,
            fanout,
        )?,
    };
    part.wall_ns = started.elapsed().as_nanos() as u64;
    Ok(part)
}

/// Applies the run's [`ErrorPolicy`] to a failed part: bounded retries
/// first (a transient fault recovers byte-identically, since the retry
/// re-runs the same GOP-aligned range), then skip or substitute.
/// `[from, to)` is the range the failed part still owned — far halves
/// already given away by splits belong to other workers. Under
/// [`ErrorPolicy::Abort`] (or when even the black-frame fallback fails)
/// the last error propagates.
fn recover_part(
    ctx: &PartCtx<'_>,
    opts: &ExecOptions,
    from: u64,
    to: u64,
    pipeline_frames: usize,
    fanout: usize,
    err: ExecError,
) -> Result<PartOutput, ExecError> {
    let mut retries = 0u64;
    let mut last_err = err;
    while retries < u64::from(opts.max_retries) {
        retries += 1;
        // Retry without a split probe: determinism over load balancing
        // on the recovery path.
        match run_part(ctx, from, to, None, pipeline_frames, fanout) {
            Ok(mut part) => {
                part.stats.retries = retries;
                part.fault = Some(SegmentFault {
                    seg_index: ctx.seg_index as u64,
                    abs_start: ctx.seg.out_start + from,
                    frames: to - from,
                    action: FaultAction::Recovered,
                    retries,
                    error: last_err.to_string(),
                    kind: error_kind(&last_err).to_string(),
                });
                return Ok(part);
            }
            Err(e) => last_err = e,
        }
    }
    let error_text = last_err.to_string();
    let kind_text = error_kind(&last_err).to_string();
    let fault = |action: FaultAction| SegmentFault {
        seg_index: ctx.seg_index as u64,
        abs_start: ctx.seg.out_start + from,
        frames: to - from,
        action,
        retries,
        error: error_text.clone(),
        kind: kind_text.clone(),
    };
    let mut stats = ExecStats {
        segments: u64::from(from == 0),
        retries,
        ..Default::default()
    };
    match opts.on_error {
        ErrorPolicy::Abort => Err(last_err),
        ErrorPolicy::SkipSegment => {
            stats.parts_skipped = 1;
            Ok(PartOutput {
                seg_index: ctx.seg_index,
                abs_start: ctx.seg.out_start + from,
                count: to - from,
                packets: Vec::new(),
                stats,
                stage: StageTimes::default(),
                wall_ns: 0,
                fault: Some(fault(FaultAction::Skipped)),
                cache_stored: false,
            })
        }
        ErrorPolicy::SubstituteBlack => {
            let packets = encode_black(ctx, from, to)?;
            stats.parts_substituted = 1;
            stats.frames_substituted = to - from;
            stats.frames_encoded = to - from;
            stats.bytes_encoded = packets.iter().map(|p| p.size() as u64).sum();
            Ok(PartOutput {
                seg_index: ctx.seg_index,
                abs_start: ctx.seg.out_start + from,
                count: to - from,
                packets,
                stats,
                stage: StageTimes::default(),
                wall_ns: 0,
                fault: Some(fault(FaultAction::SubstitutedBlack)),
                cache_stored: false,
            })
        }
    }
}

/// Encodes black frames over `[from, to)` on the output grid, one fresh
/// encoder per output GOP so the keyframe cadence matches a clean run
/// (`from` is GOP-aligned: parts start on GOP boundaries).
fn encode_black(ctx: &PartCtx<'_>, from: u64, to: u64) -> Result<Vec<Packet>, ExecError> {
    let gop = u64::from(ctx.plan.out_params.gop_size.max(1));
    let black = Frame::black(ctx.plan.out_params.frame_ty);
    let mut packets = Vec::with_capacity((to - from) as usize);
    let mut wj = from;
    while wj < to {
        let n = gop.min(to - wj) as usize;
        let frames: Vec<Frame> = (0..n).map(|_| black.clone()).collect();
        let (run, _) = encode_window(ctx, wj, &frames)?;
        packets.extend(run);
        wj += n as u64;
    }
    Ok(packets)
}

/// One forward cursor per input slot, each carrying its stream's
/// catalog identity and (optionally) the shared GOP cache.
///
/// A clip retargeted at a storage variant decodes from the variant
/// bitstream under a distinct cache identity (`name#kind`), so cached
/// GOPs never mix bitstreams. The variant choice is advisory: when the
/// variant is not attached here (a worker without the store, a variant
/// dropped since planning), the cursor falls back to the original —
/// decode-sufficient variants are pixel-identical, so output bytes do
/// not depend on which stream actually serves the read.
fn build_cursors<'a>(
    ctx: &PartCtx<'a>,
    inputs: &'a [InputClip],
) -> Result<Vec<(SourceCursor<'a>, &'a InputClip)>, ExecError> {
    inputs
        .iter()
        .map(|clip| {
            let resolved = if clip.variant.is_original() {
                None
            } else {
                ctx.catalog.variant(&clip.video, clip.variant)
            };
            let (stream, ident) = match resolved {
                Some(v) => (&*v.stream, format!("{}#{}", clip.video, clip.variant)),
                None => match ctx.catalog.video(&clip.video) {
                    Some(s) => (&**s, clip.video.clone()),
                    None => return Err(ExecError::UnknownVideo(clip.video.clone())),
                },
            };
            let mut cursor = SourceCursor::new(stream, ident);
            if let Some(cache) = ctx.cache {
                cursor = cursor.with_cache(cache);
            }
            if let Some(fault) = ctx.fault {
                cursor = cursor.with_fault(fault);
            }
            Ok((cursor, clip))
        })
        .collect()
}

/// Reads each input's frame for output instant `t`, conformed to the
/// output frame type.
fn gather_inputs(
    cursors: &mut [(SourceCursor<'_>, &InputClip)],
    t: Rational,
    out_ty: FrameType,
) -> Result<Vec<Arc<Frame>>, ExecError> {
    let mut frames = Vec::with_capacity(cursors.len());
    for (cursor, clip) in cursors {
        let src_t = clip.time.apply(t);
        let idx = cursor
            .stream()
            .index_of(src_t)
            .ok_or_else(|| ExecError::MissingFrame {
                video: clip.video.clone(),
                at: src_t,
            })?;
        let frame = cursor.frame_at(idx as u64)?;
        frames.push(conform_shared(&frame, out_ty));
    }
    Ok(frames)
}

fn collect_cursor_stats(cursors: &[(SourceCursor<'_>, &InputClip)], stats: &mut ExecStats) {
    for (c, _) in cursors {
        stats.frames_decoded += c.frames_decoded;
        stats.bytes_decoded += c.bytes_decoded;
        stats.seeks += c.seeks;
        stats.gop_cache_hits += c.gop_cache_hits;
        stats.gop_cache_misses += c.gop_cache_misses;
    }
}

fn elapsed_ns(since: Instant) -> u64 {
    since.elapsed().as_nanos() as u64
}

/// The classic decode → compose → encode loop over `[from, to)`, with
/// split probes at output-GOP boundaries.
fn run_render_sequential(
    ctx: &PartCtx<'_>,
    program: &FrameProgram,
    inputs: &[InputClip],
    from: u64,
    to: u64,
    probe: Option<&SplitProbe<'_>>,
) -> Result<PartOutput, ExecError> {
    let gop = u64::from(ctx.plan.out_params.gop_size);
    let out_ty = ctx.plan.out_params.frame_ty;
    let mut cursors = build_cursors(ctx, inputs)?;
    let mut encoder = Encoder::new(ctx.plan.out_params);
    let mut stats = ExecStats::default();
    let mut stage = StageTimes::default();
    let mut end = to;
    let mut packets = Vec::with_capacity((end - from) as usize);
    let mut j = from;
    while j < end {
        if j % gop == 0 {
            if let Some(p) = probe {
                end = p.maybe_split(j, end, gop);
                if j >= end {
                    break;
                }
            }
        }
        let t0 = Instant::now();
        let t = ctx.plan.instant_of(ctx.seg.out_start + j);
        let frames = gather_inputs(&mut cursors, t, out_ty)?;
        let t1 = Instant::now();
        let out = apply_program(program, t, &frames, ctx.catalog.arrays(), ctx.catalog)?;
        let out = conform(&out, out_ty);
        let t2 = Instant::now();
        let pts = ctx.plan.frame_dur * Rational::from_int(j as i64);
        let pkt = encoder.encode(&out, pts)?;
        stage.decode_ns += (t1 - t0).as_nanos() as u64;
        stage.compose_ns += (t2 - t1).as_nanos() as u64;
        stage.encode_ns += elapsed_ns(t2);
        stats.frames_encoded += 1;
        stats.bytes_encoded += pkt.size() as u64;
        packets.push(pkt);
        j += 1;
    }
    collect_cursor_stats(&cursors, &mut stats);
    stats.segments = u64::from(from == 0);
    Ok(PartOutput {
        seg_index: ctx.seg_index,
        abs_start: ctx.seg.out_start + from,
        count: j - from,
        packets,
        stats,
        stage,
        wall_ns: 0,
        fault: None,
        cache_stored: false,
    })
}

/// The pipelined render: a prefetch thread decodes ahead through the
/// cursors into a bounded channel while this thread composes batches in
/// parallel and encodes independent output GOPs concurrently.
#[allow(clippy::too_many_arguments)]
fn run_render_pipelined(
    ctx: &PartCtx<'_>,
    program: &FrameProgram,
    inputs: &[InputClip],
    from: u64,
    to: u64,
    probe: Option<&SplitProbe<'_>>,
    pipeline_frames: usize,
    fanout: usize,
) -> Result<PartOutput, ExecError> {
    let gop = u64::from(ctx.plan.out_params.gop_size);
    let out_ty = ctx.plan.out_params.frame_ty;
    debug_assert!(pipeline_frames as u64 % gop == 0, "depth is whole GOPs");
    // Lowered on split so the prefetcher stops decoding the given-away
    // range as soon as it next checks.
    let end_ctrl = AtomicU64::new(to);
    let (tx, rx) = channel::bounded::<(u64, Rational, Vec<Arc<Frame>>)>(pipeline_frames.max(1));
    let pool = ThreadPoolBuilder::new()
        .num_threads(fanout)
        .build()
        .expect("compose pool");

    std::thread::scope(|scope| {
        let end_ctrl = &end_ctrl;
        let prefetch = scope.spawn(move || -> Result<(ExecStats, u64), ExecError> {
            let mut cursors = build_cursors(ctx, inputs)?;
            let mut decode_ns = 0u64;
            let mut j = from;
            while j < end_ctrl.load(Ordering::Acquire) {
                let t0 = Instant::now();
                let t = ctx.plan.instant_of(ctx.seg.out_start + j);
                let frames = gather_inputs(&mut cursors, t, out_ty)?;
                decode_ns += elapsed_ns(t0);
                if tx.send((j, t, frames)).is_err() {
                    break; // consumer finished early (split or error)
                }
                j += 1;
            }
            let mut stats = ExecStats::default();
            collect_cursor_stats(&cursors, &mut stats);
            Ok((stats, decode_ns))
        });

        // Consume: batches of up to `pipeline_frames` frames, composed in
        // parallel, then encoded one GOP per lane. `Err(None)` marks a
        // starved channel (the prefetcher died; its join has the cause).
        let consumed = (|| -> Result<_, Option<ExecError>> {
            let mut end = to;
            let mut packets = Vec::with_capacity((end - from) as usize);
            let mut stats = ExecStats::default();
            let mut stage = StageTimes::default();
            let mut j = from;
            while j < end {
                if let Some(p) = probe {
                    end = p.maybe_split(j, end, gop);
                    end_ctrl.store(end, Ordering::Release);
                    if j >= end {
                        break;
                    }
                }
                let batch_end = end.min(j + pipeline_frames as u64);
                let mut batch: Vec<(u64, Rational, Vec<Arc<Frame>>)> =
                    Vec::with_capacity((batch_end - j) as usize);
                while j + (batch.len() as u64) < batch_end {
                    let item = rx.recv().map_err(|_| None)?;
                    debug_assert_eq!(item.0, j + batch.len() as u64, "frames arrive in order");
                    batch.push(item);
                }
                let t1 = Instant::now();
                let composed: Vec<Frame> = pool
                    .install(|| {
                        use rayon::prelude::*;
                        batch
                            .par_iter()
                            .map(|(_, t, frames)| {
                                apply_program(
                                    program,
                                    *t,
                                    frames,
                                    ctx.catalog.arrays(),
                                    ctx.catalog,
                                )
                                .map(|f| conform(&f, out_ty))
                            })
                            .collect::<Result<Vec<Frame>, ExecError>>()
                    })
                    .map_err(Some)?;
                let t2 = Instant::now();
                // Output GOPs are codec-independent: encode them in
                // parallel with fresh encoders, splice runs in order.
                let windows: Vec<(u64, &[Frame])> = composed
                    .chunks(gop as usize)
                    .enumerate()
                    .map(|(w, frames)| (j + (w as u64) * gop, frames))
                    .collect();
                let runs: Vec<(Vec<Packet>, u64)> = pool
                    .install(|| {
                        use rayon::prelude::*;
                        windows
                            .par_iter()
                            .map(|(wj, frames)| encode_window(ctx, *wj, frames))
                            .collect::<Result<Vec<_>, ExecError>>()
                    })
                    .map_err(Some)?;
                stage.compose_ns += (t2 - t1).as_nanos() as u64;
                stage.encode_ns += elapsed_ns(t2);
                for (run, bytes) in runs {
                    stats.frames_encoded += run.len() as u64;
                    stats.bytes_encoded += bytes;
                    packets.extend(run);
                }
                j = batch_end;
            }
            Ok((packets, stats, stage, j))
        })();
        drop(rx); // unblock a prefetcher stuck on a full channel
        let prefetched = prefetch.join().expect("prefetch thread panicked");

        match (consumed, prefetched) {
            (Ok((packets, mut stats, mut stage, end)), Ok((dec_stats, decode_ns))) => {
                stats = stats.merge(dec_stats);
                stats.segments = u64::from(from == 0);
                stage.decode_ns += decode_ns;
                Ok(PartOutput {
                    seg_index: ctx.seg_index,
                    abs_start: ctx.seg.out_start + from,
                    count: end - from,
                    packets,
                    stats,
                    stage,
                    wall_ns: 0,
                    fault: None,
                    cache_stored: false,
                })
            }
            (_, Err(e)) => Err(e),
            (Err(Some(e)), Ok(_)) => Err(e),
            (Err(None), Ok(_)) => unreachable!("prefetch finished but the pipeline starved"),
        }
    })
}

/// Encodes one output GOP with a fresh encoder. `wj` is the window's
/// segment-relative first frame (a GOP multiple, so the fresh encoder's
/// keyframe cadence matches an unsplit run exactly).
fn encode_window(
    ctx: &PartCtx<'_>,
    wj: u64,
    frames: &[Frame],
) -> Result<(Vec<Packet>, u64), ExecError> {
    let mut encoder = Encoder::new(ctx.plan.out_params);
    let mut packets = Vec::with_capacity(frames.len());
    let mut bytes = 0u64;
    for (k, frame) in frames.iter().enumerate() {
        let pts = ctx.plan.frame_dur * Rational::from_int((wj + k as u64) as i64);
        let pkt = encoder.encode(frame, pts)?;
        bytes += pkt.size() as u64;
        packets.push(pkt);
    }
    Ok((packets, bytes))
}
