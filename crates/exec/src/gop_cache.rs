//! A shared cache of decoded GOPs.
//!
//! Grid and splice plans read the *same* source ranges from several
//! render segments: a 2×2 grid decodes each input once per cell, and
//! parallel segments of one clip re-roll the boundary GOPs. The cache
//! memoizes whole decoded GOPs behind [`Arc`], keyed by
//! `(video, keyframe index)`, so concurrent [`SourceCursor`]s decode each
//! GOP once and share the frames without copying.
//!
//! [`SourceCursor`]: crate::SourceCursor

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use v2v_frame::Frame;

/// One decoded GOP: frames in presentation order starting at the
/// keyframe, each shared.
pub type GopFrames = Arc<Vec<Arc<Frame>>>;

struct Entry {
    frames: GopFrames,
    /// Last-touch stamp for LRU eviction.
    stamp: u64,
}

struct Inner {
    map: HashMap<(String, u64), Entry>,
    /// Keys currently being decoded by some cursor; other requesters of
    /// the same GOP block on [`GopCache::decoded`] instead of decoding a
    /// duplicate.
    in_flight: HashSet<(String, u64)>,
    total_frames: usize,
    next_stamp: u64,
}

/// A thread-safe LRU cache of decoded GOPs, bounded by total frame count.
///
/// A capacity of `0` disables the cache (cursors fall back to private
/// sequential decoding).
///
/// [`get_or_insert_with`](GopCache::get_or_insert_with) gives exactly-once
/// decode semantics under concurrency: the first requester of a GOP
/// decodes it (a miss), every concurrent or later requester waits for /
/// reuses that result (a hit). This is what makes per-cursor hit/miss
/// accounting deterministic.
pub struct GopCache {
    inner: Mutex<Inner>,
    /// Signalled whenever an in-flight decode completes (or fails).
    decoded: Condvar,
    capacity_frames: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for GopCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GopCache")
            .field("capacity_frames", &self.capacity_frames)
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl GopCache {
    /// Locks the cache state, recovering from poisoning: the cache holds
    /// only memoized data (no invariants span an unwind), so a panic in
    /// some other holder must not cascade into every later lookup.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// A cache holding at most `capacity_frames` decoded frames.
    pub fn new(capacity_frames: usize) -> GopCache {
        GopCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                in_flight: HashSet::new(),
                total_frames: 0,
                next_stamp: 0,
            }),
            decoded: Condvar::new(),
            capacity_frames,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Whether the cache can hold anything at all.
    pub fn enabled(&self) -> bool {
        self.capacity_frames > 0
    }

    /// Looks up the GOP starting at keyframe index `gop` of `video`,
    /// refreshing its LRU stamp. Counts a hit or miss.
    pub fn get(&self, video: &str, gop: u64) -> Option<GopFrames> {
        let mut inner = self.lock();
        inner.next_stamp += 1;
        let stamp = inner.next_stamp;
        match inner.map.get_mut(&(video.to_owned(), gop)) {
            Some(e) => {
                e.stamp = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.frames.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a decoded GOP, evicting least-recently-used entries while
    /// the total frame count exceeds capacity (the new entry itself is
    /// never evicted by its own insertion).
    pub fn insert(&self, video: &str, gop: u64, frames: GopFrames) {
        let mut inner = self.lock();
        self.insert_locked(&mut inner, (video.to_owned(), gop), frames);
    }

    fn insert_locked(&self, inner: &mut Inner, key: (String, u64), frames: GopFrames) {
        inner.next_stamp += 1;
        let stamp = inner.next_stamp;
        let added = frames.len();
        if let Some(old) = inner.map.insert(key.clone(), Entry { frames, stamp }) {
            inner.total_frames -= old.frames.len();
        }
        inner.total_frames += added;
        while inner.total_frames > self.capacity_frames && inner.map.len() > 1 {
            let victim = inner
                .map
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
                .expect("more than one entry");
            let evicted = inner.map.remove(&victim).expect("victim present");
            inner.total_frames -= evicted.frames.len();
        }
    }

    /// Serves the GOP at keyframe `gop` of `video`, decoding it at most
    /// once process-wide: the first requester runs `decode` (counted as a
    /// miss), concurrent requesters of the same key block until that
    /// decode lands and then share it (counted as hits).
    ///
    /// Returns the frames plus `was_hit` so callers can attribute the
    /// hit/miss to themselves deterministically — the caller that paid
    /// for the decode sees `false`, everyone else `true`. A failed
    /// decode releases the key so a later requester can retry.
    pub fn get_or_insert_with<E>(
        &self,
        video: &str,
        gop: u64,
        decode: impl FnOnce() -> Result<GopFrames, E>,
    ) -> Result<(GopFrames, bool), E> {
        let key = (video.to_owned(), gop);
        let mut inner = self.lock();
        loop {
            inner.next_stamp += 1;
            let stamp = inner.next_stamp;
            if let Some(e) = inner.map.get_mut(&key) {
                e.stamp = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((e.frames.clone(), true));
            }
            if !inner.in_flight.contains(&key) {
                break;
            }
            inner = self
                .decoded
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
        inner.in_flight.insert(key.clone());
        self.misses.fetch_add(1, Ordering::Relaxed);
        drop(inner);
        let result = decode();
        let mut inner = self.lock();
        inner.in_flight.remove(&key);
        match result {
            Ok(frames) => {
                self.insert_locked(&mut inner, key, frames.clone());
                drop(inner);
                self.decoded.notify_all();
                Ok((frames, false))
            }
            Err(e) => {
                drop(inner);
                self.decoded.notify_all();
                Err(e)
            }
        }
    }

    /// GOP lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// GOP lookups that required a decode.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Decoded frames currently held.
    pub fn frames_held(&self) -> usize {
        self.lock().total_frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v2v_frame::FrameType;

    fn gop(n: usize) -> GopFrames {
        Arc::new(
            (0..n)
                .map(|_| Arc::new(Frame::black(FrameType::gray8(8, 8))))
                .collect(),
        )
    }

    #[test]
    fn hit_and_miss_counting() {
        let c = GopCache::new(100);
        assert!(c.get("a", 0).is_none());
        c.insert("a", 0, gop(4));
        assert!(c.get("a", 0).is_some());
        assert!(c.get("a", 4).is_none());
        assert!(c.get("b", 0).is_none());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 3);
    }

    #[test]
    fn lru_eviction_bounded_by_frames() {
        let c = GopCache::new(10);
        c.insert("v", 0, gop(4));
        c.insert("v", 4, gop(4));
        c.insert("v", 8, gop(4)); // 12 frames > 10 → evict LRU ("v", 0)
        assert!(c.frames_held() <= 10);
        assert!(c.get("v", 0).is_none(), "oldest GOP must be evicted");
        assert!(c.get("v", 8).is_some());
    }

    #[test]
    fn touch_refreshes_lru_order() {
        let c = GopCache::new(10);
        c.insert("v", 0, gop(4));
        c.insert("v", 4, gop(4));
        assert!(c.get("v", 0).is_some()); // refresh GOP 0
        c.insert("v", 8, gop(4)); // now GOP 4 is the LRU victim
        assert!(c.get("v", 0).is_some());
        assert!(c.get("v", 4).is_none());
    }

    #[test]
    fn oversized_gop_still_usable() {
        // A single GOP larger than capacity is kept (the cursor needs it)
        // but evicted as soon as a second entry lands.
        let c = GopCache::new(2);
        c.insert("v", 0, gop(5));
        assert!(c.get("v", 0).is_some());
        c.insert("v", 5, gop(5));
        assert!(c.get("v", 0).is_none());
    }

    #[test]
    fn get_or_insert_decodes_exactly_once_under_contention() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let c = GopCache::new(1000);
        let decodes = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let (frames, _) = c
                        .get_or_insert_with("v", 0, || {
                            decodes.fetch_add(1, Ordering::SeqCst);
                            // Widen the race window so waiters really queue.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            Ok::<_, ()>(gop(4))
                        })
                        .unwrap();
                    assert_eq!(frames.len(), 4);
                });
            }
        });
        assert_eq!(
            decodes.load(Ordering::SeqCst),
            1,
            "one decode for 8 readers"
        );
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 7);
    }

    #[test]
    fn failed_decode_releases_the_key() {
        let c = GopCache::new(100);
        let err: Result<_, &str> = c.get_or_insert_with("v", 0, || Err("decoder broke"));
        assert!(err.is_err());
        // The key must not stay marked in-flight: a retry decodes anew.
        let (frames, was_hit) = c
            .get_or_insert_with("v", 0, || Ok::<_, &str>(gop(2)))
            .unwrap();
        assert_eq!(frames.len(), 2);
        assert!(!was_hit);
    }

    #[test]
    fn was_hit_attributes_the_decode() {
        let c = GopCache::new(100);
        let (_, first) = c
            .get_or_insert_with("v", 0, || Ok::<_, ()>(gop(3)))
            .unwrap();
        let (_, second) = c
            .get_or_insert_with("v", 0, || -> Result<_, ()> { panic!("must not re-decode") })
            .unwrap();
        assert!(!first, "first requester pays for the decode");
        assert!(second, "second requester hits");
    }

    #[test]
    fn zero_capacity_is_disabled() {
        let c = GopCache::new(0);
        assert!(!c.enabled());
        assert!(GopCache::new(1).enabled());
    }
}
