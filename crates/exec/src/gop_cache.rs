//! A shared cache of decoded GOPs.
//!
//! Grid and splice plans read the *same* source ranges from several
//! render segments: a 2×2 grid decodes each input once per cell, and
//! parallel segments of one clip re-roll the boundary GOPs. The cache
//! memoizes whole decoded GOPs behind [`Arc`], keyed by
//! `(video, keyframe index)`, so concurrent [`SourceCursor`]s decode each
//! GOP once and share the frames without copying.
//!
//! [`SourceCursor`]: crate::SourceCursor

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use v2v_frame::Frame;

/// One decoded GOP: frames in presentation order starting at the
/// keyframe, each shared.
pub type GopFrames = Arc<Vec<Arc<Frame>>>;

struct Entry {
    frames: GopFrames,
    /// Last-touch stamp for LRU eviction.
    stamp: u64,
}

struct Inner {
    map: HashMap<(String, u64), Entry>,
    total_frames: usize,
    next_stamp: u64,
}

/// A thread-safe LRU cache of decoded GOPs, bounded by total frame count.
///
/// A capacity of `0` disables the cache (cursors fall back to private
/// sequential decoding).
pub struct GopCache {
    inner: Mutex<Inner>,
    capacity_frames: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for GopCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GopCache")
            .field("capacity_frames", &self.capacity_frames)
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl GopCache {
    /// A cache holding at most `capacity_frames` decoded frames.
    pub fn new(capacity_frames: usize) -> GopCache {
        GopCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                total_frames: 0,
                next_stamp: 0,
            }),
            capacity_frames,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Whether the cache can hold anything at all.
    pub fn enabled(&self) -> bool {
        self.capacity_frames > 0
    }

    /// Looks up the GOP starting at keyframe index `gop` of `video`,
    /// refreshing its LRU stamp. Counts a hit or miss.
    pub fn get(&self, video: &str, gop: u64) -> Option<GopFrames> {
        let mut inner = self.inner.lock().expect("gop cache poisoned");
        inner.next_stamp += 1;
        let stamp = inner.next_stamp;
        match inner.map.get_mut(&(video.to_owned(), gop)) {
            Some(e) => {
                e.stamp = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.frames.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a decoded GOP, evicting least-recently-used entries while
    /// the total frame count exceeds capacity (the new entry itself is
    /// never evicted by its own insertion).
    pub fn insert(&self, video: &str, gop: u64, frames: GopFrames) {
        let mut inner = self.inner.lock().expect("gop cache poisoned");
        inner.next_stamp += 1;
        let stamp = inner.next_stamp;
        let key = (video.to_owned(), gop);
        let added = frames.len();
        if let Some(old) = inner.map.insert(key.clone(), Entry { frames, stamp }) {
            inner.total_frames -= old.frames.len();
        }
        inner.total_frames += added;
        while inner.total_frames > self.capacity_frames && inner.map.len() > 1 {
            let victim = inner
                .map
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
                .expect("more than one entry");
            let evicted = inner.map.remove(&victim).expect("victim present");
            inner.total_frames -= evicted.frames.len();
        }
    }

    /// GOP lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// GOP lookups that required a decode.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Decoded frames currently held.
    pub fn frames_held(&self) -> usize {
        self.inner.lock().expect("gop cache poisoned").total_frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v2v_frame::FrameType;

    fn gop(n: usize) -> GopFrames {
        Arc::new(
            (0..n)
                .map(|_| Arc::new(Frame::black(FrameType::gray8(8, 8))))
                .collect(),
        )
    }

    #[test]
    fn hit_and_miss_counting() {
        let c = GopCache::new(100);
        assert!(c.get("a", 0).is_none());
        c.insert("a", 0, gop(4));
        assert!(c.get("a", 0).is_some());
        assert!(c.get("a", 4).is_none());
        assert!(c.get("b", 0).is_none());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 3);
    }

    #[test]
    fn lru_eviction_bounded_by_frames() {
        let c = GopCache::new(10);
        c.insert("v", 0, gop(4));
        c.insert("v", 4, gop(4));
        c.insert("v", 8, gop(4)); // 12 frames > 10 → evict LRU ("v", 0)
        assert!(c.frames_held() <= 10);
        assert!(c.get("v", 0).is_none(), "oldest GOP must be evicted");
        assert!(c.get("v", 8).is_some());
    }

    #[test]
    fn touch_refreshes_lru_order() {
        let c = GopCache::new(10);
        c.insert("v", 0, gop(4));
        c.insert("v", 4, gop(4));
        assert!(c.get("v", 0).is_some()); // refresh GOP 0
        c.insert("v", 8, gop(4)); // now GOP 4 is the LRU victim
        assert!(c.get("v", 0).is_some());
        assert!(c.get("v", 4).is_none());
    }

    #[test]
    fn oversized_gop_still_usable() {
        // A single GOP larger than capacity is kept (the cursor needs it)
        // but evicted as soon as a second entry lands.
        let c = GopCache::new(2);
        c.insert("v", 0, gop(5));
        assert!(c.get("v", 0).is_some());
        c.insert("v", 5, gop(5));
        assert!(c.get("v", 0).is_none());
    }

    #[test]
    fn zero_capacity_is_disabled() {
        let c = GopCache::new(0);
        assert!(!c.enabled());
        assert!(GopCache::new(1).enabled());
    }
}
