//! Normalized `i64/i64` rational numbers with exact arithmetic.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};
use std::str::FromStr;

/// Errors produced by rational arithmetic.
#[derive(Debug, Clone, PartialEq, Eq, thiserror::Error)]
pub enum RationalError {
    /// A denominator of zero was supplied or produced.
    #[error("rational with zero denominator")]
    ZeroDenominator,
    /// The result does not fit in `i64/i64` after normalization.
    #[error("rational arithmetic overflow")]
    Overflow,
}

/// Error from parsing a rational out of a string.
#[derive(Debug, Clone, PartialEq, Eq, thiserror::Error)]
pub enum ParseRationalError {
    /// The numerator or denominator was not an integer.
    #[error("invalid integer component in rational literal: {0}")]
    InvalidInt(String),
    /// The denominator was zero.
    #[error("rational literal with zero denominator")]
    ZeroDenominator,
}

/// An exact rational number, always stored normalized: `den > 0` and
/// `gcd(|num|, den) == 1`.
///
/// `Rational` is the timestamp type throughout V2V. All arithmetic is exact;
/// intermediate products are computed in `i128` and arithmetic panics on the
/// (astronomically unlikely for timestamps) case of a post-normalization
/// overflow — use the `checked_*` variants where untrusted inputs flow in.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(try_from = "RationalRepr", into = "RationalRepr")]
pub struct Rational {
    num: i64,
    den: i64,
}

/// Serde wire representation: `[num, den]`.
#[derive(Serialize, Deserialize)]
struct RationalRepr(i64, i64);

impl TryFrom<RationalRepr> for Rational {
    type Error = RationalError;
    fn try_from(r: RationalRepr) -> Result<Self, Self::Error> {
        Rational::checked_new(r.0, r.1)
    }
}

impl From<Rational> for RationalRepr {
    fn from(r: Rational) -> Self {
        RationalRepr(r.num, r.den)
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    /// Zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// One.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates a rational `num/den`, normalizing sign and common factors.
    ///
    /// # Panics
    /// Panics if `den == 0` or normalization overflows (`num == i64::MIN`
    /// with `den == -1`-style edge cases).
    pub fn new(num: i64, den: i64) -> Rational {
        Self::checked_new(num, den).expect("invalid rational")
    }

    /// Creates a rational, returning an error on a zero denominator or
    /// overflow during normalization.
    pub fn checked_new(num: i64, den: i64) -> Result<Rational, RationalError> {
        if den == 0 {
            return Err(RationalError::ZeroDenominator);
        }
        let mut n = num as i128;
        let mut d = den as i128;
        if d < 0 {
            n = -n;
            d = -d;
        }
        let g = gcd(n.unsigned_abs() as u64, d as u64).max(1) as i128;
        n /= g;
        d /= g;
        let num = i64::try_from(n).map_err(|_| RationalError::Overflow)?;
        let den = i64::try_from(d).map_err(|_| RationalError::Overflow)?;
        Ok(Rational { num, den })
    }

    /// Creates a rational from an integer number of seconds.
    pub const fn from_int(v: i64) -> Rational {
        Rational { num: v, den: 1 }
    }

    /// The normalized numerator.
    pub const fn num(self) -> i64 {
        self.num
    }

    /// The normalized denominator (always positive).
    pub const fn den(self) -> i64 {
        self.den
    }

    /// `true` if this rational equals zero.
    pub const fn is_zero(self) -> bool {
        self.num == 0
    }

    /// `true` if strictly positive.
    pub const fn is_positive(self) -> bool {
        self.num > 0
    }

    /// `true` if strictly negative.
    pub const fn is_negative(self) -> bool {
        self.num < 0
    }

    /// `true` if this rational is an integer.
    pub const fn is_integer(self) -> bool {
        self.den == 1
    }

    /// The value as an `f64` (lossy; for display and cost models only).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Floor to the nearest integer at or below.
    pub fn floor(self) -> i64 {
        self.num.div_euclid(self.den)
    }

    /// Ceiling to the nearest integer at or above.
    pub fn ceil(self) -> i64 {
        -(-self).floor()
    }

    /// Absolute value.
    pub fn abs(self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if `self` is zero.
    pub fn recip(self) -> Rational {
        Rational::new(self.den, self.num)
    }

    fn combine(
        self,
        rhs: Rational,
        f: impl FnOnce(i128, i128, i128, i128) -> (i128, i128),
    ) -> Result<Rational, RationalError> {
        let (n, d) = f(
            self.num as i128,
            self.den as i128,
            rhs.num as i128,
            rhs.den as i128,
        );
        if d == 0 {
            return Err(RationalError::ZeroDenominator);
        }
        let (mut n, mut d) = if d < 0 { (-n, -d) } else { (n, d) };
        let g = {
            // i128 gcd via u128 magnitudes.
            let mut a = n.unsigned_abs();
            let mut b = d.unsigned_abs();
            while b != 0 {
                let t = a % b;
                a = b;
                b = t;
            }
            a.max(1)
        };
        n /= g as i128;
        d /= g as i128;
        Ok(Rational {
            num: i64::try_from(n).map_err(|_| RationalError::Overflow)?,
            den: i64::try_from(d).map_err(|_| RationalError::Overflow)?,
        })
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: Rational) -> Result<Rational, RationalError> {
        self.combine(rhs, |an, ad, bn, bd| (an * bd + bn * ad, ad * bd))
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: Rational) -> Result<Rational, RationalError> {
        self.combine(rhs, |an, ad, bn, bd| (an * bd - bn * ad, ad * bd))
    }

    /// Checked multiplication.
    pub fn checked_mul(self, rhs: Rational) -> Result<Rational, RationalError> {
        self.combine(rhs, |an, ad, bn, bd| (an * bn, ad * bd))
    }

    /// Checked division.
    pub fn checked_div(self, rhs: Rational) -> Result<Rational, RationalError> {
        if rhs.is_zero() {
            return Err(RationalError::ZeroDenominator);
        }
        self.combine(rhs, |an, ad, bn, bd| (an * bd, ad * bn))
    }

    /// Euclidean division: the largest integer `k` with `k·rhs <= self`
    /// (for positive `rhs`). Used to snap timestamps onto sampling grids.
    ///
    /// # Panics
    /// Panics if `rhs` is zero.
    pub fn div_floor(self, rhs: Rational) -> i64 {
        assert!(!rhs.is_zero(), "division by zero rational");
        // self / rhs = (an * bd) / (ad * bn); floor of that quotient.
        let n = self.num as i128 * rhs.den as i128;
        let d = self.den as i128 * rhs.num as i128;
        let q = n.div_euclid(d);
        i64::try_from(q).expect("rational div_floor overflow")
    }

    /// The smallest integer `k` with `k·rhs >= self` (for positive `rhs`).
    pub fn div_ceil(self, rhs: Rational) -> i64 {
        assert!(!rhs.is_zero(), "division by zero rational");
        let n = self.num as i128 * rhs.den as i128;
        let d = self.den as i128 * rhs.num as i128;
        let q = n.div_euclid(d) + if n.rem_euclid(d) != 0 { 1 } else { 0 };
        i64::try_from(q).expect("rational div_ceil overflow")
    }

    /// `true` if `self` is an integer multiple of `step` away from `base`.
    pub fn is_on_grid(self, base: Rational, step: Rational) -> bool {
        if step.is_zero() {
            return self == base;
        }
        let delta = self - base;
        let n = delta.num as i128 * step.den as i128;
        let d = delta.den as i128 * step.num as i128;
        n % d == 0
    }

    /// Minimum of two rationals.
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two rationals.
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational::from_int(v)
    }
}

impl From<i32> for Rational {
    fn from(v: i32) -> Self {
        Rational::from_int(v as i64)
    }
}

impl From<u32> for Rational {
    fn from(v: u32) -> Self {
        Rational::from_int(v as i64)
    }
}

impl From<(i64, i64)> for Rational {
    fn from((n, d): (i64, i64)) -> Self {
        Rational::new(n, d)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        self.checked_add(rhs).expect("rational add overflow")
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self.checked_sub(rhs).expect("rational sub overflow")
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        self.checked_mul(rhs).expect("rational mul overflow")
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        self.checked_div(rhs)
            .expect("rational div by zero or overflow")
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        let lhs = self.num as i128 * other.den as i128;
        let rhs = other.num as i128 * self.den as i128;
        lhs.cmp(&rhs)
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl FromStr for Rational {
    type Err = ParseRationalError;

    /// Parses `"n"` or `"n/d"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (n, d) = match s.split_once('/') {
            Some((n, d)) => (
                n.trim()
                    .parse::<i64>()
                    .map_err(|_| ParseRationalError::InvalidInt(n.to_string()))?,
                d.trim()
                    .parse::<i64>()
                    .map_err(|_| ParseRationalError::InvalidInt(d.to_string()))?,
            ),
            None => (
                s.trim()
                    .parse::<i64>()
                    .map_err(|_| ParseRationalError::InvalidInt(s.to_string()))?,
                1,
            ),
        };
        Rational::checked_new(n, d).map_err(|_| ParseRationalError::ZeroDenominator)
    }
}

/// Shorthand constructor used pervasively in tests and examples.
pub fn r(num: i64, den: i64) -> Rational {
    Rational::new(num, den)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_on_construction() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, 5), Rational::ZERO);
        assert_eq!(Rational::new(0, -5).den(), 1);
    }

    #[test]
    fn zero_denominator_rejected() {
        assert_eq!(
            Rational::checked_new(1, 0),
            Err(RationalError::ZeroDenominator)
        );
    }

    #[test]
    fn arithmetic_basics() {
        let a = r(1, 3);
        let b = r(1, 6);
        assert_eq!(a + b, r(1, 2));
        assert_eq!(a - b, r(1, 6));
        assert_eq!(a * b, r(1, 18));
        assert_eq!(a / b, r(2, 1));
        assert_eq!(-a, r(-1, 3));
    }

    #[test]
    fn ntsc_framerate_is_exact() {
        // 29.97 fps == 30000/1001; 1001 frames span exactly 1001/29.97 s.
        let step = r(1001, 30000);
        let mut t = Rational::ZERO;
        for _ in 0..30000 {
            t = t + step;
        }
        assert_eq!(t, r(1001, 1));
    }

    #[test]
    fn ordering_is_exact() {
        assert!(r(1, 3) < r(34, 100));
        assert!(r(1, 3) > r(33, 100));
        assert_eq!(r(2, 6).cmp(&r(1, 3)), Ordering::Equal);
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(r(7, 2).floor(), 3);
        assert_eq!(r(7, 2).ceil(), 4);
        assert_eq!(r(-7, 2).floor(), -4);
        assert_eq!(r(-7, 2).ceil(), -3);
        assert_eq!(r(4, 1).floor(), 4);
        assert_eq!(r(4, 1).ceil(), 4);
    }

    #[test]
    fn div_floor_and_ceil() {
        let step = r(1, 30);
        assert_eq!(r(1, 2).div_floor(step), 15);
        assert_eq!(r(1, 2).div_ceil(step), 15);
        assert_eq!(r(101, 200).div_floor(step), 15);
        assert_eq!(r(101, 200).div_ceil(step), 16);
        assert_eq!(r(-1, 60).div_floor(step), -1);
    }

    #[test]
    fn grid_membership() {
        let step = r(1, 30);
        assert!(r(10, 30).is_on_grid(Rational::ZERO, step));
        assert!(!r(1, 45).is_on_grid(Rational::ZERO, step));
        assert!(r(1, 45).is_on_grid(r(1, 45), step));
        assert!(r(1, 45).is_on_grid(r(1, 45), Rational::ZERO));
    }

    #[test]
    fn parse_round_trip() {
        for s in ["3", "-3", "1/2", "-7/3", " 30000 / 1001 "] {
            let v: Rational = s.parse().unwrap();
            let back: Rational = v.to_string().parse().unwrap();
            assert_eq!(v, back);
        }
        assert!("1/0".parse::<Rational>().is_err());
        assert!("x".parse::<Rational>().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let v = r(30000, 1001);
        let js = serde_json::to_string(&v).unwrap();
        assert_eq!(js, "[30000,1001]");
        let back: Rational = serde_json::from_str(&js).unwrap();
        assert_eq!(v, back);
        assert!(serde_json::from_str::<Rational>("[1,0]").is_err());
    }

    #[test]
    fn min_max() {
        assert_eq!(r(1, 2).min(r(1, 3)), r(1, 3));
        assert_eq!(r(1, 2).max(r(1, 3)), r(1, 2));
    }
}
