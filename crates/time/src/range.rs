//! Evenly spaced rational time ranges: the paper's `Range(start, end, step)`.
//!
//! A [`TimeRange`] is a finite arithmetic progression of rational instants
//! `{start + k·step | 0 <= k < count}`. Intersection and difference of two
//! ranges are computed *exactly* on the grids (via a CRT-style solve over
//! the integer lattice), which is what lets the V2V checker prove
//! `required ⊆ available` statically instead of sampling.

use crate::rational::Rational;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A finite arithmetic progression of rational timestamps.
///
/// Invariants (enforced by all constructors):
/// * `step > 0` whenever `count > 1`;
/// * `count == 1` ⇒ `step == 1` (canonical singleton);
/// * `count == 0` ⇒ `start == 0, step == 1` (canonical empty range).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(try_from = "TimeRangeRepr", into = "TimeRangeRepr")]
pub struct TimeRange {
    start: Rational,
    step: Rational,
    count: u64,
}

/// Wire representation: `{"start": r, "step": r, "count": n}`.
#[derive(Serialize, Deserialize)]
struct TimeRangeRepr {
    start: Rational,
    step: Rational,
    count: u64,
}

impl TryFrom<TimeRangeRepr> for TimeRange {
    type Error = String;
    fn try_from(r: TimeRangeRepr) -> Result<Self, Self::Error> {
        if r.count > 1 && !r.step.is_positive() {
            return Err("TimeRange step must be positive".into());
        }
        Ok(TimeRange::from_parts(r.start, r.step, r.count))
    }
}

impl From<TimeRange> for TimeRangeRepr {
    fn from(r: TimeRange) -> Self {
        TimeRangeRepr {
            start: r.start,
            step: r.step,
            count: r.count,
        }
    }
}

impl TimeRange {
    /// The canonical empty range.
    pub const EMPTY: TimeRange = TimeRange {
        start: Rational::ZERO,
        step: Rational::ONE,
        count: 0,
    };

    /// The paper's `Range(start, end, step)`: instants `start + k·step`
    /// strictly below `end`.
    ///
    /// # Panics
    /// Panics if `step <= 0` and the interval is non-degenerate.
    pub fn new(start: Rational, end: Rational, step: Rational) -> TimeRange {
        if end <= start {
            return TimeRange::EMPTY;
        }
        assert!(
            step.is_positive(),
            "Range(start, end, step) requires step > 0"
        );
        let count = (end - start).div_ceil(step).max(0) as u64;
        Self::from_parts(start, step, count)
    }

    /// Constructs from `(start, step, count)`, normalizing degenerate cases.
    pub fn from_parts(start: Rational, step: Rational, count: u64) -> TimeRange {
        match count {
            0 => TimeRange::EMPTY,
            1 => TimeRange {
                start,
                step: Rational::ONE,
                count: 1,
            },
            _ => {
                assert!(step.is_positive(), "TimeRange step must be positive");
                TimeRange { start, step, count }
            }
        }
    }

    /// A range containing exactly one instant.
    pub fn singleton(t: Rational) -> TimeRange {
        TimeRange::from_parts(t, Rational::ONE, 1)
    }

    /// First instant (inclusive). `None` when empty.
    pub fn first(&self) -> Option<Rational> {
        (self.count > 0).then_some(self.start)
    }

    /// Last instant (inclusive). `None` when empty.
    pub fn last(&self) -> Option<Rational> {
        if self.count == 0 {
            None
        } else {
            Some(self.start + self.step * Rational::from_int(self.count as i64 - 1))
        }
    }

    /// Exclusive upper bound: the instant one step past `last`.
    pub fn end_exclusive(&self) -> Rational {
        self.start + self.step * Rational::from_int(self.count as i64)
    }

    /// The start instant (meaningless when empty).
    pub fn start(&self) -> Rational {
        self.start
    }

    /// The grid step.
    pub fn step(&self) -> Rational {
        self.step
    }

    /// Number of instants in the range.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` if the range contains no instants.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The instant at index `k`, if `k < count`.
    pub fn at(&self, k: u64) -> Option<Rational> {
        (k < self.count).then(|| self.start + self.step * Rational::from_int(k as i64))
    }

    /// Membership test (exact).
    pub fn contains(&self, t: Rational) -> bool {
        if self.count == 0 || t < self.start {
            return false;
        }
        if self.count == 1 {
            return t == self.start;
        }
        let k = (t - self.start).div_floor(self.step);
        k >= 0 && (k as u64) < self.count && self.at(k as u64) == Some(t)
    }

    /// Index of instant `t` within the range, if present.
    pub fn index_of(&self, t: Rational) -> Option<u64> {
        if self.count == 0 || t < self.start {
            return None;
        }
        if self.count == 1 {
            return (t == self.start).then_some(0);
        }
        let k = (t - self.start).div_floor(self.step);
        if k >= 0 && (k as u64) < self.count && self.at(k as u64) == Some(t) {
            Some(k as u64)
        } else {
            None
        }
    }

    /// Iterates over all instants. Bounded by `count`.
    pub fn iter(&self) -> impl Iterator<Item = Rational> + '_ {
        (0..self.count).map(move |k| self.start + self.step * Rational::from_int(k as i64))
    }

    /// A sub-range of indices `[from, to)` of this range.
    pub fn slice(&self, from: u64, to: u64) -> TimeRange {
        let to = to.min(self.count);
        if from >= to {
            return TimeRange::EMPTY;
        }
        TimeRange::from_parts(
            self.start + self.step * Rational::from_int(from as i64),
            self.step,
            to - from,
        )
    }

    /// Exact intersection of two arithmetic progressions.
    ///
    /// The result (when non-empty) lies on both grids; its step is the least
    /// common multiple of the input steps (restricted to the overlap
    /// window). Singleton inputs are handled as membership probes.
    pub fn intersect(&self, other: &TimeRange) -> TimeRange {
        if self.count == 0 || other.count == 0 {
            return TimeRange::EMPTY;
        }
        if self.count == 1 {
            return if other.contains(self.start) {
                *self
            } else {
                TimeRange::EMPTY
            };
        }
        if other.count == 1 {
            return if self.contains(other.start) {
                *other
            } else {
                TimeRange::EMPTY
            };
        }
        // Scale everything to a common integer lattice L = lcm of the four
        // denominators; work in i128 to avoid overflow.
        let dens = [
            self.start.den(),
            self.step.den(),
            other.start.den(),
            other.step.den(),
        ];
        let mut l: i128 = 1;
        for d in dens {
            l = lcm_i128(l, d as i128);
        }
        let a0 = scale(self.start, l);
        let s0 = scale(self.step, l);
        let a1 = scale(other.start, l);
        let s1 = scale(other.step, l);

        // Solve a0 + k*s0 = a1 + j*s1 for integers k, j >= 0.
        // k*s0 ≡ (a1 - a0) (mod s1).
        let (g, x, _) = ext_gcd(s0, s1);
        let diff = a1 - a0;
        if diff.rem_euclid(g) != 0 {
            return TimeRange::EMPTY;
        }
        let s1g = s1 / g;
        // k ≡ x * (diff / g) (mod s1/g)
        let k0 = mul_mod(x, diff / g, s1g);
        // The merged progression has period lcm(s0, s1) on the lattice.
        let period = s0 / g * s1;
        // First candidate instant on both grids at index k0 of self.
        // Clamp k into [k_min, k_max] where both ranges cover the value.
        let self_last = a0 + s0 * (self.count as i128 - 1);
        let other_last = a1 + s1 * (other.count as i128 - 1);
        let lo = a0.max(a1);
        let hi = self_last.min(other_last);
        if lo > hi {
            return TimeRange::EMPTY;
        }
        let v0 = a0 + s0 * k0; // smallest common value with k in [0, s1g)
                               // Advance/retreat v0 to the first common value >= lo.
        let first = if v0 >= lo {
            v0 - ((v0 - lo) / period) * period
        } else {
            v0 + ((lo - v0 + period - 1) / period) * period
        };
        if first > hi {
            return TimeRange::EMPTY;
        }
        let count = ((hi - first) / period + 1) as u64;
        let start = unscale(first, l);
        let step = unscale(period, l);
        TimeRange::from_parts(start, step, count)
    }

    /// Exact set difference `self \ other`, returned as disjoint ranges.
    ///
    /// At most `ratio + 2` ranges are produced, where `ratio` is the step
    /// ratio between the common grid and this range's grid.
    pub fn subtract(&self, other: &TimeRange) -> Vec<TimeRange> {
        let cut = self.intersect(other);
        if cut.is_empty() {
            return if self.is_empty() { vec![] } else { vec![*self] };
        }
        if self.count == 1 {
            // The only instant was removed.
            return vec![];
        }
        // `cut` lies on self's grid: express as indices {i0 + k*m}.
        let i0 = self
            .index_of(cut.start)
            .expect("intersection start must lie on grid");
        if cut.count == 1 {
            // One instant removed: split into head and tail.
            let mut out = Vec::new();
            if i0 > 0 {
                out.push(self.slice(0, i0));
            }
            if i0 + 1 < self.count {
                out.push(self.slice(i0 + 1, self.count));
            }
            return out;
        }
        let m = {
            let ratio = cut.step() / self.step;
            debug_assert!(ratio.is_integer(), "intersection stride must be integral");
            ratio.num() as u64
        };
        let removed_last = i0 + m * (cut.count - 1);
        let mut out = Vec::new();
        // Head: indices [0, i0).
        if i0 > 0 {
            out.push(self.slice(0, i0));
        }
        if m > 1 {
            // Between removed instants: residue classes r = 1..m relative
            // to i0, striding by m, while staying <= removed_last + (m-1)
            // and < count.
            for rclass in 1..m {
                let first_idx = i0 + rclass;
                if first_idx >= self.count {
                    break;
                }
                // Largest index in this class not exceeding the gap region:
                // indices first_idx, first_idx + m, ... that are < count and
                // <= removed_last + m - 1 (anything beyond the last removed
                // instant's stride belongs to the tail).
                let cap = (removed_last + m).min(self.count);
                let n = (cap - first_idx).div_ceil(m);
                if n == 0 {
                    continue;
                }
                let start = self.at(first_idx).unwrap();
                out.push(TimeRange::from_parts(
                    start,
                    self.step * Rational::from_int(m as i64),
                    n,
                ));
            }
        }
        // Tail: indices (removed_last, count) not covered by residue logic
        // when m == 1, plus anything past removed_last + m - 1 when m > 1.
        let tail_from = if m > 1 {
            removed_last + m
        } else {
            removed_last + 1
        };
        if tail_from < self.count {
            out.push(self.slice(tail_from, self.count));
        }
        out.retain(|r| !r.is_empty());
        out
    }

    /// `true` if every instant of `self` is contained in `other`.
    pub fn is_subset_of(&self, other: &TimeRange) -> bool {
        self.intersect(other).count() == self.count
    }
}

fn scale(r: Rational, l: i128) -> i128 {
    r.num() as i128 * (l / r.den() as i128)
}

fn unscale(v: i128, l: i128) -> Rational {
    // v / l as a rational; both fit i64 after normalization for the
    // timestamp magnitudes V2V works with.
    let g = gcd_i128(v.unsigned_abs(), l.unsigned_abs()).max(1) as i128;
    Rational::new((v / g) as i64, (l / g) as i64)
}

fn gcd_i128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

fn lcm_i128(a: i128, b: i128) -> i128 {
    a / gcd_i128(a.unsigned_abs(), b.unsigned_abs()) as i128 * b
}

/// Extended Euclid: returns `(g, x, y)` with `a·x + b·y = g`.
fn ext_gcd(a: i128, b: i128) -> (i128, i128, i128) {
    if b == 0 {
        (a, 1, 0)
    } else {
        let (g, x, y) = ext_gcd(b, a % b);
        (g, y, x - (a / b) * y)
    }
}

/// `(a * b) mod m`, normalized into `[0, m)`.
fn mul_mod(a: i128, b: i128, m: i128) -> i128 {
    debug_assert!(m > 0);
    let a = a.rem_euclid(m);
    let b = b.rem_euclid(m);
    (a * b).rem_euclid(m)
}

impl fmt::Debug for TimeRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for TimeRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "Range(∅)")
        } else if self.count == 1 {
            write!(f, "{{{}}}", self.start)
        } else {
            write!(
                f,
                "Range({}, {}, {})×{}",
                self.start,
                self.end_exclusive(),
                self.step,
                self.count
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::r;

    fn rng(start: (i64, i64), end: (i64, i64), step: (i64, i64)) -> TimeRange {
        TimeRange::new(r(start.0, start.1), r(end.0, end.1), r(step.0, step.1))
    }

    #[test]
    fn range_count_matches_paper_notation() {
        // Range(0, 600, 1/30) — a 10-minute 30fps domain — has 18000 frames.
        let d = rng((0, 1), (600, 1), (1, 30));
        assert_eq!(d.count(), 18000);
        assert_eq!(d.first(), Some(r(0, 1)));
        assert_eq!(d.last(), Some(r(17999, 30)));
        assert_eq!(d.end_exclusive(), r(600, 1));
    }

    #[test]
    fn empty_and_singleton_normalization() {
        assert!(rng((5, 1), (5, 1), (1, 30)).is_empty());
        assert!(rng((5, 1), (4, 1), (1, 30)).is_empty());
        let s = TimeRange::singleton(r(3, 2));
        assert_eq!(s.count(), 1);
        assert_eq!(s.step(), Rational::ONE);
        assert_eq!(
            TimeRange::from_parts(r(3, 2), r(1, 7), 1),
            TimeRange::singleton(r(3, 2))
        );
    }

    #[test]
    fn membership_and_index() {
        let d = rng((1, 2), (5, 1), (1, 4));
        assert!(d.contains(r(1, 2)));
        assert!(d.contains(r(3, 4)));
        assert!(d.contains(r(19, 4)));
        assert!(!d.contains(r(5, 1)));
        assert!(!d.contains(r(2, 3)));
        assert!(!d.contains(r(1, 4)));
        assert_eq!(d.index_of(r(3, 4)), Some(1));
        assert_eq!(d.index_of(r(2, 3)), None);
    }

    #[test]
    fn iteration_is_exact() {
        let d = rng((0, 1), (1, 1), (1, 3));
        let v: Vec<_> = d.iter().collect();
        assert_eq!(v, vec![r(0, 1), r(1, 3), r(2, 3)]);
    }

    #[test]
    fn intersect_same_grid() {
        let a = rng((0, 1), (10, 1), (1, 30));
        let b = rng((2, 1), (4, 1), (1, 30));
        let c = a.intersect(&b);
        assert_eq!(c, b);
        assert!(b.is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
    }

    #[test]
    fn intersect_offset_grids_disjoint() {
        let a = rng((0, 1), (10, 1), (1, 30));
        // Offset by half a frame: grids never meet.
        let b = TimeRange::new(r(1, 60), r(10, 1), r(1, 30));
        assert!(a.intersect(&b).is_empty());
    }

    #[test]
    fn intersect_different_steps() {
        // 30 fps grid ∩ 24 fps grid = 6 Hz grid (every 1/6 s).
        let a = rng((0, 1), (10, 1), (1, 30));
        let b = rng((0, 1), (10, 1), (1, 24));
        let c = a.intersect(&b);
        assert_eq!(c.step(), r(1, 6));
        assert_eq!(c.first(), Some(r(0, 1)));
        assert_eq!(c.count(), 60);
        for t in c.iter().take(10) {
            assert!(a.contains(t) && b.contains(t));
        }
    }

    #[test]
    fn intersect_with_singleton() {
        let a = rng((0, 1), (10, 1), (1, 30));
        assert_eq!(
            a.intersect(&TimeRange::singleton(r(1, 3))),
            TimeRange::singleton(r(1, 3))
        );
        assert!(a.intersect(&TimeRange::singleton(r(1, 7))).is_empty());
    }

    #[test]
    fn subtract_interior_window() {
        let a = rng((0, 1), (10, 1), (1, 1)); // {0..9}
        let b = rng((3, 1), (6, 1), (1, 1)); // {3,4,5}
        let parts = a.subtract(&b);
        let mut left: Vec<Rational> = parts.iter().flat_map(|p| p.iter()).collect();
        left.sort();
        let expect: Vec<Rational> = [0, 1, 2, 6, 7, 8, 9].iter().map(|&v| r(v, 1)).collect();
        assert_eq!(left, expect);
    }

    #[test]
    fn subtract_strided() {
        let a = rng((0, 1), (10, 1), (1, 1)); // {0..9}
        let b = TimeRange::from_parts(r(1, 1), r(3, 1), 3); // {1,4,7}
        let parts = a.subtract(&b);
        let mut left: Vec<Rational> = parts.iter().flat_map(|p| p.iter()).collect();
        left.sort();
        let expect: Vec<Rational> = [0, 2, 3, 5, 6, 8, 9].iter().map(|&v| r(v, 1)).collect();
        assert_eq!(left, expect);
        // Total count is preserved.
        let n: u64 = parts.iter().map(|p| p.count()).sum();
        assert_eq!(n, 7);
    }

    #[test]
    fn subtract_disjoint_returns_self() {
        let a = rng((0, 1), (5, 1), (1, 1));
        let b = rng((7, 1), (9, 1), (1, 1));
        assert_eq!(a.subtract(&b), vec![a]);
    }

    #[test]
    fn subtract_everything() {
        let a = rng((0, 1), (5, 1), (1, 1));
        assert!(a.subtract(&a).is_empty());
    }

    #[test]
    fn slice_behaviour() {
        let a = rng((0, 1), (1, 1), (1, 10));
        let s = a.slice(2, 5);
        assert_eq!(s.first(), Some(r(1, 5)));
        assert_eq!(s.count(), 3);
        assert!(a.slice(5, 5).is_empty());
        assert_eq!(a.slice(8, 100).count(), 2);
    }
}
