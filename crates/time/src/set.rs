//! Normalized unions of [`TimeRange`]s.
//!
//! A [`TimeSet`] is the domain type for match arms, dependency analysis,
//! and the data-dependent rewriter: "which instants does this expression
//! cover / require?". Internally it is a sorted vector of pairwise-disjoint
//! ranges; all set operations are exact.

use crate::range::TimeRange;
use crate::rational::Rational;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A finite set of rational instants, stored as disjoint sorted ranges.
#[derive(Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[serde(from = "Vec<TimeRange>", into = "Vec<TimeRange>")]
pub struct TimeSet {
    ranges: Vec<TimeRange>,
}

impl From<Vec<TimeRange>> for TimeSet {
    fn from(ranges: Vec<TimeRange>) -> Self {
        TimeSet::from_ranges(ranges)
    }
}

impl From<TimeSet> for Vec<TimeRange> {
    fn from(s: TimeSet) -> Self {
        s.ranges
    }
}

impl From<TimeRange> for TimeSet {
    fn from(r: TimeRange) -> Self {
        TimeSet::from_ranges(vec![r])
    }
}

impl TimeSet {
    /// The empty set.
    pub fn empty() -> TimeSet {
        TimeSet { ranges: Vec::new() }
    }

    /// Builds a set from arbitrary (possibly overlapping) ranges.
    pub fn from_ranges(ranges: impl IntoIterator<Item = TimeRange>) -> TimeSet {
        let mut out = TimeSet::empty();
        for r in ranges {
            out = out.union(&TimeSet {
                ranges: disjoint(r),
            });
        }
        out
    }

    /// A set with a single range.
    pub fn from_range(r: TimeRange) -> TimeSet {
        TimeSet {
            ranges: disjoint(r),
        }
    }

    /// A set with exactly one instant.
    pub fn singleton(t: Rational) -> TimeSet {
        TimeSet::from_range(TimeRange::singleton(t))
    }

    /// A set from explicit instants (the paper's `{0, 1, 2}` notation).
    pub fn from_instants(ts: impl IntoIterator<Item = Rational>) -> TimeSet {
        TimeSet::from_ranges(ts.into_iter().map(TimeRange::singleton))
    }

    /// The constituent disjoint ranges, sorted by start.
    pub fn ranges(&self) -> &[TimeRange] {
        &self.ranges
    }

    /// `true` if the set has no instants.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Total number of instants.
    pub fn count(&self) -> u64 {
        self.ranges.iter().map(|r| r.count()).sum()
    }

    /// Smallest instant, if any.
    pub fn min(&self) -> Option<Rational> {
        self.ranges.iter().filter_map(|r| r.first()).min()
    }

    /// Largest instant, if any.
    pub fn max(&self) -> Option<Rational> {
        self.ranges.iter().filter_map(|r| r.last()).max()
    }

    /// Membership test.
    pub fn contains(&self, t: Rational) -> bool {
        self.ranges.iter().any(|r| r.contains(t))
    }

    /// Iterates over all instants in ascending order.
    ///
    /// Ranges are disjoint but may interleave, so this merges lazily.
    pub fn iter(&self) -> TimeSetIter<'_> {
        TimeSetIter::new(self.ranges.iter().map(|r| (*r, 0)).collect())
    }

    /// Set union.
    pub fn union(&self, other: &TimeSet) -> TimeSet {
        // Keep self's ranges; add other's ranges minus self.
        let mut ranges = self.ranges.clone();
        for r in &other.ranges {
            let mut pending = vec![*r];
            for mine in &self.ranges {
                pending = pending.into_iter().flat_map(|p| p.subtract(mine)).collect();
                if pending.is_empty() {
                    break;
                }
            }
            ranges.extend(pending);
        }
        normalize(ranges)
    }

    /// Set intersection.
    pub fn intersect(&self, other: &TimeSet) -> TimeSet {
        let mut ranges = Vec::new();
        for a in &self.ranges {
            for b in &other.ranges {
                let c = a.intersect(b);
                if !c.is_empty() {
                    ranges.push(c);
                }
            }
        }
        // Inputs are disjoint unions, so the intersections are disjoint.
        normalize(ranges)
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &TimeSet) -> TimeSet {
        let mut ranges = self.ranges.clone();
        for b in &other.ranges {
            ranges = ranges.into_iter().flat_map(|a| a.subtract(b)).collect();
        }
        normalize(ranges)
    }

    /// `true` if every instant of `self` is in `other`.
    pub fn is_subset_of(&self, other: &TimeSet) -> bool {
        self.difference(other).is_empty()
    }

    /// `true` if the two sets share no instants.
    pub fn is_disjoint_from(&self, other: &TimeSet) -> bool {
        self.intersect(other).is_empty()
    }

    /// Semantic equality (same instants, regardless of representation).
    pub fn set_eq(&self, other: &TimeSet) -> bool {
        self.count() == other.count() && self.is_subset_of(other)
    }

    /// Splits the set at a boundary: `(instants < t, instants >= t)`.
    pub fn split_at(&self, t: Rational) -> (TimeSet, TimeSet) {
        let mut lo = Vec::new();
        let mut hi = Vec::new();
        for r in &self.ranges {
            if r.is_empty() {
                continue;
            }
            if r.last().unwrap() < t {
                lo.push(*r);
            } else if r.start() >= t {
                hi.push(*r);
            } else {
                let k = (t - r.start()).div_ceil(r.step()).max(0) as u64;
                lo.push(r.slice(0, k));
                hi.push(r.slice(k, r.count()));
            }
        }
        (normalize(lo), normalize(hi))
    }

    /// Groups the set into maximal runs of consecutive instants that share a
    /// uniform step, in ascending order. Used by the data-dependent
    /// rewriter to turn per-instant decisions back into compact match arms.
    pub fn contiguous_runs(&self) -> Vec<TimeRange> {
        // The normalized representation is exactly that, sorted.
        self.ranges.clone()
    }
}

/// Ensures a single range is represented as itself (ranges are internally
/// disjoint by construction).
fn disjoint(r: TimeRange) -> Vec<TimeRange> {
    if r.is_empty() {
        vec![]
    } else {
        vec![r]
    }
}

/// Sorts disjoint ranges and merges mergeable neighbours.
fn normalize(mut ranges: Vec<TimeRange>) -> TimeSet {
    ranges.retain(|r| !r.is_empty());
    ranges.sort_by(|a, b| {
        a.start()
            .cmp(&b.start())
            .then_with(|| a.step().cmp(&b.step()))
    });
    let mut out: Vec<TimeRange> = Vec::with_capacity(ranges.len());
    for r in ranges {
        if let Some(last) = out.last_mut() {
            if let Some(merged) = try_merge(last, &r) {
                *last = merged;
                continue;
            }
        }
        out.push(r);
    }
    TimeSet { ranges: out }
}

/// Attempts to merge two disjoint ranges `a` (earlier) and `b` into one
/// arithmetic progression.
fn try_merge(a: &TimeRange, b: &TimeRange) -> Option<TimeRange> {
    debug_assert!(!a.is_empty() && !b.is_empty());
    let a_last = a.last().unwrap();
    if b.start() <= a_last {
        // Interleaved grids — leave separate (they are disjoint).
        return None;
    }
    let gap = b.start() - a_last;
    match (a.count(), b.count()) {
        (1, 1) => Some(TimeRange::from_parts(a.start(), gap, 2)),
        (1, _) => {
            (gap == b.step()).then(|| TimeRange::from_parts(a.start(), b.step(), b.count() + 1))
        }
        (_, 1) => {
            (gap == a.step()).then(|| TimeRange::from_parts(a.start(), a.step(), a.count() + 1))
        }
        _ => (a.step() == b.step() && gap == a.step())
            .then(|| TimeRange::from_parts(a.start(), a.step(), a.count() + b.count())),
    }
}

/// Ascending merged iterator over a set's instants.
pub struct TimeSetIter<'a> {
    cursors: Vec<(TimeRange, u64)>,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl TimeSetIter<'_> {
    fn new(cursors: Vec<(TimeRange, u64)>) -> Self {
        TimeSetIter {
            cursors,
            _marker: std::marker::PhantomData,
        }
    }
}

impl Iterator for TimeSetIter<'_> {
    type Item = Rational;

    fn next(&mut self) -> Option<Rational> {
        let mut best: Option<(usize, Rational)> = None;
        for (i, (r, k)) in self.cursors.iter().enumerate() {
            if let Some(t) = r.at(*k) {
                if best.map_or(true, |(_, bt)| t < bt) {
                    best = Some((i, t));
                }
            }
        }
        let (i, t) = best?;
        self.cursors[i].1 += 1;
        Some(t)
    }
}

impl fmt::Debug for TimeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for TimeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ranges.is_empty() {
            return write!(f, "∅");
        }
        let mut first = true;
        for r in &self.ranges {
            if !first {
                write!(f, " ∪ ")?;
            }
            first = false;
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::r;

    fn rng(start: i64, end: i64, num: i64, den: i64) -> TimeRange {
        TimeRange::new(r(start, 1), r(end, 1), r(num, den))
    }

    fn enumerate(s: &TimeSet) -> Vec<Rational> {
        s.iter().collect()
    }

    #[test]
    fn union_merges_adjacent_same_step() {
        let s = TimeSet::from_ranges(vec![rng(0, 5, 1, 1), rng(5, 10, 1, 1)]);
        assert_eq!(s.ranges().len(), 1);
        assert_eq!(s.count(), 10);
    }

    #[test]
    fn union_deduplicates_overlap() {
        let a = TimeSet::from_range(rng(0, 10, 1, 1));
        let b = TimeSet::from_range(rng(5, 15, 1, 1));
        let u = a.union(&b);
        assert_eq!(u.count(), 15);
        assert!(u.contains(r(14, 1)));
        assert!(!u.contains(r(15, 1)));
    }

    #[test]
    fn intersect_and_difference_agree_with_enumeration() {
        let a = TimeSet::from_ranges(vec![rng(0, 10, 1, 2)]);
        let b = TimeSet::from_ranges(vec![rng(3, 20, 1, 3)]);
        let i = a.intersect(&b);
        let d = a.difference(&b);
        let ae: Vec<_> = enumerate(&a);
        for t in &ae {
            assert_eq!(i.contains(*t), b.contains(*t), "t = {t}");
            assert_eq!(d.contains(*t), !b.contains(*t), "t = {t}");
        }
        assert_eq!(i.count() + d.count(), a.count());
    }

    #[test]
    fn subset_relations() {
        let dom = TimeSet::from_range(rng(0, 300, 1, 30));
        let req = TimeSet::from_range(rng(10, 20, 1, 30));
        assert!(req.is_subset_of(&dom));
        assert!(!dom.is_subset_of(&req));
        let off = TimeSet::from_range(TimeRange::new(r(1, 60), r(5, 1), r(1, 30)));
        assert!(!off.is_subset_of(&dom));
    }

    #[test]
    fn singleton_runs_collapse() {
        // {0, 1, 2} becomes a single step-1 range.
        let s = TimeSet::from_instants([r(0, 1), r(1, 1), r(2, 1)]);
        assert_eq!(s.ranges().len(), 1);
        assert_eq!(s.ranges()[0].count(), 3);
        assert_eq!(s.ranges()[0].step(), r(1, 1));
    }

    #[test]
    fn split_at_boundary() {
        let s = TimeSet::from_range(rng(0, 10, 1, 1));
        let (lo, hi) = s.split_at(r(4, 1));
        assert_eq!(lo.count(), 4);
        assert_eq!(hi.count(), 6);
        assert!(lo.max().unwrap() < r(4, 1));
        assert_eq!(hi.min(), Some(r(4, 1)));
        // Split point off the grid.
        let (lo, hi) = s.split_at(r(9, 2));
        assert_eq!(lo.count(), 5);
        assert_eq!(hi.count(), 5);
    }

    #[test]
    fn iter_is_sorted_across_ranges() {
        let s = TimeSet::from_ranges(vec![rng(0, 4, 2, 1), rng(1, 5, 2, 1)]);
        let v = enumerate(&s);
        assert_eq!(v, vec![r(0, 1), r(1, 1), r(2, 1), r(3, 1)]);
    }

    #[test]
    fn set_eq_is_semantic() {
        let a = TimeSet::from_ranges(vec![rng(0, 4, 2, 1), rng(1, 5, 2, 1)]);
        let b = TimeSet::from_range(rng(0, 4, 1, 1));
        assert!(a.set_eq(&b));
        assert!(!a.set_eq(&TimeSet::from_range(rng(0, 5, 1, 1))));
    }

    #[test]
    fn empty_set_behaviour() {
        let e = TimeSet::empty();
        assert!(e.is_empty());
        assert!(e.is_subset_of(&TimeSet::singleton(r(1, 1))));
        assert!(e.is_disjoint_from(&e));
        assert_eq!(e.min(), None);
        assert_eq!(e.union(&TimeSet::singleton(r(1, 1))).count(), 1);
    }
}
