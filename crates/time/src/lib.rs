#![warn(missing_docs)]

//! Exact rational time arithmetic and time-set algebra for V2V.
//!
//! Video timestamps are rational numbers: many common frame rates
//! (29.97 = 30000/1001, 24000/1001, …) have no finite decimal
//! representation, so V2V — like the multimedia ecosystem at large —
//! indexes frames by exact rationals.
//!
//! The crate provides three layers:
//!
//! * [`Rational`] — a normalized `i64/i64` rational with exact, overflow
//!   checked arithmetic and a total order.
//! * [`TimeRange`] — the paper's `Range(start, end, step)`: a set of evenly
//!   spaced rational instants over a half-open interval.
//! * [`TimeSet`] — a normalized union of ranges with the set algebra
//!   (membership, union, intersection, difference, subset) the V2V static
//!   checker and optimizer are built on.
//!
//! An [`AffineTimeMap`] (`a·t + b`) models the time indexing expressions
//! that appear in specs (`vid1[t + 13463/30]`), and is used to push time
//! domains through frame references during dependency analysis.

pub mod affine;
pub mod range;
pub mod rational;
pub mod set;

pub use affine::AffineTimeMap;
pub use range::TimeRange;
pub use rational::{r, ParseRationalError, Rational, RationalError};
pub use set::TimeSet;

/// Convenience constructor mirroring the paper's `Range(start, end, step)`
/// notation. `start`/`end` are in seconds; `step` is typically `1/fps`.
pub fn range<S, E, P>(start: S, end: E, step: P) -> TimeRange
where
    S: Into<Rational>,
    E: Into<Rational>,
    P: Into<Rational>,
{
    TimeRange::new(start.into(), end.into(), step.into())
}
