//! Affine time maps `f(t) = scale·t + offset`.
//!
//! Spec expressions index videos as `vid[t + 13463/30]` or, with retiming,
//! `vid[2·t]`. Dependency analysis pushes a match arm's time domain through
//! these maps to compute the exact set of source instants a spec requires.

use crate::range::TimeRange;
use crate::rational::Rational;
use crate::set::TimeSet;
use serde::{Deserialize, Serialize};
use std::fmt;

/// `f(t) = scale·t + offset` with `scale != 0`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AffineTimeMap {
    scale: Rational,
    offset: Rational,
}

impl Default for AffineTimeMap {
    fn default() -> Self {
        AffineTimeMap::IDENTITY
    }
}

impl AffineTimeMap {
    /// The identity map `t ↦ t`.
    pub const IDENTITY: AffineTimeMap = AffineTimeMap {
        scale: Rational::ONE,
        offset: Rational::ZERO,
    };

    /// Builds `t ↦ scale·t + offset`.
    ///
    /// # Panics
    /// Panics if `scale == 0` (a constant map is not a valid retiming).
    pub fn new(scale: Rational, offset: Rational) -> AffineTimeMap {
        assert!(!scale.is_zero(), "affine time map requires scale != 0");
        AffineTimeMap { scale, offset }
    }

    /// Pure shift `t ↦ t + offset` (the common `vid[t + c]` form).
    pub fn shift(offset: Rational) -> AffineTimeMap {
        AffineTimeMap::new(Rational::ONE, offset)
    }

    /// Pure retime `t ↦ scale·t` (speed-up / slow-down).
    pub fn retime(scale: Rational) -> AffineTimeMap {
        AffineTimeMap::new(scale, Rational::ZERO)
    }

    /// The scale component.
    pub fn scale(&self) -> Rational {
        self.scale
    }

    /// The offset component.
    pub fn offset(&self) -> Rational {
        self.offset
    }

    /// `true` for the identity map.
    pub fn is_identity(&self) -> bool {
        *self == AffineTimeMap::IDENTITY
    }

    /// `true` if the map is a pure shift (scale == 1).
    pub fn is_shift(&self) -> bool {
        self.scale == Rational::ONE
    }

    /// Applies the map to a single instant.
    pub fn apply(&self, t: Rational) -> Rational {
        self.scale * t + self.offset
    }

    /// The inverse map `t ↦ (t - offset) / scale`.
    pub fn inverse(&self) -> AffineTimeMap {
        let inv_scale = self.scale.recip();
        AffineTimeMap::new(inv_scale, -(self.offset / self.scale))
    }

    /// Composition: `(self ∘ other)(t) = self(other(t))`.
    pub fn compose(&self, other: &AffineTimeMap) -> AffineTimeMap {
        AffineTimeMap::new(
            self.scale * other.scale,
            self.scale * other.offset + self.offset,
        )
    }

    /// Image of a range under the map (still an arithmetic progression).
    pub fn apply_range(&self, r: &TimeRange) -> TimeRange {
        if r.is_empty() {
            return TimeRange::EMPTY;
        }
        if r.count() == 1 {
            return TimeRange::singleton(self.apply(r.start()));
        }
        if self.scale.is_positive() {
            TimeRange::from_parts(self.apply(r.start()), self.scale * r.step(), r.count())
        } else {
            // Negative scale reverses direction; re-anchor on the image of
            // the last element.
            TimeRange::from_parts(
                self.apply(r.last().unwrap()),
                (-self.scale) * r.step(),
                r.count(),
            )
        }
    }

    /// Image of a whole set under the map.
    pub fn apply_set(&self, s: &TimeSet) -> TimeSet {
        TimeSet::from_ranges(s.ranges().iter().map(|r| self.apply_range(r)))
    }
}

impl fmt::Debug for AffineTimeMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for AffineTimeMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_identity() {
            return write!(f, "t");
        }
        if self.scale == Rational::ONE {
            if self.offset.is_negative() {
                write!(f, "t - {}", -self.offset)
            } else {
                write!(f, "t + {}", self.offset)
            }
        } else if self.offset.is_zero() {
            write!(f, "{}·t", self.scale)
        } else if self.offset.is_negative() {
            write!(f, "{}·t - {}", self.scale, -self.offset)
        } else {
            write!(f, "{}·t + {}", self.scale, self.offset)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::r;

    #[test]
    fn apply_and_inverse_round_trip() {
        let m = AffineTimeMap::new(r(2, 1), r(-3, 2));
        let t = r(7, 5);
        assert_eq!(m.inverse().apply(m.apply(t)), t);
        assert!(m.compose(&m.inverse()).is_identity());
        assert!(m.inverse().compose(&m).is_identity());
    }

    #[test]
    fn shift_maps_preserve_step() {
        let m = AffineTimeMap::shift(r(13463, 30));
        let d = TimeRange::new(r(300, 1), r(600, 1), r(1, 30));
        let img = m.apply_range(&d);
        assert_eq!(img.step(), r(1, 30));
        assert_eq!(img.count(), d.count());
        assert_eq!(img.first(), Some(r(300, 1) + r(13463, 30)));
    }

    #[test]
    fn retime_scales_step() {
        let m = AffineTimeMap::retime(r(2, 1));
        let d = TimeRange::new(r(0, 1), r(5, 1), r(1, 30));
        let img = m.apply_range(&d);
        assert_eq!(img.step(), r(1, 15));
        assert_eq!(img.end_exclusive(), r(10, 1));
    }

    #[test]
    fn negative_scale_reverses() {
        let m = AffineTimeMap::new(r(-1, 1), r(10, 1)); // t ↦ 10 - t
        let d = TimeRange::new(r(0, 1), r(3, 1), r(1, 1)); // {0,1,2}
        let img = m.apply_range(&d);
        let vals: Vec<_> = img.iter().collect();
        assert_eq!(vals, vec![r(8, 1), r(9, 1), r(10, 1)]);
    }

    #[test]
    fn compose_matches_sequential_application() {
        let a = AffineTimeMap::new(r(2, 1), r(1, 1));
        let b = AffineTimeMap::new(r(1, 3), r(-2, 1));
        let t = r(9, 4);
        assert_eq!(a.compose(&b).apply(t), a.apply(b.apply(t)));
    }

    #[test]
    fn apply_set_preserves_count() {
        let s = TimeSet::from_ranges(vec![
            TimeRange::new(r(0, 1), r(2, 1), r(1, 2)),
            TimeRange::new(r(5, 1), r(6, 1), r(1, 4)),
        ]);
        let m = AffineTimeMap::shift(r(100, 1));
        let img = m.apply_set(&s);
        assert_eq!(img.count(), s.count());
        for t in s.iter() {
            assert!(img.contains(t + r(100, 1)));
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(AffineTimeMap::IDENTITY.to_string(), "t");
        assert_eq!(AffineTimeMap::shift(r(5, 1)).to_string(), "t + 5");
        assert_eq!(AffineTimeMap::shift(r(-5, 1)).to_string(), "t - 5");
        assert_eq!(AffineTimeMap::retime(r(2, 1)).to_string(), "2·t");
    }
}
