//! Property-based tests for rational arithmetic and time-set algebra.
//!
//! The set operations are validated against brute-force enumeration of the
//! underlying instants, which is exact for the small ranges generated here.

use proptest::prelude::*;
use std::collections::BTreeSet;
use v2v_time::{AffineTimeMap, Rational, TimeRange, TimeSet};

fn small_rational() -> impl Strategy<Value = Rational> {
    (-60i64..60, 1i64..12).prop_map(|(n, d)| Rational::new(n, d))
}

fn pos_rational() -> impl Strategy<Value = Rational> {
    (1i64..12, 1i64..12).prop_map(|(n, d)| Rational::new(n, d))
}

fn small_range() -> impl Strategy<Value = TimeRange> {
    (small_rational(), pos_rational(), 0u64..12)
        .prop_map(|(start, step, count)| TimeRange::from_parts(start, step, count))
}

fn small_set() -> impl Strategy<Value = TimeSet> {
    prop::collection::vec(small_range(), 0..4).prop_map(TimeSet::from_ranges)
}

fn enumerate(s: &TimeSet) -> BTreeSet<Rational> {
    s.iter().collect()
}

fn enumerate_range(r: &TimeRange) -> BTreeSet<Rational> {
    r.iter().collect()
}

proptest! {
    #[test]
    fn rational_add_commutative(a in small_rational(), b in small_rational()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn rational_mul_distributes(a in small_rational(), b in small_rational(), c in small_rational()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn rational_normalized(a in small_rational(), b in small_rational()) {
        let s = a + b;
        // Normalization invariant: den > 0, gcd == 1.
        prop_assert!(s.den() > 0);
        let g = {
            let (mut x, mut y) = (s.num().unsigned_abs(), s.den().unsigned_abs());
            while y != 0 { let t = x % y; x = y; y = t; }
            x
        };
        prop_assert!(s.num() == 0 || g == 1);
    }

    #[test]
    fn rational_order_consistent_with_sub(a in small_rational(), b in small_rational()) {
        prop_assert_eq!(a < b, (a - b).is_negative());
        prop_assert_eq!(a == b, (a - b).is_zero());
    }

    #[test]
    fn rational_div_floor_matches_f64(a in small_rational(), b in pos_rational()) {
        let k = a.div_floor(b);
        prop_assert!(Rational::from_int(k) * b <= a);
        prop_assert!(Rational::from_int(k + 1) * b > a);
    }

    #[test]
    fn range_membership_matches_enumeration(r in small_range(), t in small_rational()) {
        prop_assert_eq!(r.contains(t), enumerate_range(&r).contains(&t));
    }

    #[test]
    fn range_intersect_matches_enumeration(a in small_range(), b in small_range()) {
        let got = enumerate_range(&a.intersect(&b));
        let want: BTreeSet<_> = enumerate_range(&a)
            .intersection(&enumerate_range(&b))
            .copied()
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn range_subtract_matches_enumeration(a in small_range(), b in small_range()) {
        let parts = a.subtract(&b);
        let mut got = BTreeSet::new();
        let mut total = 0u64;
        for p in &parts {
            total += p.count();
            got.extend(enumerate_range(p));
        }
        let want: BTreeSet<_> = enumerate_range(&a)
            .difference(&enumerate_range(&b))
            .copied()
            .collect();
        prop_assert_eq!(&got, &want);
        // Parts are disjoint: counts add up exactly.
        prop_assert_eq!(total as usize, want.len());
    }

    #[test]
    fn set_union_matches_enumeration(a in small_set(), b in small_set()) {
        let got = enumerate(&a.union(&b));
        let want: BTreeSet<_> = enumerate(&a).union(&enumerate(&b)).copied().collect();
        prop_assert_eq!(got, want);
        prop_assert_eq!(a.union(&b).count() as usize,
            enumerate(&a).union(&enumerate(&b)).count());
    }

    #[test]
    fn set_intersect_matches_enumeration(a in small_set(), b in small_set()) {
        let got = enumerate(&a.intersect(&b));
        let want: BTreeSet<_> = enumerate(&a).intersection(&enumerate(&b)).copied().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn set_difference_matches_enumeration(a in small_set(), b in small_set()) {
        let got = enumerate(&a.difference(&b));
        let want: BTreeSet<_> = enumerate(&a).difference(&enumerate(&b)).copied().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn set_subset_consistent(a in small_set(), b in small_set()) {
        let u = a.union(&b);
        prop_assert!(a.is_subset_of(&u));
        prop_assert!(b.is_subset_of(&u));
        prop_assert!(a.intersect(&b).is_subset_of(&a));
        prop_assert_eq!(a.is_subset_of(&b), enumerate(&a).is_subset(&enumerate(&b)));
    }

    #[test]
    fn set_iter_sorted(a in small_set()) {
        let v: Vec<_> = a.iter().collect();
        let mut sorted = v.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(v, sorted);
    }

    #[test]
    fn set_split_partition(a in small_set(), t in small_rational()) {
        let (lo, hi) = a.split_at(t);
        prop_assert!(lo.max().is_none_or(|m| m < t));
        prop_assert!(hi.min().is_none_or(|m| m >= t));
        prop_assert_eq!(lo.count() + hi.count(), a.count());
        prop_assert!(lo.union(&hi).set_eq(&a));
    }

    #[test]
    fn affine_roundtrip_set(a in small_set(), scale in pos_rational(), offset in small_rational()) {
        let m = AffineTimeMap::new(scale, offset);
        let img = m.apply_set(&a);
        prop_assert_eq!(img.count(), a.count());
        let back = m.inverse().apply_set(&img);
        prop_assert!(back.set_eq(&a));
    }
}
