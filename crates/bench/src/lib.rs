//! The V2V evaluation harness (paper §V).
//!
//! Provides the benchmark query suite, dataset setup with on-disk
//! caching, and the measurement protocol (N runs, first discarded,
//! mean reported — the paper's "averages of 5 runs were measured after
//! discarding an initial run").
//!
//! Scaling: the paper ran 3840×2160/3840×1714 sources on a 48-vCPU Xeon.
//! This harness defaults to 320×180 sources, 5 s short inputs (as the
//! paper) and 30 s "long" inputs (the paper used 60 s). Environment
//! overrides:
//!
//! * `V2V_BENCH_RUNS` — measured runs per cell (default 2, +1 discarded);
//! * `V2V_BENCH_LONG_SECS` — long-input seconds (default 30, paper 60);
//! * `V2V_BENCH_SCALE` — `test` / `bench` / `full` source resolution.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};
use v2v_container::VideoStream;
use v2v_core::{EngineConfig, V2vEngine};
use v2v_data::DataArray;
use v2v_datasets::{detections, generate, kabr_sim, tos_sim, DatasetSpec, DetectionProfile, Scale};
use v2v_exec::Catalog;
use v2v_frame::FrameType;
use v2v_spec::builder::{blur, bounding_box, grid4};
use v2v_spec::{OutputSettings, RenderExpr, Spec, SpecBuilder};
use v2v_time::{r, Rational};

/// A prepared benchmark dataset: stream + detections + naming.
pub struct BenchDataset {
    /// "tos" or "kabr".
    pub name: &'static str,
    /// Generator parameters.
    pub spec: DatasetSpec,
    /// The encoded source stream.
    pub stream: Arc<VideoStream>,
    /// Per-frame detections with the dataset's density profile.
    pub detections: DataArray,
}

/// Number of measured runs per cell.
pub fn bench_runs() -> usize {
    std::env::var("V2V_BENCH_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

/// Long-input ("1-minute" class) duration in seconds.
pub fn long_secs() -> i64 {
    std::env::var("V2V_BENCH_LONG_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30)
}

/// Source scale.
pub fn bench_scale() -> Scale {
    match std::env::var("V2V_BENCH_SCALE").as_deref() {
        Ok("test") => Scale::Test,
        Ok("full") => Scale::Full,
        _ => Scale::Bench,
    }
}

fn cache_dir() -> PathBuf {
    let dir = std::env::temp_dir().join("v2v_bench_cache");
    std::fs::create_dir_all(&dir).expect("cache dir is creatable");
    dir
}

fn cached_stream(spec: &DatasetSpec) -> VideoStream {
    let path = cache_dir().join(format!(
        "{}_{}x{}_{}s_q{}.svc",
        spec.name, spec.width, spec.height, spec.duration_s, spec.quantizer
    ));
    if path.exists() {
        if let Ok(s) = v2v_container::read_svc(&path) {
            if s.len() as u64 == spec.n_frames() {
                return s;
            }
        }
    }
    let s = generate(spec);
    let _ = v2v_container::write_svc(&s, &path);
    s
}

/// Seconds of source footage the suite needs for the given long-input
/// duration (4 spliced long segments + offsets).
fn source_secs(long: i64) -> i64 {
    4 * long + 60
}

/// Prepares the ToS-like dataset (cached).
pub fn setup_tos() -> BenchDataset {
    let spec = tos_sim(bench_scale(), source_secs(long_secs()));
    let stream = Arc::new(cached_stream(&spec));
    let dets = detections(&spec, DetectionProfile::tos(), "actor");
    BenchDataset {
        name: "tos",
        spec,
        stream,
        detections: dets,
    }
}

/// Prepares the KABR-like dataset (cached).
pub fn setup_kabr() -> BenchDataset {
    let spec = kabr_sim(bench_scale(), source_secs(long_secs()));
    let stream = Arc::new(cached_stream(&spec));
    let dets = detections(&spec, DetectionProfile::kabr(), "zebra");
    BenchDataset {
        name: "kabr",
        spec,
        stream,
        detections: dets,
    }
}

/// Output settings matched to a dataset (source-rate grid so pure clips
/// can stream-copy, like the paper's outputs that inherit source bytes).
pub fn output_for(ds: &BenchDataset) -> OutputSettings {
    OutputSettings {
        frame_ty: FrameType::yuv420p(ds.spec.width, ds.spec.height),
        frame_dur: ds.spec.frame_dur(),
        gop_size: ds.spec.fps as u32,
        quantizer: ds.spec.quantizer,
    }
}

/// The paper's benchmark queries. `Qn` for n in 1..=5 with 5 s inputs and
/// 6..=10 with long inputs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueryId {
    /// Clip a segment.
    Q1,
    /// Clip 4 segments, splice.
    Q2,
    /// Clip 4 segments, 2×2 grid.
    Q3,
    /// Clip + Gaussian blur.
    Q4,
    /// Clip + bounding boxes + class annotations (data join).
    Q5,
    /// Q1 with a long input.
    Q6,
    /// Q2 with long inputs.
    Q7,
    /// Q3 with long inputs.
    Q8,
    /// Q4 with a long input.
    Q9,
    /// Q5 with a long input.
    Q10,
}

impl QueryId {
    /// All ten queries in order.
    pub fn all() -> [QueryId; 10] {
        use QueryId::*;
        [Q1, Q2, Q3, Q4, Q5, Q6, Q7, Q8, Q9, Q10]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        use QueryId::*;
        match self {
            Q1 => "Q1",
            Q2 => "Q2",
            Q3 => "Q3",
            Q4 => "Q4",
            Q5 => "Q5",
            Q6 => "Q6",
            Q7 => "Q7",
            Q8 => "Q8",
            Q9 => "Q9",
            Q10 => "Q10",
        }
    }

    /// Input segment length for this query.
    pub fn input_secs(self) -> i64 {
        use QueryId::*;
        match self {
            Q1 | Q2 | Q3 | Q4 | Q5 => 5,
            _ => long_secs(),
        }
    }

    /// `true` for the data-join queries (Q5/Q10).
    pub fn joins_data(self) -> bool {
        matches!(self, QueryId::Q5 | QueryId::Q10)
    }
}

/// Segment start offsets (seconds). Chosen mid-GOP (x.5) so smart cuts
/// are exercised: with ToS's 10 s GOPs a 5 s clip from 12.5 s contains
/// no keyframe (the paper's "identical plans" Q1 case), while KABR's
/// 1 s GOPs always offer one.
fn offsets(len: i64) -> [Rational; 4] {
    [
        r(25, 2),                 // 12.5
        r(25, 2) + r(len + 2, 1), // after first segment
        r(25, 2) + r(2 * (len + 2), 1),
        r(25, 2) + r(3 * (len + 2), 1),
    ]
}

/// Builds the spec for a query against a dataset.
pub fn build_query(ds: &BenchDataset, q: QueryId) -> Spec {
    let len = q.input_secs();
    let secs = Rational::from_int(len);
    let off = offsets(len);
    let out = output_for(ds);
    use QueryId::*;
    match q {
        Q1 | Q6 => SpecBuilder::new(out)
            .video("src", "src.svc")
            .append_clip("src", off[0], secs)
            .build(),
        Q2 | Q7 => {
            let mut b = SpecBuilder::new(out).video("src", "src.svc");
            for o in off {
                b = b.append_clip("src", o, secs);
            }
            b.build()
        }
        Q3 | Q8 => SpecBuilder::new(out)
            .video("src", "src.svc")
            .append_with(secs, move |out_start| {
                let cell = |o: Rational| RenderExpr::FrameRef {
                    video: "src".into(),
                    time: v2v_time::AffineTimeMap::shift(o - out_start),
                };
                grid4(cell(off[0]), cell(off[1]), cell(off[2]), cell(off[3]))
            })
            .build(),
        Q4 | Q9 => SpecBuilder::new(out)
            .video("src", "src.svc")
            .append_filtered("src", off[0], secs, |e| blur(e, 1.2))
            .build(),
        Q5 | Q10 => SpecBuilder::new(out)
            .video("src", "src.svc")
            .data_array("dets", "catalog")
            .append_filtered("src", off[0], secs, |e| bounding_box(e, "dets"))
            .build(),
    }
}

/// A grid query the paper's suite does not include: four cells showing
/// the *same* footage one frame apart (an instant-replay mosaic). All
/// four cursors read overlapping source GOPs — the best case for the
/// shared decoded-GOP cache, which Q3/Q8's disjoint cells barely touch.
pub fn build_replay_grid(ds: &BenchDataset, len_secs: i64) -> Spec {
    let out = output_for(ds);
    let secs = Rational::from_int(len_secs);
    let base = r(25, 2);
    let step = ds.spec.frame_dur();
    SpecBuilder::new(out)
        .video("src", "src.svc")
        .append_with(secs, move |out_start| {
            let cell = |k: i64| RenderExpr::FrameRef {
                video: "src".into(),
                time: v2v_time::AffineTimeMap::shift(
                    base + step * Rational::from_int(k) - out_start,
                ),
            };
            grid4(cell(0), cell(1), cell(2), cell(3))
        })
        .build()
}

/// An execution arm for measurement.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Arm {
    /// Naive operator-at-a-time execution of the unoptimized plan.
    Unoptimized,
    /// Full V2V pipeline (dde + optimizer + parallel execution).
    Optimized,
    /// Optimizer without data-dependent rewrites.
    NoDde,
    /// Optimizer without smart cuts.
    NoSmartCut,
    /// Optimizer without stream copy (and hence no smart cut).
    NoStreamCopy,
    /// Optimizer without temporal sharding; serial execution.
    NoShardSerial,
}

impl Arm {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Arm::Unoptimized => "unopt",
            Arm::Optimized => "opt",
            Arm::NoDde => "opt-dde",
            Arm::NoSmartCut => "opt-smartcut",
            Arm::NoStreamCopy => "opt-copy",
            Arm::NoShardSerial => "opt-shard",
        }
    }

    fn config(self) -> EngineConfig {
        let mut cfg = EngineConfig::default();
        match self {
            Arm::Unoptimized | Arm::Optimized => {}
            Arm::NoDde => cfg.data_rewrites = false,
            Arm::NoSmartCut => cfg.optimizer.smart_cut = false,
            Arm::NoStreamCopy => {
                cfg.optimizer.stream_copy = false;
                cfg.optimizer.smart_cut = false;
            }
            Arm::NoShardSerial => {
                cfg.optimizer.shard = false;
                cfg.exec.parallel = false;
            }
        }
        cfg
    }
}

/// Builds an engine with the dataset bound under the names the query
/// specs use.
pub fn engine_for(ds: &BenchDataset, arm: Arm) -> V2vEngine {
    engine_with(ds, arm.config())
}

/// [`engine_for`] with an explicit config, for ablation harnesses that
/// toggle knobs no [`Arm`] covers (e.g. the decoded-GOP cache size).
pub fn engine_with(ds: &BenchDataset, config: EngineConfig) -> V2vEngine {
    let mut catalog = Catalog::new();
    catalog.add_video_arc("src", ds.stream.clone());
    catalog.add_array("dets", ds.detections.clone());
    V2vEngine::new(catalog).with_config(config)
}

/// One measured cell: mean wall time over the measured runs plus the
/// output size of the last run.
pub struct Measurement {
    /// Mean wall-clock duration.
    pub mean: Duration,
    /// Output stream size in bytes.
    pub output_bytes: u64,
    /// Output frame count.
    pub output_frames: usize,
}

/// Runs one `(query, arm)` cell with the paper's protocol.
///
/// When `V2V_TRACE_OUT_DIR` is set (and the arm uses the optimized
/// pipeline), one extra run per cell writes the same JSON trace
/// artifact the CLI's `--trace` flag produces, named
/// `<dataset>_<query>_<arm>.trace.json` — CI's bench-smoke step uploads
/// these alongside the metrics-snapshot traces.
pub fn measure(ds: &BenchDataset, q: QueryId, arm: Arm) -> Measurement {
    let spec = build_query(ds, q);
    let runs = bench_runs();
    let mut engine = engine_for(ds, arm);
    let mut total = Duration::ZERO;
    let mut output_bytes = 0;
    let mut output_frames = 0;
    for i in 0..=runs {
        let started = Instant::now();
        let report = match arm {
            Arm::Unoptimized => engine.run_unoptimized(&spec),
            _ => engine.run(&spec),
        }
        .unwrap_or_else(|e| panic!("{} {} {}: {e}", ds.name, q.label(), arm.label()));
        let elapsed = started.elapsed();
        if i > 0 {
            total += elapsed;
        }
        output_bytes = report.output.byte_size();
        output_frames = report.output.len();
    }
    if arm != Arm::Unoptimized {
        if let Ok(dir) = std::env::var("V2V_TRACE_OUT_DIR") {
            let trace = trace_query(ds, q, arm);
            let path = PathBuf::from(dir).join(format!(
                "{}_{}_{}.trace.json",
                ds.name,
                q.label(),
                arm.label()
            ));
            if let Err(e) = std::fs::write(&path, trace.to_json()) {
                eprintln!("warning: cannot write trace {}: {e}", path.display());
            }
        }
    }
    Measurement {
        mean: total / runs as u32,
        output_bytes,
        output_frames,
    }
}

/// Runs one `(query, arm)` cell once through the traced pipeline and
/// returns the observability artifact — the same JSON document the
/// CLI's `--trace` flag writes.
///
/// # Panics
/// On [`Arm::Unoptimized`]: the naive executor has no per-segment trace.
pub fn trace_query(ds: &BenchDataset, q: QueryId, arm: Arm) -> v2v_core::RunTrace {
    assert!(
        arm != Arm::Unoptimized,
        "the unoptimized arm has no trace; use an optimized arm"
    );
    let spec = build_query(ds, q);
    let mut engine = engine_for(ds, arm);
    let (_, trace) = engine
        .run_traced(&spec)
        .unwrap_or_else(|e| panic!("{} {} {}: {e}", ds.name, q.label(), arm.label()));
    trace
}

/// Formats a duration in seconds with millisecond precision.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Prints the standard harness header.
pub fn print_header(figure: &str, what: &str) {
    println!();
    println!("== {figure}: {what} ==");
    println!(
        "   (scale {:?}, long inputs {}s, {} measured runs, {} cpu(s); paper: 3840x2160-class sources, 60s, 5 runs, 48 vCPUs)",
        bench_scale(),
        long_secs(),
        bench_runs(),
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
}

/// Geometric mean of speedups.
pub fn geomean(ratios: &[f64]) -> f64 {
    if ratios.is_empty() {
        return f64::NAN;
    }
    (ratios.iter().map(|v| v.ln()).sum::<f64>() / ratios.len() as f64).exp()
}

/// Reference values the paper states in prose, for side-by-side printing.
pub mod paper {
    /// Average optimized-vs-unoptimized speedup on ToS (Fig. 3).
    pub const TOS_AVG_SPEEDUP: f64 = 3.44;
    /// Average optimized-vs-unoptimized speedup on KABR (Fig. 4).
    pub const KABR_AVG_SPEEDUP: f64 = 5.07;
    /// Q6 on KABR: 69 s → 4.3 s.
    pub const KABR_Q6_SPEEDUP: f64 = 16.0;
    /// Average speedup vs the Python+OpenCV baseline on the data-join
    /// queries (Fig. 5).
    pub const OPENCV_AVG_SPEEDUP: f64 = 4.4;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dataset(name: &'static str, kabr: bool) -> BenchDataset {
        let spec = if kabr {
            kabr_sim(Scale::Test, 50)
        } else {
            tos_sim(Scale::Test, 50)
        };
        let stream = Arc::new(generate(&spec));
        let dets = detections(
            &spec,
            if kabr {
                DetectionProfile::kabr()
            } else {
                DetectionProfile::tos()
            },
            "obj",
        );
        BenchDataset {
            name,
            spec,
            stream,
            detections: dets,
        }
    }

    #[test]
    fn all_short_queries_run_on_both_datasets() {
        for kabr in [false, true] {
            let ds = tiny_dataset("t", kabr);
            for q in [
                QueryId::Q1,
                QueryId::Q2,
                QueryId::Q3,
                QueryId::Q4,
                QueryId::Q5,
            ] {
                let spec = build_query(&ds, q);
                let mut opt = engine_for(&ds, Arm::Optimized);
                let r1 = opt.run(&spec).unwrap();
                let mut unopt = engine_for(&ds, Arm::Unoptimized);
                let r2 = unopt.run_unoptimized(&spec).unwrap();
                assert_eq!(r1.output.len(), r2.output.len(), "{q:?} kabr={kabr}");
                assert!(!r1.output.is_empty());
            }
        }
    }

    #[test]
    fn q1_smart_cut_fires_on_kabr_not_tos() {
        // The paper's flagship observation.
        let tos = tiny_dataset("tos", false);
        let spec = build_query(&tos, QueryId::Q1);
        let mut engine = engine_for(&tos, Arm::Optimized);
        engine.bind(&spec).unwrap();
        let (s, _) = engine.specialize(&spec);
        let (plan, _) = engine.plan(&s).unwrap();
        assert_eq!(plan.stats.smart_cuts, 0, "ToS 10s GOPs leave no keyframe");
        assert_eq!(plan.stats.frames_copied, 0);

        let kabr = tiny_dataset("kabr", true);
        let spec = build_query(&kabr, QueryId::Q1);
        let mut engine = engine_for(&kabr, Arm::Optimized);
        engine.bind(&spec).unwrap();
        let (s, _) = engine.specialize(&spec);
        let (plan, _) = engine.plan(&s).unwrap();
        assert_eq!(plan.stats.smart_cuts, 1, "KABR 1s GOPs enable the cut");
        assert!(plan.stats.frames_copied > 0);
    }

    #[test]
    fn q5_dde_copies_more_on_kabr() {
        let kabr = tiny_dataset("kabr", true);
        let spec = build_query(&kabr, QueryId::Q5);
        let mut with = engine_for(&kabr, Arm::Optimized);
        let r_with = with.run(&spec).unwrap();
        let mut without = engine_for(&kabr, Arm::NoDde);
        let r_without = without.run(&spec).unwrap();
        assert!(r_with.stats.packets_copied > 0, "sparse zebras → copies");
        assert_eq!(r_without.stats.packets_copied, 0);
        // Identical output content either way (lossy encode settings are
        // identical; compare frame count + decoded equality via markers is
        // covered in integration tests).
        assert_eq!(r_with.output.len(), r_without.output.len());

        let tos = tiny_dataset("tos", false);
        let spec = build_query(&tos, QueryId::Q5);
        let mut engine = engine_for(&tos, Arm::Optimized);
        let r_tos = engine.run(&spec).unwrap();
        assert!(
            r_tos.stats.packets_copied < r_with.stats.packets_copied,
            "dense ToS detections defeat the rewrite"
        );
    }

    #[test]
    fn trace_query_emits_schema_stable_json() {
        let ds = tiny_dataset("kabr", true);
        let trace = trace_query(&ds, QueryId::Q1, Arm::Optimized);
        assert!(trace.schema_version >= 1);
        assert!(trace.exec.totals.segments > 0);
        let back = v2v_core::RunTrace::from_json(&trace.to_json()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn geomean_sane() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert!(geomean(&[]).is_nan());
    }
}
