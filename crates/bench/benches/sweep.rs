//! Scaling sweep: how synthesis time grows with output duration.
//!
//! Extends the paper's fixed 5 s / 60 s grid to a duration sweep on the
//! KABR-like dataset, exposing the crossover structure: unoptimized
//! execution grows linearly with the clip length, while the optimized
//! pure-clip plan is near-flat (the head re-encode is constant; the copy
//! grows only with packet count). The filtered variant shows both arms
//! growing linearly with fused rendering keeping a constant-factor lead.

use std::time::{Duration, Instant};
use v2v_bench::{bench_runs, engine_for, output_for, secs, setup_kabr, Arm, BenchDataset};
use v2v_spec::builder::blur;
use v2v_spec::{Spec, SpecBuilder};
use v2v_time::{r, Rational};

fn clip_spec(ds: &BenchDataset, secs_len: i64) -> Spec {
    SpecBuilder::new(output_for(ds))
        .video("src", "src.svc")
        .append_clip("src", r(25, 2), Rational::from_int(secs_len))
        .build()
}

fn blur_spec(ds: &BenchDataset, secs_len: i64) -> Spec {
    SpecBuilder::new(output_for(ds))
        .video("src", "src.svc")
        .append_filtered("src", r(25, 2), Rational::from_int(secs_len), |e| {
            blur(e, 1.2)
        })
        .build()
}

fn run_cell(ds: &BenchDataset, spec: &Spec, arm: Arm) -> Duration {
    let runs = bench_runs();
    let mut engine = engine_for(ds, arm);
    let mut total = Duration::ZERO;
    for i in 0..=runs {
        let started = Instant::now();
        match arm {
            Arm::Unoptimized => engine.run_unoptimized(spec).expect("run"),
            _ => engine.run(spec).expect("run"),
        };
        if i > 0 {
            total += started.elapsed();
        }
    }
    total / runs as u32
}

fn main() {
    let ds = setup_kabr();
    let max = v2v_bench::long_secs();
    let durations: Vec<i64> = [1i64, 2, 5, 10, 20, 30, 60]
        .into_iter()
        .filter(|&d| d <= max)
        .collect();

    v2v_bench::print_header(
        "Sweep",
        "synthesis time vs output duration on the KABR-like dataset",
    );
    println!();
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12}",
        "secs", "clip unopt", "clip opt", "blur unopt", "blur opt"
    );
    for d in durations {
        let cs = clip_spec(&ds, d);
        let bs = blur_spec(&ds, d);
        println!(
            "{:<8} {:>12} {:>12} {:>12} {:>12}",
            d,
            secs(run_cell(&ds, &cs, Arm::Unoptimized)),
            secs(run_cell(&ds, &cs, Arm::Optimized)),
            secs(run_cell(&ds, &bs, Arm::Unoptimized)),
            secs(run_cell(&ds, &bs, Arm::Optimized)),
        );
    }
    println!();
    println!("expectation: 'clip opt' stays near-flat (smart cut: constant head");
    println!("re-encode + cheap copies); every other column grows linearly.");
}
