//! Scheduler ablation: static sharding vs runtime splitting vs the
//! decode-ahead pipeline.
//!
//! PR 3 replaced the segment-only rayon fan-out with a cost-based
//! scheduler (LPT dispatch, intra-segment pipelining, runtime splitting
//! of long renders at output-GOP boundaries). This harness isolates the
//! contribution of each mechanism on two plan shapes:
//!
//! * **Q8 (sharded)** — a long grid render whose output spans several
//!   GOPs, so the optimizer's static temporal sharding already produced
//!   multiple render segments; the scheduler should add nothing but
//!   must not regress. (The short-input Q3 is no use here: on ToS's
//!   10 s GOPs a 5 s render is smaller than one output GOP and never
//!   shards.)
//! * **Q10 (unsharded)** — static sharding disabled, so the whole long
//!   data-join render is *one* segment. The segment-only executor
//!   (`pipeline_depth = 0`, no splitting — the pre-scheduler engine's
//!   behaviour) serializes on it no matter how many workers exist;
//!   runtime splitting is the only way extra workers ever help. This is
//!   the row the `speedup` figure in `BENCH_scheduler.json` pins.
//!
//! Every arm is asserted byte-identical to the serial run. Wall-clock
//! speedups require real cores: on a 1-vCPU container the parallel arms
//! measure scheduling overhead (expected within noise), and the JSON
//! records the detected core count so readers can interpret the ratio.
//!
//! Known noise source: runs that hand frame allocation to a worker
//! thread can land in a fresh glibc malloc arena, where each large
//! frame buffer is mmap'd and returned to the OS on free — a minor-
//! fault storm that shows up as system time (observed ~17k faults /
//! +0.4 s stime vs ~300 faults on a warm arena, same workload). The
//! serial arm never spawns workers, so it is immune; treat outlier
//! parallel samples accordingly.
//!
//! `--quick` (CI bench smoke) forces test scale and a single measured
//! run, and skips rewriting the committed `BENCH_scheduler.json`.

use std::time::{Duration, Instant};
use v2v_bench::{bench_runs, build_query, engine_with, print_header, secs, setup_tos, QueryId};
use v2v_container::VideoStream;
use v2v_core::EngineConfig;
use v2v_exec::{execute, Catalog, ExecOptions, ExecStats};
use v2v_plan::PhysicalPlan;

/// Worker count for the parallel arms (the acceptance shape is "at
/// least 4 threads"; the pool is created regardless of physical cores).
const THREADS: usize = 4;

/// Paper-protocol measurement (first run discarded) of one arm.
fn measure_arm(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    opts: &ExecOptions,
) -> (Duration, VideoStream, ExecStats) {
    let runs = bench_runs();
    let mut total = Duration::ZERO;
    let mut last = None;
    for i in 0..=runs {
        let started = Instant::now();
        let (out, stats, _) = execute(plan, catalog, opts).expect("arm runs");
        if i > 0 {
            total += started.elapsed();
        }
        last = Some((out, stats));
    }
    let (out, stats) = last.expect("at least one run");
    (total / runs as u32, out, stats)
}

fn arms() -> Vec<(&'static str, ExecOptions)> {
    vec![
        (
            "serial",
            ExecOptions {
                parallel: false,
                ..Default::default()
            },
        ),
        (
            "segment-only",
            ExecOptions {
                num_threads: THREADS,
                pipeline_depth: 0,
                runtime_split: false,
                ..Default::default()
            },
        ),
        (
            "pipeline",
            ExecOptions {
                num_threads: THREADS,
                runtime_split: false,
                ..Default::default()
            },
        ),
        (
            "pipeline+split",
            ExecOptions {
                num_threads: THREADS,
                ..Default::default()
            },
        ),
    ]
}

struct Row {
    plan: &'static str,
    arm: &'static str,
    mean: Duration,
    splits: u64,
    steals: u64,
    segments: u64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    if quick {
        // CI smoke mode: smallest dataset, one measured run. Only set
        // the knobs the caller left open.
        if std::env::var("V2V_BENCH_SCALE").is_err() {
            std::env::set_var("V2V_BENCH_SCALE", "test");
        }
        if std::env::var("V2V_BENCH_RUNS").is_err() {
            std::env::set_var("V2V_BENCH_RUNS", "1");
        }
    }
    let ds = setup_tos();
    print_header(
        "Scheduler",
        "LPT dispatch + pipelining + runtime splitting, per mechanism (ToS)",
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!();
    println!("detected cores: {cores}; parallel arms use {THREADS} workers");
    println!();
    println!(
        "{:<14} {:<14} {:>10} {:>9} {:>8} {:>8} {:>10}",
        "plan", "arm", "mean (s)", "segments", "splits", "steals", "identical"
    );

    // (label, query, static sharding on?)
    let shapes: [(&str, QueryId, bool); 2] = [
        ("Q8-sharded", QueryId::Q8, true),
        ("Q10-unsharded", QueryId::Q10, false),
    ];
    let mut rows: Vec<Row> = Vec::new();
    for (plan_label, q, shard) in shapes {
        let mut cfg = EngineConfig::default();
        cfg.optimizer.shard = shard;
        let mut engine = engine_with(&ds, cfg);
        let spec = build_query(&ds, q);
        engine.bind(&spec).expect("bind");
        let (specialized, _) = engine.specialize(&spec);
        let (plan, _) = engine.plan(&specialized).expect("plan");
        let mut baseline: Option<VideoStream> = None;
        for (arm_label, opts) in arms() {
            let (mean, out, stats) = measure_arm(&plan, engine.catalog(), &opts);
            let identical = match &baseline {
                None => {
                    baseline = Some(out);
                    true
                }
                Some(b) => b.packets() == out.packets(),
            };
            assert!(identical, "{plan_label}/{arm_label}: output bytes diverged");
            println!(
                "{:<14} {:<14} {:>10} {:>9} {:>8} {:>8} {:>10}",
                plan_label,
                arm_label,
                secs(mean),
                stats.segments,
                stats.splits,
                stats.steals,
                "yes"
            );
            rows.push(Row {
                plan: plan_label,
                arm: arm_label,
                mean,
                splits: stats.splits,
                steals: stats.steals,
                segments: stats.segments,
            });
        }
    }

    let time_of = |plan: &str, arm: &str| {
        rows.iter()
            .find(|r| r.plan == plan && r.arm == arm)
            .expect("row measured")
            .mean
            .as_secs_f64()
    };
    let speedup = time_of("Q10-unsharded", "segment-only")
        / time_of("Q10-unsharded", "pipeline+split").max(1e-9);
    println!();
    println!(
        "single-long-render speedup (segment-only / pipeline+split @ {THREADS} threads): {speedup:.2}x"
    );
    if cores < THREADS {
        println!("note: only {cores} core(s) available — the ratio measures overhead, not parallel speedup.");
    }

    if quick {
        println!("(--quick: skipping BENCH_scheduler.json rewrite)");
        return;
    }
    let json = serde_json::json!({
        "bench": "scheduler",
        "dataset": ds.name,
        "threads": THREADS,
        "cores_detected": cores,
        "runs": bench_runs(),
        "rows": rows.iter().map(|r| serde_json::json!({
            "plan": r.plan,
            "arm": r.arm,
            "mean_s": r.mean.as_secs_f64(),
            "segments": r.segments,
            "splits": r.splits,
            "steals": r.steals,
        })).collect::<Vec<_>>(),
        "single_long_render_speedup": speedup,
        "byte_identical": true,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scheduler.json");
    std::fs::write(
        path,
        format!("{}\n", serde_json::to_string_pretty(&json).unwrap()),
    )
    .expect("write baseline");
    println!("wrote {path}");
}
