//! Fig. 4 reproduction: KABR dataset, Q1–Q10. The paper reports an
//! average 5.07× speedup, with Q6 the headline (~16×, 69 s → 4.3 s),
//! and Q1 *does* smart-cut here (keyframe every second).

use v2v_bench::{geomean, measure, paper, print_header, secs, setup_kabr, Arm, QueryId};

fn main() {
    let ds = setup_kabr();
    print_header(
        "Fig. 4",
        "V2V synthesis performance on the KABR-like dataset",
    );
    println!();
    println!(
        "{:<6} {:>10} {:>10} {:>9}  {:>12}",
        "query", "unopt (s)", "opt (s)", "speedup", "output"
    );
    let mut ratios = Vec::new();
    let mut q6 = 1.0;
    for q in QueryId::all() {
        let unopt = measure(&ds, q, Arm::Unoptimized);
        let opt = measure(&ds, q, Arm::Optimized);
        let ratio = unopt.mean.as_secs_f64() / opt.mean.as_secs_f64().max(1e-9);
        if q == QueryId::Q6 {
            q6 = ratio;
        }
        ratios.push(ratio);
        println!(
            "{:<6} {:>10} {:>10} {:>8.2}x  {:>9} KiB",
            q.label(),
            secs(unopt.mean),
            secs(opt.mean),
            ratio,
            opt.output_bytes / 1024,
        );
    }
    println!();
    println!(
        "average speedup (geomean): {:.2}x   | paper reports {:.2}x",
        geomean(&ratios),
        paper::KABR_AVG_SPEEDUP
    );
    println!(
        "Q6 speedup: {:.1}x   | paper reports ~{:.0}x (69 s → 4.3 s)",
        q6,
        paper::KABR_Q6_SPEEDUP
    );
    println!(
        "Q1 expectation: smart cut applies (unlike ToS) — measured {:.2}x",
        ratios[0]
    );
}
