//! Criterion micro-benchmarks for the substrate layers: rational/time-set
//! algebra, codec throughput, planning latency, and the data-dependent
//! rewriter. These back the "optimizer overhead is negligible next to
//! raster work" claim with numbers.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;
use v2v_codec::{Decoder, Encoder};
use v2v_datasets::{detections, kabr_sim, render_frame, DetectionProfile, Scale};
use v2v_exec::Catalog;
use v2v_frame::FrameType;
use v2v_plan::{lower_spec, optimize, OptimizerConfig};
use v2v_spec::builder::{blur, bounding_box};
use v2v_spec::SpecBuilder;
use v2v_time::{r, Rational, TimeRange, TimeSet};

fn bench_rational(c: &mut Criterion) {
    let mut g = c.benchmark_group("rational");
    g.bench_function("add", |b| {
        let x = r(30000, 1001);
        let y = r(1, 24);
        b.iter(|| black_box(black_box(x) + black_box(y)));
    });
    g.bench_function("cmp", |b| {
        let x = r(30000, 1001);
        let y = r(2997, 100);
        b.iter(|| black_box(black_box(x).cmp(&black_box(y))));
    });
    g.finish();
}

fn bench_timeset(c: &mut Criterion) {
    let mut g = c.benchmark_group("timeset");
    let a = TimeSet::from_range(TimeRange::new(r(0, 1), r(600, 1), r(1, 30)));
    let b = TimeSet::from_range(TimeRange::new(r(100, 1), r(400, 1), r(1, 30)));
    g.bench_function("intersect_18k", |bch| {
        bch.iter(|| black_box(black_box(&a).intersect(black_box(&b))));
    });
    g.bench_function("difference_18k", |bch| {
        bch.iter(|| black_box(black_box(&a).difference(black_box(&b))));
    });
    g.bench_function("subset_18k", |bch| {
        bch.iter(|| black_box(black_box(&b).is_subset_of(black_box(&a))));
    });
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let spec = kabr_sim(Scale::Bench, 2);
    let params = spec.codec_params();
    let frames: Vec<_> = (0..16).map(|i| render_frame(&spec, i)).collect();
    let pixels = (spec.width * spec.height) as u64 * frames.len() as u64;

    let mut g = c.benchmark_group("codec");
    g.throughput(Throughput::Elements(pixels));
    g.bench_function("encode_320x180_gop", |b| {
        b.iter_batched(
            || Encoder::new(params),
            |mut enc| {
                for (i, f) in frames.iter().enumerate() {
                    black_box(enc.encode(f, Rational::new(i as i64, 30)).unwrap());
                }
            },
            BatchSize::SmallInput,
        );
    });
    let packets: Vec<_> = {
        let mut enc = Encoder::new(params);
        frames
            .iter()
            .enumerate()
            .map(|(i, f)| enc.encode(f, Rational::new(i as i64, 30)).unwrap())
            .collect()
    };
    g.bench_function("decode_320x180_gop", |b| {
        b.iter_batched(
            || Decoder::new(params),
            |mut dec| {
                for p in &packets {
                    black_box(dec.decode(p).unwrap());
                }
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_kernel(c: &mut Criterion) {
    use v2v_codec::bitstream::Reader;
    use v2v_codec::{inter, intra, Preset};
    use v2v_frame::Plane;

    // Luma planes of two adjacent synthetic frames: `intra` codes the
    // current plane standalone, `inter` codes it against the previous
    // reconstruction (here: the previous source plane — fidelity is
    // irrelevant to throughput).
    let spec = kabr_sim(Scale::Bench, 2);
    let plane = render_frame(&spec, 8).plane(0).clone();
    let reference = render_frame(&spec, 7).plane(0).clone();
    let pixels = (plane.width() * plane.height()) as u64;
    let qstep = 2;

    let mut g = c.benchmark_group("kernel");
    g.throughput(Throughput::Elements(pixels));
    g.bench_function("intra_encode_320x180", |b| {
        let mut out = Vec::new();
        let mut recon = Plane::new(plane.width(), plane.height());
        b.iter(|| {
            out.clear();
            intra::encode_plane_into(
                black_box(&plane),
                qstep,
                Preset::Medium,
                &mut out,
                &mut recon,
            );
            black_box(out.len());
        });
    });
    let mut intra_payload = Vec::new();
    intra::encode_plane(&plane, qstep, Preset::Medium, &mut intra_payload);
    g.bench_function("intra_decode_320x180", |b| {
        let mut recon = Plane::new(plane.width(), plane.height());
        b.iter(|| {
            let mut rd = Reader::new(black_box(&intra_payload));
            intra::decode_plane_into(&mut rd, qstep, Preset::Medium, &mut recon).unwrap();
            black_box(recon.data()[0]);
        });
    });
    g.bench_function("inter_encode_320x180", |b| {
        let mut out = Vec::new();
        let mut recon = Plane::new(plane.width(), plane.height());
        b.iter(|| {
            out.clear();
            inter::encode_plane_into(
                black_box(&plane),
                black_box(&reference),
                qstep,
                Preset::Medium,
                &mut out,
                &mut recon,
            );
            black_box(out.len());
        });
    });
    let mut inter_payload = Vec::new();
    inter::encode_plane(
        &plane,
        &reference,
        qstep,
        Preset::Medium,
        &mut inter_payload,
    );
    g.bench_function("inter_decode_320x180", |b| {
        let mut recon = Plane::new(plane.width(), plane.height());
        b.iter(|| {
            let mut rd = Reader::new(black_box(&inter_payload));
            inter::decode_plane_into(&mut rd, black_box(&reference), qstep, &mut recon).unwrap();
            black_box(recon.data()[0]);
        });
    });
    g.finish();
}

fn bench_gop_cache(c: &mut Criterion) {
    use v2v_exec::{GopCache, SourceCursor};

    // Sequential scan of a 2 s stream: the cold path decodes every
    // packet; the warm path serves whole GOPs as refcount bumps out of a
    // pre-populated shared cache (the steady state of grid queries where
    // several cells read the same source).
    let stream = v2v_datasets::generate(&kabr_sim(Scale::Bench, 2));
    let n = stream.len() as u64;

    let mut g = c.benchmark_group("gop_cache");
    g.throughput(Throughput::Elements(n));
    g.bench_function("cold_decode_2s", |b| {
        b.iter(|| {
            let mut cur = SourceCursor::new(&stream, "src");
            for i in 0..n {
                black_box(cur.frame_at(i).unwrap());
            }
        });
    });
    let cache = GopCache::new(4096);
    {
        let mut warm = SourceCursor::new(&stream, "src").with_cache(&cache);
        for i in 0..n {
            warm.frame_at(i).unwrap();
        }
    }
    g.bench_function("warm_cache_2s", |b| {
        b.iter(|| {
            let mut cur = SourceCursor::new(&stream, "src").with_cache(&cache);
            for i in 0..n {
                black_box(cur.frame_at(i).unwrap());
            }
        });
    });
    g.finish();
}

fn bench_planning(c: &mut Criterion) {
    // Planning latency on a 60 s annotated query: the paper's claim is
    // that optimization is cheap next to execution.
    let spec_ds = kabr_sim(Scale::Test, 70);
    let stream = v2v_datasets::generate(&kabr_sim(Scale::Test, 70));
    let dets = detections(&spec_ds, DetectionProfile::kabr(), "zebra");
    let mut catalog = Catalog::new();
    catalog.add_video("src", stream);
    catalog.add_array("dets", dets.clone());
    let output = v2v_spec::OutputSettings {
        frame_ty: FrameType::yuv420p(128, 72),
        frame_dur: r(1, 30),
        gop_size: 30,
        quantizer: 2,
    };
    let spec = SpecBuilder::new(output)
        .video("src", "src.svc")
        .data_array("dets", "catalog")
        .append_filtered("src", r(1, 1), r(60, 1), |e| {
            blur(bounding_box(e, "dets"), 1.0)
        })
        .build();
    let ctx = catalog.plan_context();

    let mut g = c.benchmark_group("planning");
    g.bench_function("lower_60s_spec", |b| {
        b.iter(|| black_box(lower_spec(black_box(&spec)).unwrap()));
    });
    let logical = lower_spec(&spec).unwrap();
    g.bench_function("optimize_60s_plan", |b| {
        b.iter(|| {
            black_box(
                optimize(
                    black_box(&logical),
                    black_box(&ctx),
                    &OptimizerConfig::default(),
                )
                .unwrap(),
            )
        });
    });
    g.bench_function("dde_rewrite_60s_spec", |b| {
        let arrays = catalog.arrays().clone();
        b.iter(|| black_box(v2v_core::rewrite_spec(black_box(&spec), black_box(&arrays))));
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_rational, bench_timeset, bench_codec, bench_kernel, bench_gop_cache, bench_planning
}
criterion_main!(benches);
