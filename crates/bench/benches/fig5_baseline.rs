//! Fig. 5 reproduction: the data-join queries (Q5/Q10) against the
//! equivalent frame-centric (Python + OpenCV style) script on both
//! datasets. The paper reports an average 4.4× speedup, with the KABR
//! dataset gaining extra from data-aware rewrites (sparse detections →
//! stream copies), while ToS's near-every-frame objects limit V2V to the
//! fused-pipeline win.

use std::time::Duration;
use v2v_baseline::{run_script, ScriptOp};
use v2v_bench::{
    bench_runs, build_query, engine_for, geomean, measure, paper, print_header, secs, setup_kabr,
    setup_tos, Arm, BenchDataset, QueryId,
};

fn baseline_cell(ds: &BenchDataset, q: QueryId) -> Duration {
    // The script clips [off, off + len) and draws boxes per frame.
    let len_frames = (q.input_secs() * ds.spec.fps) as u64;
    let from = (ds.spec.fps as f64 * 12.5) as u64;
    let runs = bench_runs();
    let mut total = Duration::ZERO;
    for i in 0..=runs {
        let (_, stats) = run_script(
            &ds.stream,
            from,
            from + len_frames,
            ScriptOp::DrawBoxes(&ds.detections),
            ds.spec.codec_params(),
        )
        .expect("baseline runs");
        if i > 0 {
            total += stats.wall;
        }
    }
    total / runs as u32
}

fn main() {
    print_header(
        "Fig. 5",
        "data-join queries (Q5/Q10) vs the frame-centric OpenCV-style script",
    );
    println!();
    println!(
        "{:<14} {:>12} {:>10} {:>9}",
        "cell", "opencv (s)", "v2v (s)", "speedup"
    );
    let mut ratios = Vec::new();
    for (ds, label) in [(setup_tos(), "tos"), (setup_kabr(), "kabr")] {
        for q in [QueryId::Q5, QueryId::Q10] {
            let base = baseline_cell(&ds, q);
            let v2v = measure(&ds, q, Arm::Optimized);
            let ratio = base.as_secs_f64() / v2v.mean.as_secs_f64().max(1e-9);
            ratios.push(ratio);
            println!(
                "{:<14} {:>12} {:>10} {:>8.2}x",
                format!("{}/{}", label, q.label()),
                secs(base),
                secs(v2v.mean),
                ratio,
            );
            // Show where the win comes from: copies on KABR, none on ToS.
            let spec = build_query(&ds, q);
            let mut engine = engine_for(&ds, Arm::Optimized);
            let report = engine.run(&spec).unwrap();
            println!(
                "{:<14} {:>12}",
                "",
                format!(
                    "(dde rewrites {}, packets copied {})",
                    report.dde_rewrites, report.stats.packets_copied
                )
            );
        }
    }
    println!();
    println!(
        "average speedup (geomean): {:.2}x   | paper reports {:.1}x",
        geomean(&ratios),
        paper::OPENCV_AVG_SPEEDUP
    );
    println!("expectation: KABR cells beat ToS cells (sparse detections → stream copies)");
}
