//! Serving bench: closed-loop latency and throughput of the `v2v-serve`
//! daemon at 1 / 4 / 8 concurrent clients, cold cache vs warm cache.
//!
//! The in-process server (real sockets, real HTTP, real admission
//! control — only the process boundary is elided) is driven by
//! closed-loop clients: each issues its next request the moment the
//! previous response lands, so measured latency includes queueing
//! behind `max_concurrent` admission.
//!
//! * **cold** — every request is a distinct query (unique source range)
//!   against an initially empty render cache: each one pays the full
//!   render. The per-client latency growth from 1 → 8 clients is the
//!   admission-control queueing the paper's serving section predicts.
//! * **warm** — every request repeats one pre-rendered query: each is a
//!   whole-result cache hit (zero decode, zero encode), so the ratio
//!   cold/warm mean latency is the cache's synthesis-skipping payoff.
//!
//! Every warm response is asserted byte-identical to the warm-up
//! render. `--quick` (CI smoke) shrinks the workload and skips
//! rewriting the committed `BENCH_serve.json`.

use std::sync::Arc;
use std::time::{Duration, Instant};
use v2v_bench::{print_header, secs};
use v2v_exec::{Catalog, RenderCache};
use v2v_serve::http::client;
use v2v_serve::{ServeConfig, V2vServer};
use v2v_spec::builder::blur;
use v2v_spec::{OutputSettings, Spec, SpecBuilder};
use v2v_time::{r, Rational};

const CLIENT_COUNTS: [usize; 3] = [1, 4, 8];

fn marked_output() -> OutputSettings {
    OutputSettings {
        frame_ty: v2v_frame::FrameType::gray8(64, 32),
        frame_dur: r(1, 30),
        gop_size: 30,
        quantizer: 0,
    }
}

fn source_stream(frames: usize) -> v2v_container::VideoStream {
    let ty = v2v_frame::FrameType::gray8(64, 32);
    let params = v2v_codec::CodecParams::new(ty, 30, 0);
    let mut w = v2v_container::StreamWriter::new(params, v2v_time::Rational::ZERO, r(1, 30));
    for i in 0..frames {
        let mut f = v2v_frame::Frame::black(ty);
        v2v_frame::marker::embed(&mut f, i as u32);
        w.push_frame(&f).expect("push frame");
    }
    w.finish().expect("finish stream")
}

/// A distinct render-heavy query per `seq`: a blur over a unique
/// source window, so no two cold requests share a cache entry.
fn distinct_spec(seq: usize, dur_frames: i64) -> Spec {
    SpecBuilder::new(marked_output())
        .video("src", "src.svc")
        .append_filtered(
            "src",
            r(seq as i64, 30),
            Rational::new(dur_frames, 30),
            |e| blur(e, 1.0),
        )
        .build()
}

struct PhaseResult {
    wall: Duration,
    latencies: Vec<Duration>,
}

/// Closed loop: `clients` threads, `per_client` requests each, next
/// request issued as soon as the previous response arrives.
fn drive(
    addr: std::net::SocketAddr,
    clients: usize,
    per_client: usize,
    spec_for: impl Fn(usize, usize) -> Arc<Vec<u8>> + Send + Sync + Clone + 'static,
    expect_body: Option<&Arc<Vec<u8>>>,
) -> PhaseResult {
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let expect = expect_body.map(Arc::clone);
            let spec_for = spec_for.clone();
            std::thread::spawn(move || {
                let mut lat = Vec::with_capacity(per_client);
                for i in 0..per_client {
                    let body = spec_for(c, i);
                    let t = Instant::now();
                    let resp = client::post_query(addr, &body).expect("request");
                    lat.push(t.elapsed());
                    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
                    if let Some(expect) = &expect {
                        assert_eq!(&resp.body, expect.as_ref(), "warm bytes diverged");
                    }
                }
                lat
            })
        })
        .collect();
    let mut latencies = Vec::new();
    for h in handles {
        latencies.extend(h.join().expect("client thread"));
    }
    PhaseResult {
        wall: started.elapsed(),
        latencies,
    }
}

fn mean(lat: &[Duration]) -> Duration {
    lat.iter().sum::<Duration>() / lat.len().max(1) as u32
}

fn max(lat: &[Duration]) -> Duration {
    lat.iter().max().copied().unwrap_or(Duration::ZERO)
}

struct Row {
    phase: &'static str,
    clients: usize,
    requests: usize,
    mean: Duration,
    max: Duration,
    wall: Duration,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("V2V_BENCH_SCALE").is_ok_and(|s| s == "test");
    let per_client = if quick { 2 } else { 8 };
    let dur_frames: i64 = if quick { 30 } else { 60 };
    let source_frames = 1200;

    print_header(
        "Serving",
        "closed-loop latency/throughput, cold vs warm render cache",
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!();
    println!("detected cores: {cores}; {per_client} request(s) per client per phase");

    let mut catalog = Catalog::new();
    catalog.add_video("src", source_stream(source_frames));

    let cache_dir = std::env::temp_dir().join(format!("v2v_bench_serve_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let mut config = ServeConfig {
        max_concurrent: 4,
        queue_depth: 64,
        ..Default::default()
    };
    config.engine.render_cache = Some(Arc::new(
        RenderCache::open(&cache_dir, 1 << 30).expect("cache dir"),
    ));
    let mut handle = V2vServer::new(catalog)
        .with_config(config)
        .start("127.0.0.1:0")
        .expect("bind");
    let addr = handle.addr();

    // Warm exactly one query; its bytes are the warm phase's expected
    // response.
    let warm_spec = Arc::new(distinct_spec(900, dur_frames).to_json().into_bytes());
    let warm_resp = client::post_query(addr, &warm_spec).expect("warm-up");
    assert_eq!(warm_resp.status, 200);
    let warm_body = Arc::new(warm_resp.body);

    println!();
    println!(
        "{:<6} {:>8} {:>9} {:>12} {:>12} {:>12}",
        "phase", "clients", "requests", "mean lat", "max lat", "req/s"
    );
    let mut rows: Vec<Row> = Vec::new();
    // Distinct cold queries across all arms: client c of arm a gets the
    // window starting at frame (arm_base + c*per_client + i).
    let mut arm_base = 0usize;
    for clients in CLIENT_COUNTS {
        let base = arm_base;
        arm_base += clients * per_client;
        assert!(
            arm_base + dur_frames as usize <= 900,
            "cold windows must stay distinct from the warm query"
        );
        for (phase, result) in [
            (
                "cold",
                drive(
                    addr,
                    clients,
                    per_client,
                    move |c, i| {
                        Arc::new(
                            distinct_spec(base + c * per_client + i, dur_frames)
                                .to_json()
                                .into_bytes(),
                        )
                    },
                    None,
                ),
            ),
            ("warm", {
                let warm_spec = Arc::clone(&warm_spec);
                drive(
                    addr,
                    clients,
                    per_client,
                    move |_, _| Arc::clone(&warm_spec),
                    Some(&warm_body),
                )
            }),
        ] {
            let requests = clients * per_client;
            let rps = requests as f64 / result.wall.as_secs_f64().max(1e-9);
            println!(
                "{:<6} {:>8} {:>9} {:>12} {:>12} {:>12.1}",
                phase,
                clients,
                requests,
                secs(mean(&result.latencies)),
                secs(max(&result.latencies)),
                rps
            );
            rows.push(Row {
                phase,
                clients,
                requests,
                mean: mean(&result.latencies),
                max: max(&result.latencies),
                wall: result.wall,
            });
        }
    }

    let mean_of = |phase: &str, clients: usize| {
        rows.iter()
            .find(|r| r.phase == phase && r.clients == clients)
            .expect("row measured")
            .mean
            .as_secs_f64()
    };
    let hit_speedup = mean_of("cold", 1) / mean_of("warm", 1).max(1e-9);
    println!();
    println!("single-client cache-hit speedup (cold mean / warm mean): {hit_speedup:.1}x");

    let (done, failed, rejected) = handle.job_counts();
    println!("daemon counters: {done} done, {failed} failed, {rejected} rejected");
    assert_eq!(failed, 0, "no request may fail");

    handle.stop();
    let _ = std::fs::remove_dir_all(&cache_dir);

    if quick {
        println!("(--quick: skipping BENCH_serve.json rewrite)");
        return;
    }
    let json = serde_json::json!({
        "bench": "serve",
        "cores_detected": cores,
        "max_concurrent": 4,
        "per_client_requests": per_client,
        "rows": rows.iter().map(|r| serde_json::json!({
            "phase": r.phase,
            "clients": r.clients,
            "requests": r.requests,
            "mean_latency_s": r.mean.as_secs_f64(),
            "max_latency_s": r.max.as_secs_f64(),
            "throughput_rps": r.requests as f64 / r.wall.as_secs_f64().max(1e-9),
        })).collect::<Vec<_>>(),
        "single_client_hit_speedup": hit_speedup,
        "warm_byte_identical": true,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(
        path,
        format!("{}\n", serde_json::to_string_pretty(&json).unwrap()),
    )
    .expect("write baseline");
    println!("wrote {path}");
}
