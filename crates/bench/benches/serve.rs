//! Serving bench: closed-loop latency and throughput of the `v2v-serve`
//! daemon at 1 / 4 / 8 concurrent clients, cold cache vs warm cache,
//! plus the multi-query work-sharing arms.
//!
//! The in-process server (real sockets, real HTTP, real admission
//! control — only the process boundary is elided) is driven by
//! closed-loop clients: each issues its next request the moment the
//! previous response lands, so measured latency includes queueing
//! behind `max_concurrent` admission.
//!
//! * **cold** — every request is a distinct query (unique source range)
//!   against an initially empty render cache: each one pays the full
//!   render. The per-client latency growth from 1 → 8 clients is the
//!   admission-control queueing the paper's serving section predicts.
//! * **warm** — every request repeats one pre-rendered query: each is a
//!   whole-result cache hit (zero decode, zero encode), so the ratio
//!   cold/warm mean latency is the cache's synthesis-skipping payoff.
//! * **dup** — duplicate-heavy: every round, all N clients post the
//!   *same* fresh query simultaneously (barrier-released), so nothing
//!   is cached yet when the burst lands. With sharing (`share` arm)
//!   one render serves the round; the `noshare` arm renders N times.
//! * **overlap** — overlap-heavy: every round, client c posts a
//!   two-clip query shifted one clip from client c−1, so adjacent
//!   clients share 50% of their segments. The `share` arm renders each
//!   common clip once via the daemon-wide fragment flight.
//!
//! Every warm response is asserted byte-identical to the warm-up
//! render, and every `share`-arm response byte-identical to its
//! `noshare` counterpart — sharing must be invisible in the bytes.
//! `--quick` (CI smoke) shrinks the workload and skips rewriting the
//! committed `BENCH_serve.json`.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};
use v2v_bench::{print_header, secs};
use v2v_exec::{Catalog, RenderCache};
use v2v_serve::http::client;
use v2v_serve::{ServeConfig, ServeRole, StoreServeConfig, V2vServer};
use v2v_spec::builder::blur;
use v2v_spec::{OutputSettings, Spec, SpecBuilder};
use v2v_time::{r, Rational};

const CLIENT_COUNTS: [usize; 3] = [1, 4, 8];
const SHARE_CLIENT_COUNTS: [usize; 2] = [4, 8];

fn marked_output() -> OutputSettings {
    OutputSettings {
        frame_ty: v2v_frame::FrameType::gray8(64, 32),
        frame_dur: r(1, 30),
        gop_size: 30,
        quantizer: 0,
    }
}

fn source_stream(frames: usize) -> v2v_container::VideoStream {
    let ty = v2v_frame::FrameType::gray8(64, 32);
    let params = v2v_codec::CodecParams::new(ty, 30, 0);
    let mut w = v2v_container::StreamWriter::new(params, v2v_time::Rational::ZERO, r(1, 30));
    for i in 0..frames {
        let mut f = v2v_frame::Frame::black(ty);
        v2v_frame::marker::embed(&mut f, i as u32);
        w.push_frame(&f).expect("push frame");
    }
    w.finish().expect("finish stream")
}

/// A distinct render-heavy query per `seq`: a blur over a unique
/// source window, so no two cold requests share a cache entry.
fn distinct_spec(seq: usize, dur_frames: i64) -> Spec {
    SpecBuilder::new(marked_output())
        .video("src", "src.svc")
        .append_filtered(
            "src",
            r(seq as i64, 30),
            Rational::new(dur_frames, 30),
            |e| blur(e, 1.0),
        )
        .build()
}

/// How many one-second clips each shared-workload query concatenates.
const SHARE_CLIPS: i64 = 2;

/// The shared workloads render a larger frame (16× the pixels of the
/// cold/warm source), so per-request planning and HTTP overhead —
/// which sharing cannot remove — stays small next to the render work
/// it does remove.
fn big_output() -> OutputSettings {
    OutputSettings {
        frame_ty: v2v_frame::FrameType::gray8(128, 128),
        frame_dur: r(1, 30),
        gop_size: 30,
        quantizer: 0,
    }
}

fn big_source_stream(frames: usize) -> v2v_container::VideoStream {
    let ty = v2v_frame::FrameType::gray8(128, 128);
    let params = v2v_codec::CodecParams::new(ty, 30, 0);
    let mut w = v2v_container::StreamWriter::new(params, v2v_time::Rational::ZERO, r(1, 30));
    for i in 0..frames {
        let mut f = v2v_frame::Frame::black(ty);
        v2v_frame::marker::embed(&mut f, i as u32);
        w.push_frame(&f).expect("push frame");
    }
    w.finish().expect("finish stream")
}

/// A query on a global one-second clip grid over the big source:
/// `SHARE_CLIPS` consecutive clips starting at `first_clip`, each
/// blurred. Two queries whose `first_clip` values differ by
/// `SHARE_CLIPS / 2` share half their clips — the 50% segment overlap
/// the `overlap` workload measures.
fn overlap_spec(first_clip: i64) -> Spec {
    let mut b = SpecBuilder::new(big_output()).video("big", "big.svc");
    for clip in first_clip..first_clip + SHARE_CLIPS {
        b = b.append_filtered("big", r(clip, 1), r(1, 1), |e| blur(e, 1.0));
    }
    b.build()
}

struct PhaseResult {
    wall: Duration,
    latencies: Vec<Duration>,
}

/// Closed loop: `clients` threads, `per_client` requests each, next
/// request issued as soon as the previous response arrives.
fn drive(
    addr: std::net::SocketAddr,
    clients: usize,
    per_client: usize,
    spec_for: impl Fn(usize, usize) -> Arc<Vec<u8>> + Send + Sync + Clone + 'static,
    expect_body: Option<&Arc<Vec<u8>>>,
) -> PhaseResult {
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let expect = expect_body.map(Arc::clone);
            let spec_for = spec_for.clone();
            std::thread::spawn(move || {
                let mut lat = Vec::with_capacity(per_client);
                for i in 0..per_client {
                    let body = spec_for(c, i);
                    let t = Instant::now();
                    let resp = client::post_query(addr, &body).expect("request");
                    lat.push(t.elapsed());
                    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
                    if let Some(expect) = &expect {
                        assert_eq!(&resp.body, expect.as_ref(), "warm bytes diverged");
                    }
                }
                lat
            })
        })
        .collect();
    let mut latencies = Vec::new();
    for h in handles {
        latencies.extend(h.join().expect("client thread"));
    }
    PhaseResult {
        wall: started.elapsed(),
        latencies,
    }
}

/// Barrier-released closed loop: every round, all `clients` threads
/// post simultaneously so a fresh (uncached) query actually arrives as
/// a concurrent burst. Returns the latencies plus every response body
/// as `[client][round]` for cross-arm byte-identity checks.
fn drive_rounds(
    addr: std::net::SocketAddr,
    clients: usize,
    rounds: usize,
    spec_for: impl Fn(usize, usize) -> Arc<Vec<u8>> + Send + Sync + Clone + 'static,
) -> (PhaseResult, Vec<Vec<Vec<u8>>>) {
    let barrier = Arc::new(Barrier::new(clients));
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let spec_for = spec_for.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut lat = Vec::with_capacity(rounds);
                let mut bodies = Vec::with_capacity(rounds);
                for round in 0..rounds {
                    let body = spec_for(c, round);
                    barrier.wait();
                    let t = Instant::now();
                    let resp = client::post_query(addr, &body).expect("request");
                    lat.push(t.elapsed());
                    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
                    bodies.push(resp.body);
                }
                (lat, bodies)
            })
        })
        .collect();
    let mut latencies = Vec::new();
    let mut all_bodies = Vec::new();
    for h in handles {
        let (lat, bodies) = h.join().expect("client thread");
        latencies.extend(lat);
        all_bodies.push(bodies);
    }
    (
        PhaseResult {
            wall: started.elapsed(),
            latencies,
        },
        all_bodies,
    )
}

fn mean(lat: &[Duration]) -> Duration {
    lat.iter().sum::<Duration>() / lat.len().max(1) as u32
}

fn max(lat: &[Duration]) -> Duration {
    lat.iter().max().copied().unwrap_or(Duration::ZERO)
}

struct Row {
    phase: &'static str,
    arm: &'static str,
    clients: usize,
    requests: usize,
    mean: Duration,
    max: Duration,
    wall: Duration,
}

fn print_row(row: &Row) {
    let rps = row.requests as f64 / row.wall.as_secs_f64().max(1e-9);
    println!(
        "{:<8} {:<8} {:>8} {:>9} {:>12} {:>12} {:>12.1}",
        row.phase,
        row.arm,
        row.clients,
        row.requests,
        secs(row.mean),
        secs(row.max),
        rps
    );
}

/// One sharing-arm server: fresh cache dir, fresh daemon.
fn start_arm(
    catalog: &Catalog,
    work_sharing: bool,
    tag: &str,
) -> (v2v_serve::ServerHandle, std::path::PathBuf) {
    let cache_dir =
        std::env::temp_dir().join(format!("v2v_bench_serve_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let mut config = ServeConfig {
        max_concurrent: 4,
        queue_depth: 64,
        work_sharing,
        ..Default::default()
    };
    config.engine.render_cache = Some(Arc::new(
        RenderCache::open(&cache_dir, 1 << 30)
            .expect("cache dir")
            .with_mem_tier(64 << 20),
    ));
    let handle = V2vServer::new(catalog.clone())
        .with_config(config)
        .start("127.0.0.1:0")
        .expect("bind");
    (handle, cache_dir)
}

fn status_counter(addr: std::net::SocketAddr, path: &[&str]) -> u64 {
    let resp = client::request(addr, "GET", "/status", b"").expect("status");
    let v: serde_json::Value = serde_json::from_slice(&resp.body).expect("status json");
    path.iter()
        .try_fold(&v, |node, key| node.get(key))
        .and_then(|x| x.as_u64())
        .unwrap_or(0)
}

struct SubscribeStep {
    frames_total: usize,
    delta_frames: usize,
    delta_bytes: usize,
    full_bytes: usize,
    delta_latency: Duration,
    cold_latency: Duration,
}

struct SubscribeResult {
    steps: usize,
    initial_frames: usize,
    rows: Vec<SubscribeStep>,
    mean_delta_latency: Duration,
    mean_cold_latency: Duration,
    latency_speedup: f64,
    delta_bytes: u64,
    full_bytes: u64,
    counters: serde_json::Value,
}

/// One subscription against a growing live source: delta 0 plus one
/// delta per appended installment, each checked byte-identical to a
/// cold one-shot run at the same source length.
fn run_subscribe_phase(quick: bool) -> SubscribeResult {
    use v2v_serve::sub::{read_delta, DeltaApplier, DELTA_CONTENT_TYPE};

    let initial = if quick { 120 } else { 300 };
    let step_frames = if quick { 30 } else { 60 };
    let steps = if quick { 2 } else { 5 };
    let total = initial + steps * step_frames;

    let history = source_stream(total);
    let prefix = |n: usize| {
        let packets = history.copy_packet_range(0, n, history.start()).unwrap();
        v2v_container::VideoStream::new(
            *history.params(),
            history.start(),
            history.frame_dur(),
            packets,
        )
        .unwrap()
    };
    let installment = |a: usize, b: usize| {
        let at = history.start() + history.frame_dur() * Rational::from_int(a as i64);
        let packets = history.copy_packet_range(a, b, at).unwrap();
        let tail =
            v2v_container::VideoStream::new(*history.params(), at, history.frame_dur(), packets)
                .unwrap();
        v2v_container::svc_to_bytes(&tail).unwrap()
    };

    // The subscribed query asks for the full eventual domain; the
    // daemon clamps each refresh to what the source can serve yet.
    let spec = SpecBuilder::new(marked_output())
        .video("live", "live.svc")
        .append_filtered("live", r(0, 1), Rational::new(total as i64, 30), |e| {
            blur(e, 1.0)
        })
        .build();

    // Ground truth and cold baseline: a fresh engine, no cache, full
    // render at the given source length.
    let cold_run = |frames: usize| -> (Vec<u8>, Duration) {
        let mut catalog = Catalog::new();
        catalog.add_video("live", prefix(frames));
        let mut engine = v2v_core::V2vEngine::new(catalog);
        engine.bind(&spec).expect("bind");
        let mut clamped = spec.clone();
        clamped.time_domain = v2v_spec::servable_domain(&spec, &engine.catalog().source_infos());
        let t = Instant::now();
        let report = engine.run(&clamped).expect("cold run");
        let took = t.elapsed();
        (
            v2v_container::svc_to_bytes(&report.output).expect("seal cold run"),
            took,
        )
    };

    let cache_dir =
        std::env::temp_dir().join(format!("v2v_bench_subscribe_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let mut config = ServeConfig::default();
    config.engine.render_cache = Some(Arc::new(
        RenderCache::open(&cache_dir, 1 << 30)
            .expect("cache dir")
            .with_mem_tier(64 << 20),
    ));
    let mut catalog = Catalog::new();
    catalog.add_video("live", prefix(initial));
    let mut handle = V2vServer::new(catalog)
        .with_config(config)
        .start("127.0.0.1:0")
        .expect("bind");
    let addr = handle.addr();

    let mut resp = client::open_stream(addr, "POST", "/subscribe", spec.to_json().as_bytes())
        .expect("subscribe");
    assert_eq!(resp.status, 200, "subscribe must be accepted");
    assert_eq!(resp.header_value("content-type"), Some(DELTA_CONTENT_TYPE));
    resp.reader
        .get_ref()
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("read timeout");

    let mut applier = DeltaApplier::new();
    let (h0, svc0) = read_delta(&mut resp.reader)
        .expect("delta read")
        .expect("first delta");
    let cum = applier.apply(&h0, &svc0).expect("apply delta 0");
    assert_eq!(cum.len(), initial);
    let (expect, _) = cold_run(initial);
    assert_eq!(
        v2v_container::svc_to_bytes(cum).expect("seal"),
        expect,
        "delta 0 must equal a cold run at the initial length"
    );

    let mut rows = Vec::new();
    for s in 0..steps {
        let a = initial + s * step_frames;
        let b = a + step_frames;
        let body = installment(a, b);
        let t = Instant::now();
        let append = client::request(addr, "POST", "/append/live", &body).expect("append");
        assert_eq!(
            append.status,
            200,
            "{}",
            String::from_utf8_lossy(&append.body)
        );
        let (h, svc) = read_delta(&mut resp.reader)
            .expect("delta read")
            .expect("growth delta");
        let delta_latency = t.elapsed();
        let cum = applier.apply(&h, &svc).expect("apply delta");
        assert_eq!(cum.len(), b, "cumulative length tracks the source");
        let cum_bytes = v2v_container::svc_to_bytes(cum).expect("seal");
        let (cold_bytes, cold_latency) = cold_run(b);
        assert_eq!(
            cum_bytes, cold_bytes,
            "cumulative after installment {s} must equal a cold run at {b} frames"
        );
        rows.push(SubscribeStep {
            frames_total: b,
            delta_frames: h.frames as usize,
            delta_bytes: svc.len(),
            full_bytes: cold_bytes.len(),
            delta_latency,
            cold_latency,
        });
    }

    let counters = serde_json::json!({
        "deltas": status_counter(addr, &["subscriptions", "deltas"]),
        "renders": status_counter(addr, &["subscriptions", "renders"]),
        "appends": status_counter(addr, &["subscriptions", "appends"]),
        "frames_pushed": status_counter(addr, &["subscriptions", "frames_pushed"]),
    });
    drop(resp);
    handle.stop();
    let _ = std::fs::remove_dir_all(&cache_dir);

    let mean_delta_latency = mean(&rows.iter().map(|r| r.delta_latency).collect::<Vec<_>>());
    let mean_cold_latency = mean(&rows.iter().map(|r| r.cold_latency).collect::<Vec<_>>());
    SubscribeResult {
        steps,
        initial_frames: initial,
        mean_delta_latency,
        mean_cold_latency,
        latency_speedup: mean_cold_latency.as_secs_f64()
            / mean_delta_latency.as_secs_f64().max(1e-9),
        delta_bytes: rows.iter().map(|r| r.delta_bytes as u64).sum(),
        full_bytes: rows.iter().map(|r| r.full_bytes as u64).sum(),
        rows,
        counters,
    }
}

/// Total counter value from the daemon's `/metrics` snapshot.
fn metrics_counter(addr: std::net::SocketAddr, name: &str) -> u64 {
    let resp = client::request(addr, "GET", "/metrics", b"").expect("metrics");
    let snap: v2v_obs::MetricsSnapshot = serde_json::from_slice(&resp.body).expect("metrics json");
    snap.counter(name)
}

/// A long-GOP archival-shaped source: one keyframe every `gop` frames,
/// so a mid-GOP read pays up to `gop - 1` frames of lead-in decode.
fn long_gop_stream(frames: usize, gop: u32) -> v2v_container::VideoStream {
    let ty = v2v_frame::FrameType::gray8(64, 32);
    let params = v2v_codec::CodecParams::new(ty, gop, 0);
    let mut w = v2v_container::StreamWriter::new(params, v2v_time::Rational::ZERO, r(1, 30));
    for i in 0..frames {
        let mut f = v2v_frame::Frame::black(ty);
        v2v_frame::marker::embed(&mut f, i as u32);
        w.push_frame(&f).expect("push frame");
    }
    w.finish().expect("finish stream")
}

/// A smart-cut-shaped query deep inside the long GOP: a one-second
/// filtered window starting at `first_frame`, far from any original
/// keyframe, so the decode lead-in dominates the render.
fn store_spec(first_frame: i64) -> Spec {
    SpecBuilder::new(marked_output())
        .video("longgop", "longgop.svc")
        .append_filtered("longgop", r(first_frame, 30), r(1, 1), |e| blur(e, 1.0))
        .build()
}

struct StoreArm {
    arm: &'static str,
    requests: usize,
    mean: Duration,
    max: Duration,
    wall: Duration,
    frames_decoded: u64,
    bytes_decoded: u64,
    managed_bytes: u64,
}

/// Variant-store arms: the same smart-cut-heavy workload against the
/// same long-GOP source, first on a storeless daemon (every mid-GOP
/// read decodes from the GOP's original keyframe), then on a daemon
/// whose store has a keyframe-dense variant materialized. Responses
/// are asserted byte-identical across arms — the variant must change
/// only the decode work, never the bytes.
fn run_store_phase(quick: bool) -> Vec<StoreArm> {
    const STORE_CLIENTS: usize = 4;
    let rounds = if quick { 2 } else { 8 };
    let frames = 900;
    let gop = 300;

    let mut catalog = Catalog::new();
    catalog.add_video("longgop", long_gop_stream(frames, gop));

    let mut arms = Vec::new();
    let mut baseline: Option<Vec<Vec<Vec<u8>>>> = None;
    for (arm, dense) in [("original", false), ("dense", true)] {
        let store_root =
            std::env::temp_dir().join(format!("v2v_bench_store_{}_{arm}", std::process::id()));
        let _ = std::fs::remove_dir_all(&store_root);
        let mut config = ServeConfig {
            max_concurrent: 4,
            queue_depth: 64,
            ..Default::default()
        };
        if dense {
            config.store = Some(StoreServeConfig::at(&store_root));
        }
        let mut handle = V2vServer::new(catalog.clone())
            .with_config(config)
            .start("127.0.0.1:0")
            .expect("bind");
        let addr = handle.addr();
        if dense {
            let resp = client::request(addr, "POST", "/store/materialize/longgop/dense", b"")
                .expect("materialize");
            assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        }
        // Distinct mid-GOP windows, all inside the first GOP: starts
        // 60.. keep every request at least 60 frames past the original
        // keyframe while never crossing into GOP 2.
        let spec_for = move |c: usize, round: usize| {
            let first = 60 + (c * rounds + round) as i64 * 6;
            Arc::new(store_spec(first).to_json().into_bytes())
        };
        let (result, bodies) = drive_rounds(addr, STORE_CLIENTS, rounds, spec_for);
        match &baseline {
            None => baseline = Some(bodies),
            Some(expect) => assert_eq!(
                expect, &bodies,
                "variant-served responses must be byte-identical to the storeless run"
            ),
        }
        let (_, failed, _) = handle.job_counts();
        assert_eq!(failed, 0, "no request may fail");
        let frames_decoded = metrics_counter(addr, "exec.frames_decoded");
        let bytes_decoded = metrics_counter(addr, "exec.bytes_decoded");
        let managed_bytes = status_counter(addr, &["store", "managed_bytes"]);
        handle.stop();
        let _ = std::fs::remove_dir_all(&store_root);
        arms.push(StoreArm {
            arm,
            requests: STORE_CLIENTS * rounds,
            mean: mean(&result.latencies),
            max: max(&result.latencies),
            wall: result.wall,
            frames_decoded,
            bytes_decoded,
            managed_bytes,
        });
    }
    assert!(
        arms[1].bytes_decoded < arms[0].bytes_decoded,
        "dense variant must cut bytes decoded ({} !< {})",
        arms[1].bytes_decoded,
        arms[0].bytes_decoded
    );
    assert!(
        arms[1].frames_decoded < arms[0].frames_decoded,
        "dense variant must cut frames decoded ({} !< {})",
        arms[1].frames_decoded,
        arms[0].frames_decoded
    );
    arms
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("V2V_BENCH_SCALE").is_ok_and(|s| s == "test");
    let per_client = if quick { 2 } else { 8 };
    let dur_frames: i64 = if quick { 30 } else { 60 };
    let source_frames = 1200;
    let big_source_frames = 3600;

    print_header(
        "Serving",
        "closed-loop latency/throughput: cold vs warm cache, shared vs unshared work",
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!();
    println!("detected cores: {cores}; {per_client} request(s) per client per phase");

    let mut catalog = Catalog::new();
    catalog.add_video("src", source_stream(source_frames));
    catalog.add_video("big", big_source_stream(big_source_frames));

    let cache_dir = std::env::temp_dir().join(format!("v2v_bench_serve_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let mut config = ServeConfig {
        max_concurrent: 4,
        queue_depth: 64,
        ..Default::default()
    };
    config.engine.render_cache = Some(Arc::new(
        RenderCache::open(&cache_dir, 1 << 30)
            .expect("cache dir")
            .with_mem_tier(64 << 20),
    ));
    let mut handle = V2vServer::new(catalog.clone())
        .with_config(config)
        .start("127.0.0.1:0")
        .expect("bind");
    let addr = handle.addr();

    // Warm exactly one query; its bytes are the warm phase's expected
    // response.
    let warm_spec = Arc::new(distinct_spec(900, dur_frames).to_json().into_bytes());
    let warm_resp = client::post_query(addr, &warm_spec).expect("warm-up");
    assert_eq!(warm_resp.status, 200);
    let warm_body = Arc::new(warm_resp.body);

    println!();
    println!(
        "{:<8} {:<8} {:>8} {:>9} {:>12} {:>12} {:>12}",
        "phase", "arm", "clients", "requests", "mean lat", "max lat", "req/s"
    );
    let mut rows: Vec<Row> = Vec::new();
    // Distinct cold queries across all arms: client c of arm a gets the
    // window starting at frame (arm_base + c*per_client + i).
    let mut arm_base = 0usize;
    for clients in CLIENT_COUNTS {
        let base = arm_base;
        arm_base += clients * per_client;
        assert!(
            arm_base + dur_frames as usize <= 900,
            "cold windows must stay distinct from the warm query"
        );
        for (phase, result) in [
            (
                "cold",
                drive(
                    addr,
                    clients,
                    per_client,
                    move |c, i| {
                        Arc::new(
                            distinct_spec(base + c * per_client + i, dur_frames)
                                .to_json()
                                .into_bytes(),
                        )
                    },
                    None,
                ),
            ),
            ("warm", {
                let warm_spec = Arc::clone(&warm_spec);
                drive(
                    addr,
                    clients,
                    per_client,
                    move |_, _| Arc::clone(&warm_spec),
                    Some(&warm_body),
                )
            }),
        ] {
            let row = Row {
                phase,
                arm: "share",
                clients,
                requests: clients * per_client,
                mean: mean(&result.latencies),
                max: max(&result.latencies),
                wall: result.wall,
            };
            print_row(&row);
            rows.push(row);
        }
    }

    let mean_of = |rows: &[Row], phase: &str, arm: &str, clients: usize| {
        rows.iter()
            .find(|r| r.phase == phase && r.arm == arm && r.clients == clients)
            .expect("row measured")
            .mean
            .as_secs_f64()
    };
    let rps_of = |rows: &[Row], phase: &str, arm: &str, clients: usize| {
        let row = rows
            .iter()
            .find(|r| r.phase == phase && r.arm == arm && r.clients == clients)
            .expect("row measured");
        row.requests as f64 / row.wall.as_secs_f64().max(1e-9)
    };

    let (done, failed, rejected) = handle.job_counts();
    println!("daemon counters: {done} done, {failed} failed, {rejected} rejected");
    assert_eq!(failed, 0, "no request may fail");
    handle.stop();
    let _ = std::fs::remove_dir_all(&cache_dir);

    // --- work-sharing arms -------------------------------------------
    // Each (workload × arm × client count) runs against its own fresh
    // daemon and cache dir, so every burst is genuinely cold. The
    // noshare arm runs first and its bodies are ground truth for the
    // share arm's byte-identity.
    let rounds = per_client;
    let mut share_counters = serde_json::json!(null);
    let half = SHARE_CLIPS as usize / 2;
    for (workload, clip_stride) in [("dup", 0usize), ("overlap", half)] {
        for clients in SHARE_CLIENT_COUNTS {
            let mut baseline_bodies: Option<Vec<Vec<Vec<u8>>>> = None;
            for (arm, sharing) in [("noshare", false), ("share", true)] {
                let tag = format!("{workload}_{arm}_{clients}");
                let (mut handle, dir) = start_arm(&catalog, sharing, &tag);
                let addr = handle.addr();
                // Each round uses fresh clips: stride past every clip
                // any client of this round touches.
                let round_stride = clients * clip_stride.max(1) + SHARE_CLIPS as usize + 1;
                let spec_for = move |c: usize, round: usize| {
                    let first = (round * round_stride + c * clip_stride) as i64;
                    Arc::new(overlap_spec(first).to_json().into_bytes())
                };
                let (result, bodies) = drive_rounds(addr, clients, rounds, spec_for);
                if workload == "dup" {
                    // Every client of a round posted the same spec:
                    // the responses must agree.
                    for c in 1..clients {
                        assert_eq!(bodies[0], bodies[c], "duplicate responses diverged");
                    }
                }
                match &baseline_bodies {
                    None => baseline_bodies = Some(bodies),
                    Some(expect) => assert_eq!(
                        expect, &bodies,
                        "shared responses must be byte-identical to unshared runs"
                    ),
                }
                let (_, failed, _) = handle.job_counts();
                assert_eq!(failed, 0, "no request may fail");
                if sharing && workload == "dup" && clients == 8 {
                    share_counters = serde_json::json!({
                        "inflight_hits": status_counter(addr, &["sharing", "inflight_hits"]),
                        "segments_published": status_counter(addr, &["sharing", "segments_published"]),
                        "segment_hits": status_counter(addr, &["sharing", "segment_hits"]),
                        "mem_hits": status_counter(addr, &["cache", "mem", "hits"]),
                    });
                }
                handle.stop();
                let _ = std::fs::remove_dir_all(&dir);
                let row = Row {
                    phase: workload,
                    arm,
                    clients,
                    requests: clients * rounds,
                    mean: mean(&result.latencies),
                    max: max(&result.latencies),
                    wall: result.wall,
                };
                print_row(&row);
                rows.push(row);
            }
        }
    }

    // --- scale-out arms ----------------------------------------------
    // Cold overlap-heavy bursts against a coordinator with 0/1/2/4
    // workers. Every request is distinct (nothing cached anywhere), so
    // each keyed segment is dispatched over the ring. On a single-vCPU
    // host the workers share one core with the coordinator, so the
    // honest scaling signal is the dispatch distribution, not
    // wall-clock speedup — both are recorded.
    const CLUSTER_CLIENTS: usize = 4;
    let mut cluster_rows: Vec<(usize, u64, u64)> = Vec::new();
    let mut cluster_baseline: Option<Vec<Vec<Vec<u8>>>> = None;
    for (arm, n_workers) in [("w0", 0usize), ("w1", 1), ("w2", 2), ("w4", 4)] {
        let workers: Vec<_> = (0..n_workers)
            .map(|_| {
                let config = ServeConfig {
                    max_concurrent: 4,
                    queue_depth: 64,
                    role: ServeRole::Worker,
                    ..Default::default()
                };
                V2vServer::new(catalog.clone())
                    .with_config(config)
                    .start("127.0.0.1:0")
                    .expect("worker bind")
            })
            .collect();
        let mut config = ServeConfig {
            max_concurrent: 4,
            queue_depth: 64,
            workers: workers.iter().map(|w| w.addr().to_string()).collect(),
            ..Default::default()
        };
        config.engine.exec.num_threads = 4;
        let mut handle = V2vServer::new(catalog.clone())
            .with_config(config)
            .start("127.0.0.1:0")
            .expect("coordinator bind");
        let addr = handle.addr();
        let spec_for = move |c: usize, round: usize| {
            let first = ((round * CLUSTER_CLIENTS + c) * SHARE_CLIPS as usize) as i64;
            Arc::new(overlap_spec(first).to_json().into_bytes())
        };
        let (result, bodies) = drive_rounds(addr, CLUSTER_CLIENTS, rounds, spec_for);
        match &cluster_baseline {
            None => cluster_baseline = Some(bodies),
            Some(expect) => assert_eq!(
                expect, &bodies,
                "multi-worker responses must be byte-identical to the local run"
            ),
        }
        let dispatched = status_counter(addr, &["pool", "dispatched"]);
        let re_dispatched = status_counter(addr, &["pool", "re_dispatched"]);
        let (_, failed, _) = handle.job_counts();
        assert_eq!(failed, 0, "no request may fail");
        handle.stop();
        drop(workers);
        cluster_rows.push((n_workers, dispatched, re_dispatched));
        let row = Row {
            phase: "cluster",
            arm,
            clients: CLUSTER_CLIENTS,
            requests: CLUSTER_CLIENTS * rounds,
            mean: mean(&result.latencies),
            max: max(&result.latencies),
            wall: result.wall,
        };
        print_row(&row);
        rows.push(row);
    }
    for (n_workers, dispatched, re_dispatched) in &cluster_rows {
        println!(
            "cluster workers={n_workers}: {dispatched} segment dispatches, {re_dispatched} re-dispatches"
        );
    }

    // --- subscribe arm -----------------------------------------------
    // Live growth: one subscription receives incremental deltas as the
    // source is appended in installments; the baseline is a cold
    // one-shot run of the same query at each intermediate length. Two
    // signals: per-installment latency (append posted → delta fully
    // read, which includes the watcher wake-up and the dirty-tail
    // render) vs the cold re-render, and delta bytes on the wire vs
    // the full result the cold run would re-ship. Every cumulative
    // client stream is asserted byte-identical to its cold run.
    let sub = run_subscribe_phase(quick);
    println!(
        "subscribe: {} installment(s), mean delta latency {}, mean cold re-run {} ({:.1}x), \
         delta bytes {} of full {} ({:.1}% of a re-ship)",
        sub.steps,
        secs(sub.mean_delta_latency),
        secs(sub.mean_cold_latency),
        sub.latency_speedup,
        sub.delta_bytes,
        sub.full_bytes,
        100.0 * sub.delta_bytes as f64 / sub.full_bytes.max(1) as f64,
    );

    // --- variant-store arms ------------------------------------------
    // Smart-cut-heavy mid-GOP reads on a long-GOP source, storeless vs
    // dense-variant-backed; byte-identity asserted, decode-work delta
    // is the signal.
    let store_arms = run_store_phase(quick);
    for a in &store_arms {
        let row = Row {
            phase: "store",
            arm: a.arm,
            clients: 4,
            requests: a.requests,
            mean: a.mean,
            max: a.max,
            wall: a.wall,
        };
        print_row(&row);
    }
    println!(
        "store: dense variant decoded {} bytes / {} frames vs {} bytes / {} frames storeless \
         ({:.1}% of the bytes)",
        store_arms[1].bytes_decoded,
        store_arms[1].frames_decoded,
        store_arms[0].bytes_decoded,
        store_arms[0].frames_decoded,
        100.0 * store_arms[1].bytes_decoded as f64 / store_arms[0].bytes_decoded.max(1) as f64,
    );

    let hit_speedup =
        mean_of(&rows, "cold", "share", 1) / mean_of(&rows, "warm", "share", 1).max(1e-9);
    let dup_speedup =
        rps_of(&rows, "dup", "share", 8) / rps_of(&rows, "dup", "noshare", 8).max(1e-9);
    let overlap_speedup =
        rps_of(&rows, "overlap", "share", 8) / rps_of(&rows, "overlap", "noshare", 8).max(1e-9);
    println!();
    println!("single-client cache-hit speedup (cold mean / warm mean): {hit_speedup:.1}x");
    println!("duplicate-heavy sharing speedup at 8 clients (req/s): {dup_speedup:.1}x");
    println!("overlap-heavy sharing speedup at 8 clients (req/s): {overlap_speedup:.1}x");

    if quick {
        println!(
            "(--quick: skipping BENCH_serve.json / BENCH_cluster.json / BENCH_subscribe.json / BENCH_store.json rewrite)"
        );
        return;
    }
    let json = serde_json::json!({
        "bench": "serve",
        "cores_detected": cores,
        "max_concurrent": 4,
        "per_client_requests": per_client,
        "rows": rows.iter().map(|r| serde_json::json!({
            "phase": r.phase,
            "arm": r.arm,
            "clients": r.clients,
            "requests": r.requests,
            "mean_latency_s": r.mean.as_secs_f64(),
            "max_latency_s": r.max.as_secs_f64(),
            "throughput_rps": r.requests as f64 / r.wall.as_secs_f64().max(1e-9),
        })).collect::<Vec<_>>(),
        "single_client_hit_speedup": hit_speedup,
        "dup_speedup_8_clients": dup_speedup,
        "overlap_speedup_8_clients": overlap_speedup,
        "share_counters_dup_8_clients": share_counters,
        "warm_byte_identical": true,
        "share_byte_identical": true,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(
        path,
        format!("{}\n", serde_json::to_string_pretty(&json).unwrap()),
    )
    .expect("write baseline");
    println!("wrote {path}");

    let cluster_json = serde_json::json!({
        "bench": "cluster",
        "cores_detected": cores,
        "clients": CLUSTER_CLIENTS,
        "rounds": rounds,
        "caveat": format!(
            "measured on a {cores}-core host where coordinator and workers share \
             the same CPUs; wall-clock scaling is bounded by the shared core(s), \
             so the scaling evidence is the dispatch distribution below"
        ),
        "rows": rows.iter().filter(|r| r.phase == "cluster").map(|r| serde_json::json!({
            "arm": r.arm,
            "clients": r.clients,
            "requests": r.requests,
            "mean_latency_s": r.mean.as_secs_f64(),
            "max_latency_s": r.max.as_secs_f64(),
            "throughput_rps": r.requests as f64 / r.wall.as_secs_f64().max(1e-9),
        })).collect::<Vec<_>>(),
        "dispatches": cluster_rows.iter().map(|(w, d, rd)| serde_json::json!({
            "workers": w,
            "dispatched": d,
            "re_dispatched": rd,
        })).collect::<Vec<_>>(),
        "byte_identical_across_worker_counts": true,
    });
    let cluster_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cluster.json");
    std::fs::write(
        cluster_path,
        format!("{}\n", serde_json::to_string_pretty(&cluster_json).unwrap()),
    )
    .expect("write cluster baseline");
    println!("wrote {cluster_path}");

    let subscribe_json = serde_json::json!({
        "bench": "subscribe",
        "cores_detected": cores,
        "initial_frames": sub.initial_frames,
        "installments": sub.steps,
        "rows": sub.rows.iter().map(|s| serde_json::json!({
            "frames_total": s.frames_total,
            "delta_frames": s.delta_frames,
            "delta_bytes": s.delta_bytes,
            "full_bytes": s.full_bytes,
            "delta_latency_s": s.delta_latency.as_secs_f64(),
            "cold_rerun_latency_s": s.cold_latency.as_secs_f64(),
        })).collect::<Vec<_>>(),
        "mean_delta_latency_s": sub.mean_delta_latency.as_secs_f64(),
        "mean_cold_rerun_latency_s": sub.mean_cold_latency.as_secs_f64(),
        "latency_speedup": sub.latency_speedup,
        "delta_bytes_total": sub.delta_bytes,
        "full_bytes_total": sub.full_bytes,
        "wire_fraction_of_reship": sub.delta_bytes as f64 / sub.full_bytes.max(1) as f64,
        "subscription_counters": sub.counters,
        "cumulative_byte_identical": true,
    });
    let subscribe_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_subscribe.json");
    std::fs::write(
        subscribe_path,
        format!(
            "{}\n",
            serde_json::to_string_pretty(&subscribe_json).unwrap()
        ),
    )
    .expect("write subscribe baseline");
    println!("wrote {subscribe_path}");

    let store_json = serde_json::json!({
        "bench": "store",
        "cores_detected": cores,
        "source": { "frames": 900, "gop": 300 },
        "workload": "smart-cut-heavy: distinct one-second mid-GOP filtered windows, 4 closed-loop clients",
        "arms": store_arms.iter().map(|a| serde_json::json!({
            "arm": a.arm,
            "requests": a.requests,
            "mean_latency_s": a.mean.as_secs_f64(),
            "max_latency_s": a.max.as_secs_f64(),
            "throughput_rps": a.requests as f64 / a.wall.as_secs_f64().max(1e-9),
            "frames_decoded": a.frames_decoded,
            "bytes_decoded": a.bytes_decoded,
            "store_managed_bytes": a.managed_bytes,
        })).collect::<Vec<_>>(),
        "dense_bytes_decoded_fraction": store_arms[1].bytes_decoded as f64
            / store_arms[0].bytes_decoded.max(1) as f64,
        "dense_frames_decoded_fraction": store_arms[1].frames_decoded as f64
            / store_arms[0].frames_decoded.max(1) as f64,
        "byte_identical_across_arms": true,
    });
    let store_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_store.json");
    std::fs::write(
        store_path,
        format!("{}\n", serde_json::to_string_pretty(&store_json).unwrap()),
    )
    .expect("write store baseline");
    println!("wrote {store_path}");
}
