//! Fig. 2 reproduction: unoptimized vs optimized plans for the spec that
//! splices a simple clip, a 2×2 grid, and a simple filter (the paper's
//! Q1 ⊕ Q3 ⊕ Q4 composition).

use v2v_bench::{engine_for, output_for, setup_kabr, Arm};
use v2v_spec::builder::{blur, grid4};
use v2v_spec::{RenderExpr, SpecBuilder};
use v2v_time::{r, AffineTimeMap, Rational};

fn main() {
    let ds = setup_kabr();
    let secs = Rational::from_int(5);
    let spec = SpecBuilder::new(output_for(&ds))
        .video("src", "src.svc")
        // Simple clip (Q1-shaped)...
        .append_clip("src", r(25, 2), secs)
        // ...spliced with a 2×2 grid (Q3-shaped)...
        .append_with(secs, |out_start| {
            let cell = |o: i64| RenderExpr::FrameRef {
                video: "src".into(),
                time: AffineTimeMap::shift(Rational::from_int(o) - out_start),
            };
            grid4(cell(20), cell(30), cell(40), cell(50))
        })
        // ...spliced with a simple filter (Q4-shaped).
        .append_filtered("src", r(60, 1), secs, |e| blur(e, 1.2))
        .build();

    let mut engine = engine_for(&ds, Arm::Optimized);
    let report = engine.explain(&spec).expect("plans for Fig. 2 spec");

    println!();
    println!("== Fig. 2: Unoptimized (top) and Optimized (bottom) Plans ==");
    println!("   (stream-copy operators marked ◆, the figure's grey diamonds)");
    println!();
    print!("{}", report.pretty());
}
