//! SVC rate–distortion table: quantizer vs bitrate vs PSNR.
//!
//! Not a paper figure — this characterizes the codec substrate so the
//! evaluation's byte counts are interpretable (e.g. why the Q6 output
//! size tracks the source bitrate, and what `quantizer = 2` costs in
//! fidelity).

use v2v_codec::{CodecParams, Decoder, Encoder};
use v2v_datasets::{kabr_sim, render_frame, tos_sim, Scale};
use v2v_time::Rational;

fn table(name: &str, spec: &v2v_datasets::DatasetSpec) {
    println!();
    println!(
        "{name}: {}x{} @ {} fps, GOP {} frames, 2s sample",
        spec.width,
        spec.height,
        spec.fps,
        spec.gop_frames()
    );
    println!(
        "{:<6} {:>12} {:>12} {:>10}",
        "q", "bytes/s", "bits/px", "PSNR (dB)"
    );
    let n = (2 * spec.fps) as u64;
    let frames: Vec<_> = (0..n).map(|i| render_frame(spec, i)).collect();
    for q in [0u8, 1, 2, 4, 8, 16] {
        let params = CodecParams::new(spec.codec_params().frame_ty, spec.gop_frames(), q);
        let mut enc = Encoder::new(params);
        let mut dec = Decoder::new(params);
        let mut bytes = 0u64;
        let mut psnr_acc = 0.0f64;
        let mut finite = 0usize;
        for (i, f) in frames.iter().enumerate() {
            let pkt = enc
                .encode(f, Rational::new(i as i64, spec.fps))
                .expect("encode");
            bytes += pkt.size() as u64;
            let back = dec.decode(&pkt).expect("decode");
            match f.psnr(&back) {
                Some(v) if v.is_finite() => {
                    psnr_acc += v;
                    finite += 1;
                }
                _ => {}
            }
        }
        let bytes_per_s = bytes / 2;
        let bits_per_px =
            (bytes * 8) as f64 / (n as f64 * f64::from(spec.width) * f64::from(spec.height));
        let psnr = if finite == 0 {
            f64::INFINITY
        } else {
            psnr_acc / finite as f64
        };
        println!(
            "{:<6} {:>12} {:>12.3} {:>10}",
            q,
            bytes_per_s,
            bits_per_px,
            if psnr.is_infinite() {
                "exact".to_string()
            } else {
                format!("{psnr:.1}")
            },
        );
    }
}

fn main() {
    println!("== SVC rate–distortion characterization ==");
    table("tos_sim", &tos_sim(Scale::Bench, 2));
    table("kabr_sim", &kabr_sim(Scale::Bench, 2));
    println!();
    println!("q=0 is exactly lossless (the frame-exactness test substrate);");
    println!("the benchmarks run at q=2.");
}
