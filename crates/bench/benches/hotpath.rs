//! Hot-path ablation: the shared decoded-GOP cache on grid renders.
//!
//! Three 2×2 grid queries against ToS (10 s GOPs, mid-GOP x.5 offsets):
//!
//! * **Q3/Q8** — the paper's grids composite four *disjoint* windows of
//!   the same source, so sharing only happens where a temporal shard
//!   boundary lands mid-GOP and the next shard re-reads that GOP. The
//!   cache trims the decode count; at bench scale the wall-clock effect
//!   is within noise on one CPU.
//! * **replay** — four cells showing the same footage one frame apart
//!   (an instant-replay mosaic). All cursors read the *same* GOPs, so
//!   the cache collapses 4× decoding into 1× plus Arc clones — the
//!   pattern the cache is built for.
//!
//! Each row runs with the cache off (`gop_cache_frames = 0`) and on
//! (default), verifies the outputs are byte-identical, and reports wall
//! clock, decoded-frame counts, and the hit rate.

use std::time::{Duration, Instant};
use v2v_bench::{
    bench_runs, build_query, build_replay_grid, engine_with, long_secs, print_header, secs,
    setup_tos, QueryId,
};
use v2v_container::VideoStream;
use v2v_core::EngineConfig;
use v2v_exec::ExecStats;
use v2v_spec::Spec;

/// Paper-protocol measurement (first run discarded) of one config.
fn run_arm(
    ds: &v2v_bench::BenchDataset,
    spec: &Spec,
    config: EngineConfig,
) -> (Duration, VideoStream, ExecStats) {
    let runs = bench_runs();
    let mut engine = engine_with(ds, config);
    let mut total = Duration::ZERO;
    let mut last = None;
    for i in 0..=runs {
        let started = Instant::now();
        let report = engine.run(spec).expect("query runs");
        if i > 0 {
            total += started.elapsed();
        }
        last = Some((report.output, report.stats));
    }
    let (output, stats) = last.expect("at least one run");
    (total / runs as u32, output, stats)
}

fn main() {
    let ds = setup_tos();
    print_header(
        "Hot path",
        "shared decoded-GOP cache on 2x2 grid renders (ToS)",
    );
    println!();
    println!(
        "{:<8} {:>12} {:>10} {:>8} {:>13} {:>12} {:>10}",
        "query", "no-cache (s)", "cache (s)", "speedup", "dec off/on", "hits/lookups", "identical"
    );
    let rows: Vec<(&str, Spec)> = vec![
        ("Q3", build_query(&ds, QueryId::Q3)),
        ("Q8", build_query(&ds, QueryId::Q8)),
        ("replay", build_replay_grid(&ds, long_secs())),
    ];
    for (label, spec) in &rows {
        let mut off = EngineConfig::default();
        off.exec.gop_cache_frames = 0;
        let (t_off, out_off, stats_off) = run_arm(&ds, spec, off);
        let (t_on, out_on, stats_on) = run_arm(&ds, spec, EngineConfig::default());
        assert_eq!(
            stats_off.gop_cache_hits + stats_off.gop_cache_misses,
            0,
            "disabled cache must not be consulted"
        );
        assert!(
            stats_on.gop_cache_hits > 0,
            "{label}: grid query must share GOPs through the cache"
        );
        let (fa, _) = out_off.decode_range(0, out_off.len()).expect("decode");
        let (fb, _) = out_on.decode_range(0, out_on.len()).expect("decode");
        let identical = fa == fb && out_off.byte_size() == out_on.byte_size();
        assert!(identical, "{label}: cache changed the output");
        println!(
            "{:<8} {:>12} {:>10} {:>7.2}x {:>6}/{:<6} {:>6}/{:<5} {:>10}",
            label,
            secs(t_off),
            secs(t_on),
            t_off.as_secs_f64() / t_on.as_secs_f64().max(1e-9),
            stats_off.frames_decoded,
            stats_on.frames_decoded,
            stats_on.gop_cache_hits,
            stats_on.gop_cache_hits + stats_on.gop_cache_misses,
            "yes"
        );
    }
    println!();
    println!("outputs verified byte-identical, cache on vs off, for every row.");
}
