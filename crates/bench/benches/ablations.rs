//! Ablation study: attribute the optimized speedup to individual passes
//! by disabling them one at a time on the queries where each pass is the
//! headline (smart cut → Q6, fusion/sharding → Q8/Q9, dde → Q10), on the
//! KABR-like dataset where all passes can fire.

use v2v_bench::{measure, print_header, secs, setup_kabr, Arm, QueryId};

fn main() {
    let ds = setup_kabr();
    print_header("Ablations", "per-pass attribution on the KABR-like dataset");
    println!();
    println!(
        "{:<6} {:<14} {:>10} {:>18}",
        "query", "arm", "time (s)", "vs full opt"
    );
    for q in [
        QueryId::Q3,
        QueryId::Q6,
        QueryId::Q8,
        QueryId::Q9,
        QueryId::Q10,
    ] {
        let full = measure(&ds, q, Arm::Optimized);
        println!(
            "{:<6} {:<14} {:>10} {:>17}",
            q.label(),
            Arm::Optimized.label(),
            secs(full.mean),
            "1.00x"
        );
        let arms: &[Arm] = match q {
            QueryId::Q6 => &[Arm::NoSmartCut, Arm::NoStreamCopy],
            QueryId::Q10 => &[Arm::NoDde, Arm::NoShardSerial],
            _ => &[Arm::NoShardSerial, Arm::NoStreamCopy],
        };
        for &arm in arms {
            let m = measure(&ds, q, arm);
            println!(
                "{:<6} {:<14} {:>10} {:>16.2}x",
                q.label(),
                arm.label(),
                secs(m.mean),
                m.mean.as_secs_f64() / full.mean.as_secs_f64().max(1e-9),
            );
        }
        println!();
    }
    println!("reading: >1.00x means disabling the pass slows the query down;");
    println!("Q6 leans on smart cut/stream copy, Q10 on data-dependent rewrites,");
    println!("Q8/Q9 on fused rendering with sharded parallel encode.");
}
