//! Fig. 3 reproduction: ToS dataset, Q1–Q10, unoptimized vs optimized
//! execution time. The paper reports an average 3.44× speedup, with the
//! notable exception that Q1's plans are identical (no keyframes inside
//! the clipped range → no smart cut).

use v2v_bench::{geomean, measure, paper, print_header, secs, setup_tos, Arm, QueryId};

fn main() {
    let ds = setup_tos();
    print_header(
        "Fig. 3",
        "V2V synthesis performance on the ToS-like dataset",
    );
    println!();
    println!(
        "{:<6} {:>10} {:>10} {:>9}  {:>12}",
        "query", "unopt (s)", "opt (s)", "speedup", "output"
    );
    let mut ratios = Vec::new();
    for q in QueryId::all() {
        let unopt = measure(&ds, q, Arm::Unoptimized);
        let opt = measure(&ds, q, Arm::Optimized);
        let ratio = unopt.mean.as_secs_f64() / opt.mean.as_secs_f64().max(1e-9);
        ratios.push(ratio);
        println!(
            "{:<6} {:>10} {:>10} {:>8.2}x  {:>9} KiB",
            q.label(),
            secs(unopt.mean),
            secs(opt.mean),
            ratio,
            opt.output_bytes / 1024,
        );
    }
    println!();
    println!(
        "average speedup (geomean): {:.2}x   | paper reports {:.2}x",
        geomean(&ratios),
        paper::TOS_AVG_SPEEDUP
    );
    println!(
        "Q1 expectation: plans identical (speedup ≈ 1.0x) — measured {:.2}x",
        ratios[0]
    );
}
