//! Interactivity: time-to-first-packet under on-demand streaming.
//!
//! The paper's §I claim: "Through database-style optimizations described
//! in this paper and on-demand streaming, V2V enables a VDBMS to execute
//! such a query and to begin playback within seconds." This harness
//! measures when playback *could start* for the long-input queries:
//! the streaming executor delivers packets in presentation order as
//! segments complete, so copy-first plans start in near-zero time, while
//! the unoptimized arm cannot start until it finishes everything.
//!
//! `setup` is the one-time cost paid before execution begins (plan
//! hand-off, writer/cache construction); `ttfp` is measured from
//! executor start, so `setup + ttfp` is the user-visible latency.

use v2v_bench::{build_query, engine_for, measure, print_header, secs, setup_kabr, Arm, QueryId};
use v2v_exec::execute_streaming;

fn main() {
    let ds = setup_kabr();
    print_header(
        "Interactive",
        "time to first packet (streaming) vs total synthesis time",
    );
    println!();
    println!(
        "{:<6} {:>12} {:>14} {:>14} {:>14}",
        "query", "setup (s)", "ttfp opt (s)", "total opt (s)", "unopt (s)"
    );
    for q in [QueryId::Q6, QueryId::Q7, QueryId::Q9, QueryId::Q10] {
        let spec = build_query(&ds, q);
        let mut engine = engine_for(&ds, Arm::Optimized);
        engine.bind(&spec).expect("bind");
        let (specialized, _) = engine.specialize(&spec);
        let (plan, _) = engine.plan(&specialized).expect("plan");
        let mut delivered = 0u64;
        let (_, stats) =
            execute_streaming(&plan, engine.catalog(), |_| delivered += 1).expect("streaming run");
        let unopt = measure(&ds, q, Arm::Unoptimized);
        println!(
            "{:<6} {:>12} {:>14} {:>14} {:>14}",
            q.label(),
            secs(stats.setup),
            secs(stats.time_to_first_packet),
            secs(stats.total),
            secs(unopt.mean),
        );
    }
    println!();
    println!("reading: playback can begin at 'ttfp opt'; the unoptimized arm");
    println!("only has its first frame when the whole synthesis finishes.");
}
