//! Ergonomic spec construction for Rust callers.
//!
//! The JSON form is the interchange format; examples, benchmarks, and
//! embedding VDBMSs construct specs through [`SpecBuilder`] and the
//! expression helpers here instead.

use crate::expr::{Arg, DataExpr, RenderExpr};
use crate::ops::TransformOp;
use crate::spec::{OutputSettings, Spec};
use std::collections::BTreeMap;
use v2v_time::{AffineTimeMap, Rational, TimeRange, TimeSet};

/// Builds a spec as a timeline of appended segments.
///
/// Each `append_*` call places a segment at the current output cursor;
/// the builder derives the time domain, match arms, and source time
/// shifts. The segment length is given in seconds and snapped to whole
/// output frames.
pub struct SpecBuilder {
    output: OutputSettings,
    videos: BTreeMap<String, String>,
    data_arrays: BTreeMap<String, String>,
    arms: Vec<(TimeSet, RenderExpr)>,
    cursor: Rational,
}

impl SpecBuilder {
    /// Starts an empty timeline.
    pub fn new(output: OutputSettings) -> SpecBuilder {
        SpecBuilder {
            output,
            videos: BTreeMap::new(),
            data_arrays: BTreeMap::new(),
            arms: Vec::new(),
            cursor: Rational::ZERO,
        }
    }

    /// Registers a video source.
    pub fn video(mut self, name: impl Into<String>, locator: impl Into<String>) -> SpecBuilder {
        self.videos.insert(name.into(), locator.into());
        self
    }

    /// Registers a data array source.
    pub fn data_array(
        mut self,
        name: impl Into<String>,
        locator: impl Into<String>,
    ) -> SpecBuilder {
        self.data_arrays.insert(name.into(), locator.into());
        self
    }

    /// Current output cursor (end of the last appended segment).
    pub fn cursor(&self) -> Rational {
        self.cursor
    }

    /// Number of whole output frames in `seconds`.
    fn frames_in(&self, seconds: Rational) -> u64 {
        seconds.div_floor(self.output.frame_dur).max(0) as u64
    }

    /// Appends `seconds` of output rendered by `expr`; `expr` receives
    /// the segment's output start time so it can compute source shifts.
    pub fn append_with(
        mut self,
        seconds: Rational,
        expr: impl FnOnce(Rational) -> RenderExpr,
    ) -> SpecBuilder {
        let count = self.frames_in(seconds);
        if count == 0 {
            return self;
        }
        let when = TimeSet::from_range(TimeRange::from_parts(
            self.cursor,
            self.output.frame_dur,
            count,
        ));
        let start = self.cursor;
        self.arms.push((when, expr(start)));
        self.cursor = self.cursor + self.output.frame_dur * Rational::from_int(count as i64);
        self
    }

    /// Appends a plain clip: `seconds` of `video` starting at source time
    /// `src_start`.
    pub fn append_clip(
        self,
        video: impl Into<String>,
        src_start: Rational,
        seconds: Rational,
    ) -> SpecBuilder {
        let video = video.into();
        self.append_with(seconds, |out_start| RenderExpr::FrameRef {
            video,
            time: AffineTimeMap::shift(src_start - out_start),
        })
    }

    /// Appends `seconds` of a transformed clip: `f` receives the source
    /// frame reference for the segment.
    pub fn append_filtered(
        self,
        video: impl Into<String>,
        src_start: Rational,
        seconds: Rational,
        f: impl FnOnce(RenderExpr) -> RenderExpr,
    ) -> SpecBuilder {
        let video = video.into();
        self.append_with(seconds, |out_start| {
            f(RenderExpr::FrameRef {
                video,
                time: AffineTimeMap::shift(src_start - out_start),
            })
        })
    }

    /// Finalizes the spec.
    pub fn build(self) -> Spec {
        let time_domain = self
            .arms
            .iter()
            .fold(TimeSet::empty(), |acc, (when, _)| acc.union(when));
        let render = if self.arms.len() == 1 {
            self.arms.into_iter().next().expect("one arm").1
        } else {
            RenderExpr::matching(self.arms)
        };
        Spec {
            time_domain,
            render,
            videos: self.videos,
            data_arrays: self.data_arrays,
            output: self.output,
        }
    }
}

// ---------------------------------------------------------------------
// Expression helpers
// ---------------------------------------------------------------------

/// `Grid(a, b, c, d)` — the paper's 2×2 composition.
pub fn grid4(a: RenderExpr, b: RenderExpr, c: RenderExpr, d: RenderExpr) -> RenderExpr {
    RenderExpr::transform(
        TransformOp::Grid,
        vec![Arg::Frame(a), Arg::Frame(b), Arg::Frame(c), Arg::Frame(d)],
    )
}

/// `Blur(e, sigma)`.
pub fn blur(e: RenderExpr, sigma: f64) -> RenderExpr {
    RenderExpr::transform(
        TransformOp::Blur,
        vec![Arg::Frame(e), Arg::Data(DataExpr::constant(sigma))],
    )
}

/// `Zoom(e, factor)`.
pub fn zoom(e: RenderExpr, factor: f64) -> RenderExpr {
    RenderExpr::transform(
        TransformOp::Zoom,
        vec![Arg::Frame(e), Arg::Data(DataExpr::constant(factor))],
    )
}

/// `BoundingBox(e, array[t])`.
pub fn bounding_box(e: RenderExpr, array: impl Into<String>) -> RenderExpr {
    RenderExpr::transform(
        TransformOp::BoundingBox,
        vec![Arg::Frame(e), Arg::Data(DataExpr::array(array))],
    )
}

/// `Highlight(e, array[t], dim)`.
pub fn highlight(e: RenderExpr, array: impl Into<String>, dim: f64) -> RenderExpr {
    RenderExpr::transform(
        TransformOp::Highlight,
        vec![
            Arg::Frame(e),
            Arg::Data(DataExpr::array(array)),
            Arg::Data(DataExpr::constant(dim)),
        ],
    )
}

/// `IfThenElse(cond, a, b)`.
pub fn if_then_else(cond: DataExpr, a: RenderExpr, b: RenderExpr) -> RenderExpr {
    RenderExpr::transform(
        TransformOp::IfThenElse,
        vec![Arg::Data(cond), Arg::Frame(a), Arg::Frame(b)],
    )
}

/// `TextOverlay(e, text, x, y)` with a constant string.
pub fn text_overlay(e: RenderExpr, text: impl Into<String>, x: f64, y: f64) -> RenderExpr {
    RenderExpr::transform(
        TransformOp::TextOverlay,
        vec![
            Arg::Frame(e),
            Arg::Data(DataExpr::constant(text.into())),
            Arg::Data(DataExpr::constant(x)),
            Arg::Data(DataExpr::constant(y)),
        ],
    )
}

/// `TextOverlay(e, expr, x, y)` with a data-driven string.
pub fn text_overlay_expr(e: RenderExpr, text: DataExpr, x: f64, y: f64) -> RenderExpr {
    RenderExpr::transform(
        TransformOp::TextOverlay,
        vec![
            Arg::Frame(e),
            Arg::Data(text),
            Arg::Data(DataExpr::constant(x)),
            Arg::Data(DataExpr::constant(y)),
        ],
    )
}

/// `Grayscale(e)`.
pub fn grayscale(e: RenderExpr) -> RenderExpr {
    RenderExpr::transform(TransformOp::Grayscale, vec![Arg::Frame(e)])
}

/// `Crossfade(a, b, alpha)`.
pub fn crossfade(a: RenderExpr, b: RenderExpr, alpha: DataExpr) -> RenderExpr {
    RenderExpr::transform(
        TransformOp::Crossfade,
        vec![Arg::Frame(a), Arg::Frame(b), Arg::Data(alpha)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use v2v_frame::FrameType;
    use v2v_time::r;

    fn output() -> OutputSettings {
        OutputSettings::new(FrameType::yuv420p(64, 64), 30)
    }

    #[test]
    fn timeline_cursor_advances() {
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .video("b", "b.svc")
            .append_clip("a", r(10, 1), r(5, 1))
            .append_clip("b", r(0, 1), r(5, 1))
            .build();
        assert_eq!(spec.time_domain.count(), 300);
        assert_eq!(spec.time_domain.min(), Some(r(0, 1)));
        assert_eq!(spec.time_domain.max(), Some(r(299, 30)));
        match &spec.render {
            RenderExpr::Match { arms } => {
                assert_eq!(arms.len(), 2);
                // Second arm shows b from 0 while output time is 5..10:
                // shift is -5.
                match &arms[1].expr {
                    RenderExpr::FrameRef { video, time } => {
                        assert_eq!(video, "b");
                        assert_eq!(time.offset(), r(-5, 1));
                    }
                    other => panic!("unexpected expr {other:?}"),
                }
            }
            other => panic!("expected match, got {other:?}"),
        }
    }

    #[test]
    fn single_segment_unwraps_match() {
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .append_clip("a", r(0, 1), r(1, 1))
            .build();
        assert!(matches!(spec.render, RenderExpr::FrameRef { .. }));
    }

    #[test]
    fn filtered_segment_wraps_ref() {
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .append_filtered("a", r(2, 1), r(1, 1), |e| blur(e, 1.5))
            .build();
        match &spec.render {
            RenderExpr::Transform { op, args } => {
                assert_eq!(*op, TransformOp::Blur);
                assert!(matches!(args[0], Arg::Frame(RenderExpr::FrameRef { .. })));
            }
            other => panic!("expected transform, got {other:?}"),
        }
    }

    #[test]
    fn zero_length_segment_is_skipped() {
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .append_clip("a", r(0, 1), r(0, 1))
            .append_clip("a", r(0, 1), r(1, 100)) // below one frame
            .append_clip("a", r(0, 1), r(1, 1))
            .build();
        assert_eq!(spec.time_domain.count(), 30);
    }

    #[test]
    fn builder_spec_passes_checker() {
        use crate::check::{check_spec, SourceInfo};
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .data_array("bb", "bb.json")
            .append_filtered("a", r(0, 1), r(2, 1), |e| bounding_box(e, "bb"))
            .build();
        let sources = [(
            "a".to_string(),
            SourceInfo {
                frame_ty: FrameType::yuv420p(64, 64),
                available: TimeSet::from_range(v2v_time::TimeRange::new(
                    r(0, 1),
                    r(10, 1),
                    r(1, 30),
                )),
            },
        )]
        .into();
        let report = check_spec(&spec, &sources).unwrap();
        assert_eq!(report.required["a"].count(), 60);
    }
}
