//! Render and data expression ASTs.

use crate::ops::{DataType, TransformOp};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use v2v_data::{DataArray, Value};
use v2v_time::{AffineTimeMap, Rational, TimeSet};

/// A frame-valued expression: the body of `Render(t)`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum RenderExpr {
    /// `match t { when_i => expr_i }` — first matching arm wins.
    Match {
        /// The arms in priority order.
        arms: Vec<MatchArm>,
    },
    /// `video[scale·t + offset]`.
    FrameRef {
        /// Name in the spec's `videos` map.
        video: String,
        /// Time indexing expression.
        #[serde(default)]
        time: AffineTimeMap,
    },
    /// `Transform(args…)`.
    Transform {
        /// The operator.
        op: TransformOp,
        /// Arguments in signature order.
        args: Vec<Arg>,
    },
}

/// One `when => expr` arm of a match.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MatchArm {
    /// Instants this arm covers.
    pub when: TimeSet,
    /// The expression rendered over those instants.
    pub expr: RenderExpr,
}

/// A transform argument: frame-valued or data-valued.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Arg {
    /// A frame sub-expression.
    Frame(RenderExpr),
    /// A data expression.
    Data(DataExpr),
}

impl Arg {
    /// Frame view.
    pub fn as_frame(&self) -> Option<&RenderExpr> {
        match self {
            Arg::Frame(e) => Some(e),
            Arg::Data(_) => None,
        }
    }

    /// Data view.
    pub fn as_data(&self) -> Option<&DataExpr> {
        match self {
            Arg::Data(e) => Some(e),
            Arg::Frame(_) => None,
        }
    }
}

/// Comparison operators in data expressions.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Arithmetic operators in data expressions.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// A scalar expression evaluated per output instant.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum DataExpr {
    /// A constant.
    Const(Value),
    /// The current output instant as a rational value.
    T,
    /// `array[scale·t + offset]` — `Null` when no entry exists.
    ArrayRef {
        /// Name in the spec's `data_arrays` map.
        array: String,
        /// Time indexing expression.
        #[serde(default)]
        time: AffineTimeMap,
    },
    /// Comparison of two sub-expressions (SQL semantics: NULL never
    /// compares true).
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        lhs: Box<DataExpr>,
        /// Right operand.
        rhs: Box<DataExpr>,
    },
    /// Arithmetic over numerics (exact over rationals where possible).
    Arith {
        /// Operator.
        op: ArithOp,
        /// Left operand.
        lhs: Box<DataExpr>,
        /// Right operand.
        rhs: Box<DataExpr>,
    },
    /// Logical negation.
    Not(Box<DataExpr>),
    /// Logical conjunction.
    And(Box<DataExpr>, Box<DataExpr>),
    /// Logical disjunction.
    Or(Box<DataExpr>, Box<DataExpr>),
    /// Length of a list/boxes value (`|b|` in the paper's
    /// `BoundingBox_dde`).
    Len(Box<DataExpr>),
}

impl DataExpr {
    /// Convenience: `array[t]`.
    pub fn array(name: impl Into<String>) -> DataExpr {
        DataExpr::ArrayRef {
            array: name.into(),
            time: AffineTimeMap::IDENTITY,
        }
    }

    /// Convenience: constant.
    pub fn constant(v: impl Into<Value>) -> DataExpr {
        DataExpr::Const(v.into())
    }

    /// Convenience: `lhs < rhs`.
    pub fn lt(lhs: DataExpr, rhs: DataExpr) -> DataExpr {
        DataExpr::Cmp {
            op: CmpOp::Lt,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Convenience: `len(e) > 0`.
    pub fn non_empty(e: DataExpr) -> DataExpr {
        DataExpr::Cmp {
            op: CmpOp::Gt,
            lhs: Box::new(DataExpr::Len(Box::new(e))),
            rhs: Box::new(DataExpr::Const(Value::Int(0))),
        }
    }

    /// Names of all arrays this expression references.
    pub fn referenced_arrays(&self, out: &mut Vec<String>) {
        match self {
            DataExpr::Const(_) | DataExpr::T => {}
            DataExpr::ArrayRef { array, .. } => out.push(array.clone()),
            DataExpr::Cmp { lhs, rhs, .. } | DataExpr::Arith { lhs, rhs, .. } => {
                lhs.referenced_arrays(out);
                rhs.referenced_arrays(out);
            }
            DataExpr::And(a, b) | DataExpr::Or(a, b) => {
                a.referenced_arrays(out);
                b.referenced_arrays(out);
            }
            DataExpr::Not(e) | DataExpr::Len(e) => e.referenced_arrays(out),
        }
    }

    /// Static type of the expression (best effort; `Any` for array refs,
    /// whose contents are only known at data-binding time).
    pub fn data_type(&self) -> DataType {
        match self {
            DataExpr::Const(v) => match v {
                Value::Bool(_) => DataType::Bool,
                Value::Int(_) | Value::Float(_) | Value::Rational(_) => DataType::Number,
                Value::Str(_) => DataType::Str,
                Value::Boxes(_) => DataType::Boxes,
                Value::Null | Value::List(_) => DataType::Any,
            },
            DataExpr::T => DataType::Number,
            DataExpr::ArrayRef { .. } => DataType::Any,
            DataExpr::Cmp { .. } | DataExpr::Not(_) | DataExpr::And(..) | DataExpr::Or(..) => {
                DataType::Bool
            }
            DataExpr::Arith { .. } | DataExpr::Len(_) => DataType::Number,
        }
    }

    /// Evaluates at output instant `t` against bound data arrays.
    ///
    /// Missing arrays and type errors evaluate to `Null` (SQL-style
    /// propagation) rather than aborting a render mid-stream; the checker
    /// reports unknown arrays statically.
    pub fn eval(&self, t: Rational, arrays: &BTreeMap<String, DataArray>) -> Value {
        match self {
            DataExpr::Const(v) => v.clone(),
            DataExpr::T => Value::Rational(t),
            DataExpr::ArrayRef { array, time } => arrays
                .get(array)
                .map(|a| a.get(time.apply(t)).clone())
                .unwrap_or(Value::Null),
            DataExpr::Cmp { op, lhs, rhs } => {
                let l = lhs.eval(t, arrays);
                let r = rhs.eval(t, arrays);
                match l.compare(&r) {
                    None => Value::Null,
                    Some(ord) => Value::Bool(match op {
                        CmpOp::Eq => ord == std::cmp::Ordering::Equal,
                        CmpOp::Ne => ord != std::cmp::Ordering::Equal,
                        CmpOp::Lt => ord == std::cmp::Ordering::Less,
                        CmpOp::Le => ord != std::cmp::Ordering::Greater,
                        CmpOp::Gt => ord == std::cmp::Ordering::Greater,
                        CmpOp::Ge => ord != std::cmp::Ordering::Less,
                    }),
                }
            }
            DataExpr::Arith { op, lhs, rhs } => {
                let l = lhs.eval(t, arrays);
                let r = rhs.eval(t, arrays);
                // Exact rational path first.
                if let (Some(a), Some(b)) = (l.as_rational(), r.as_rational()) {
                    let out = match op {
                        ArithOp::Add => a.checked_add(b),
                        ArithOp::Sub => a.checked_sub(b),
                        ArithOp::Mul => a.checked_mul(b),
                        ArithOp::Div => a.checked_div(b),
                    };
                    return out.map(Value::Rational).unwrap_or(Value::Null);
                }
                match (l.as_f64(), r.as_f64()) {
                    (Some(a), Some(b)) => {
                        let v = match op {
                            ArithOp::Add => a + b,
                            ArithOp::Sub => a - b,
                            ArithOp::Mul => a * b,
                            ArithOp::Div => {
                                if b == 0.0 {
                                    return Value::Null;
                                }
                                a / b
                            }
                        };
                        Value::Float(v)
                    }
                    _ => Value::Null,
                }
            }
            DataExpr::Not(e) => match e.eval(t, arrays).as_bool() {
                Some(b) => Value::Bool(!b),
                None => Value::Null,
            },
            DataExpr::And(a, b) => match (a.eval(t, arrays).as_bool(), b.eval(t, arrays).as_bool())
            {
                (Some(x), Some(y)) => Value::Bool(x && y),
                (Some(false), _) | (_, Some(false)) => Value::Bool(false),
                _ => Value::Null,
            },
            DataExpr::Or(a, b) => {
                match (a.eval(t, arrays).as_bool(), b.eval(t, arrays).as_bool()) {
                    (Some(x), Some(y)) => Value::Bool(x || y),
                    (Some(true), _) | (_, Some(true)) => Value::Bool(true),
                    _ => Value::Null,
                }
            }
            DataExpr::Len(e) => match e.eval(t, arrays) {
                Value::Boxes(b) => Value::Int(b.len() as i64),
                Value::List(l) => Value::Int(l.len() as i64),
                Value::Str(s) => Value::Int(s.chars().count() as i64),
                Value::Null => Value::Int(0),
                _ => Value::Null,
            },
        }
    }
}

impl RenderExpr {
    /// Convenience: `video[t]`.
    pub fn video(name: impl Into<String>) -> RenderExpr {
        RenderExpr::FrameRef {
            video: name.into(),
            time: AffineTimeMap::IDENTITY,
        }
    }

    /// Convenience: `video[t + offset]`.
    pub fn video_shifted(name: impl Into<String>, offset: Rational) -> RenderExpr {
        RenderExpr::FrameRef {
            video: name.into(),
            time: AffineTimeMap::shift(offset),
        }
    }

    /// Wraps this expression in a transform (frames first is NOT assumed;
    /// callers supply full args).
    pub fn transform(op: TransformOp, args: Vec<Arg>) -> RenderExpr {
        RenderExpr::Transform { op, args }
    }

    /// A single-arm match covering `when`.
    pub fn matching(arms: Vec<(TimeSet, RenderExpr)>) -> RenderExpr {
        RenderExpr::Match {
            arms: arms
                .into_iter()
                .map(|(when, expr)| MatchArm { when, expr })
                .collect(),
        }
    }

    /// All video names referenced anywhere in the expression.
    pub fn referenced_videos(&self, out: &mut Vec<String>) {
        match self {
            RenderExpr::FrameRef { video, .. } => out.push(video.clone()),
            RenderExpr::Match { arms } => {
                for a in arms {
                    a.expr.referenced_videos(out);
                }
            }
            RenderExpr::Transform { args, .. } => {
                for a in args {
                    if let Arg::Frame(e) = a {
                        e.referenced_videos(out);
                    }
                }
            }
        }
    }

    /// All array names referenced anywhere in the expression.
    pub fn referenced_arrays(&self, out: &mut Vec<String>) {
        match self {
            RenderExpr::FrameRef { .. } => {}
            RenderExpr::Match { arms } => {
                for a in arms {
                    a.expr.referenced_arrays(out);
                }
            }
            RenderExpr::Transform { args, .. } => {
                for a in args {
                    match a {
                        Arg::Frame(e) => e.referenced_arrays(out),
                        Arg::Data(d) => d.referenced_arrays(out),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v2v_time::r;

    fn arrays() -> BTreeMap<String, DataArray> {
        let mut m = BTreeMap::new();
        m.insert(
            "a".to_string(),
            DataArray::from_pairs([
                (r(0, 1), Value::Int(3)),
                (r(1, 1), Value::Int(6)),
                (r(2, 1), Value::Int(8)),
            ]),
        );
        m
    }

    #[test]
    fn paper_if_then_else_condition() {
        // a = [3, 6, 8]; a[t] < 5 is true at t=0 only.
        let cond = DataExpr::lt(DataExpr::array("a"), DataExpr::constant(5i64));
        let arrays = arrays();
        assert_eq!(cond.eval(r(0, 1), &arrays), Value::Bool(true));
        assert_eq!(cond.eval(r(1, 1), &arrays), Value::Bool(false));
        assert_eq!(cond.eval(r(2, 1), &arrays), Value::Bool(false));
        // Missing entry → NULL comparison → Null.
        assert_eq!(cond.eval(r(9, 1), &arrays), Value::Null);
    }

    #[test]
    fn t_and_arith() {
        let e = DataExpr::Arith {
            op: ArithOp::Sub,
            lhs: Box::new(DataExpr::T),
            rhs: Box::new(DataExpr::constant(Value::Rational(r(1, 2)))),
        };
        assert_eq!(e.eval(r(3, 2), &BTreeMap::new()), Value::Rational(r(1, 1)));
        let div = DataExpr::Arith {
            op: ArithOp::Div,
            lhs: Box::new(DataExpr::constant(1i64)),
            rhs: Box::new(DataExpr::constant(0i64)),
        };
        assert_eq!(div.eval(r(0, 1), &BTreeMap::new()), Value::Null);
    }

    #[test]
    fn len_of_boxes_and_null() {
        let arrays = {
            let mut m = BTreeMap::new();
            m.insert(
                "bb".to_string(),
                DataArray::from_pairs([(
                    r(0, 1),
                    Value::Boxes(vec![v2v_frame::BoxCoord::new(0.0, 0.0, 0.1, 0.1, "z")]),
                )]),
            );
            m
        };
        let n = DataExpr::Len(Box::new(DataExpr::array("bb")));
        assert_eq!(n.eval(r(0, 1), &arrays), Value::Int(1));
        // Missing entry counts as 0 boxes (Null → 0).
        assert_eq!(n.eval(r(1, 1), &arrays), Value::Int(0));
        let ne = DataExpr::non_empty(DataExpr::array("bb"));
        assert_eq!(ne.eval(r(0, 1), &arrays), Value::Bool(true));
        assert_eq!(ne.eval(r(1, 1), &arrays), Value::Bool(false));
    }

    #[test]
    fn logic_three_valued() {
        let null = DataExpr::Const(Value::Null);
        let yes = DataExpr::Const(Value::Bool(true));
        let no = DataExpr::Const(Value::Bool(false));
        let arrays = BTreeMap::new();
        let and = |a: &DataExpr, b: &DataExpr| {
            DataExpr::And(Box::new(a.clone()), Box::new(b.clone())).eval(r(0, 1), &arrays)
        };
        let or = |a: &DataExpr, b: &DataExpr| {
            DataExpr::Or(Box::new(a.clone()), Box::new(b.clone())).eval(r(0, 1), &arrays)
        };
        assert_eq!(and(&yes, &no), Value::Bool(false));
        assert_eq!(and(&no, &null), Value::Bool(false));
        assert_eq!(and(&yes, &null), Value::Null);
        assert_eq!(or(&yes, &null), Value::Bool(true));
        assert_eq!(or(&no, &null), Value::Null);
        assert_eq!(
            DataExpr::Not(Box::new(null)).eval(r(0, 1), &arrays),
            Value::Null
        );
    }

    #[test]
    fn reference_collection() {
        let e = RenderExpr::transform(
            TransformOp::IfThenElse,
            vec![
                Arg::Data(DataExpr::lt(DataExpr::array("a"), DataExpr::constant(5i64))),
                Arg::Frame(RenderExpr::video("vid1")),
                Arg::Frame(RenderExpr::video("vid2")),
            ],
        );
        let mut vids = Vec::new();
        let mut arrs = Vec::new();
        e.referenced_videos(&mut vids);
        e.referenced_arrays(&mut arrs);
        assert_eq!(vids, vec!["vid1", "vid2"]);
        assert_eq!(arrs, vec!["a"]);
    }

    #[test]
    fn serde_round_trip() {
        let e = RenderExpr::matching(vec![(
            TimeSet::from_range(v2v_time::TimeRange::new(r(0, 1), r(1, 1), r(1, 30))),
            RenderExpr::transform(
                TransformOp::Blur,
                vec![
                    Arg::Frame(RenderExpr::video_shifted("v", r(5, 1))),
                    Arg::Data(DataExpr::constant(2.0f64)),
                ],
            ),
        )]);
        let js = serde_json::to_string(&e).unwrap();
        let back: RenderExpr = serde_json::from_str(&js).unwrap();
        assert_eq!(e, back);
    }
}
