//! Static property checks (paper §III-B).
//!
//! "Such a definition … allows static property checks via typing. For
//! this example spec, our system would identify that vid1 must be a
//! superset of Range(0, 300, 1/30). The spec is correct if each
//! dependency is a subset of the ranges available in the source videos."
//!
//! [`check_spec`] walks the render expression with the *current domain*
//! (the instants at which the enclosing context can evaluate it), pushes
//! that domain through affine frame references, and accumulates per-video
//! requirements. It also enforces match totality, transform signatures,
//! and name resolution.

use crate::expr::{Arg, DataExpr, RenderExpr};
use crate::ops::{ArgKind, TransformOp};
use crate::spec::Spec;
use crate::udf::UdfRegistry;
use crate::SpecError;
use std::collections::BTreeMap;
use v2v_frame::FrameType;
use v2v_time::TimeSet;

/// What the checker knows about one bindable video source.
#[derive(Clone, Debug)]
pub struct SourceInfo {
    /// The source's frame type.
    pub frame_ty: FrameType,
    /// Instants the source can serve.
    pub available: TimeSet,
}

/// Result of a successful check.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// Exact instants each video must serve — the dependency analysis
    /// output the optimizer's `Clip` lowering consumes.
    pub required: BTreeMap<String, TimeSet>,
    /// Non-fatal observations (e.g. arms that can never match).
    pub warnings: Vec<String>,
}

struct Checker<'a> {
    spec: &'a Spec,
    udfs: &'a UdfRegistry,
    report: CheckReport,
    errors: Vec<SpecError>,
}

/// Checks a spec against the available sources.
///
/// Returns the per-video requirements on success; the full error list on
/// failure (all errors are collected, not just the first).
pub fn check_spec(
    spec: &Spec,
    sources: &BTreeMap<String, SourceInfo>,
) -> Result<CheckReport, Vec<SpecError>> {
    static EMPTY: std::sync::OnceLock<UdfRegistry> = std::sync::OnceLock::new();
    check_spec_with_udfs(spec, sources, EMPTY.get_or_init(UdfRegistry::new))
}

/// [`check_spec`] with user-defined transformation signatures available
/// for resolution (paper §III-C: "More transformations can be added
/// through UDFs").
pub fn check_spec_with_udfs(
    spec: &Spec,
    sources: &BTreeMap<String, SourceInfo>,
    udfs: &UdfRegistry,
) -> Result<CheckReport, Vec<SpecError>> {
    let mut c = Checker {
        spec,
        udfs,
        report: CheckReport::default(),
        errors: Vec::new(),
    };
    if spec.time_domain.is_empty() {
        c.errors.push(SpecError::EmptyDomain);
    }
    c.walk(&spec.render, spec.time_domain.clone());
    // Range containment per video.
    for (video, required) in &c.report.required {
        match sources.get(video) {
            None => {
                // Already reported as UnknownVideo during the walk if the
                // name is missing from spec.videos; report here when the
                // spec mentions it but the catalog cannot serve it.
                if spec.videos.contains_key(video) {
                    c.errors.push(SpecError::UnknownVideo(video.clone()));
                }
            }
            Some(info) => {
                let missing = required.difference(&info.available);
                if !missing.is_empty() {
                    c.errors.push(SpecError::RangeViolation {
                        video: video.clone(),
                        missing: missing.count(),
                        first: missing.min().expect("non-empty set has a min"),
                    });
                }
            }
        }
    }
    if c.errors.is_empty() {
        Ok(c.report)
    } else {
        Err(c.errors)
    }
}

/// The subset of the spec's time domain that is *servable* right now:
/// the output instants whose every transitive frame dependency lands on
/// an instant the sources can currently serve.
///
/// This is the live-source dual of [`check_spec`]. Where the checker
/// demands that the full domain be coverable and errors otherwise, this
/// walker *clamps*: a subscription over a still-growing source renders
/// the servable prefix today and extends it as appends land. The walk
/// mirrors the checker exactly — first-match-wins arm semantics, frame
/// arguments of transforms all required at the enclosing domain — so
/// `servable_domain(spec) == spec.time_domain` iff `check_spec` passes
/// its range analysis.
pub fn servable_domain(spec: &Spec, sources: &BTreeMap<String, SourceInfo>) -> TimeSet {
    servable(sources, &spec.render, &spec.time_domain)
}

fn servable(
    sources: &BTreeMap<String, SourceInfo>,
    expr: &RenderExpr,
    domain: &TimeSet,
) -> TimeSet {
    if domain.is_empty() {
        return TimeSet::empty();
    }
    match expr {
        RenderExpr::FrameRef { video, time } => {
            let Some(info) = sources.get(video) else {
                return TimeSet::empty();
            };
            // Push the domain forward through the affine map, keep what
            // the source can serve, and pull it back to output time.
            let good = time.apply_set(domain).intersect(&info.available);
            time.inverse().apply_set(&good).intersect(domain)
        }
        RenderExpr::Match { arms } => {
            // First match wins: each arm only answers for the instants
            // no earlier arm claimed, exactly as the checker walks.
            let mut remaining = domain.clone();
            let mut ok = TimeSet::empty();
            for arm in arms {
                let covered = remaining.intersect(&arm.when);
                ok = ok.union(&servable(sources, &arm.expr, &covered));
                remaining = remaining.difference(&covered);
            }
            ok
        }
        RenderExpr::Transform { args, .. } => {
            // Every frame argument must be servable at the instant; data
            // arguments never constrain the domain (arrays answer any
            // lookup, falling back to their at-or-before neighbor).
            let mut ok = domain.clone();
            for arg in args {
                if let Arg::Frame(e) = arg {
                    ok = ok.intersect(&servable(sources, e, domain));
                }
            }
            ok
        }
    }
}

impl Checker<'_> {
    fn walk(&mut self, expr: &RenderExpr, domain: TimeSet) {
        if domain.is_empty() {
            return;
        }
        match expr {
            RenderExpr::FrameRef { video, time } => {
                if !self.spec.videos.contains_key(video) {
                    self.errors.push(SpecError::UnknownVideo(video.clone()));
                    return;
                }
                let required = time.apply_set(&domain);
                self.report
                    .required
                    .entry(video.clone())
                    .and_modify(|s| *s = s.union(&required))
                    .or_insert(required);
            }
            RenderExpr::Match { arms } => {
                let mut remaining = domain.clone();
                for (i, arm) in arms.iter().enumerate() {
                    let covered = remaining.intersect(&arm.when);
                    if covered.is_empty() && !domain.intersect(&arm.when).is_empty() {
                        self.report
                            .warnings
                            .push(format!("match arm {i} is shadowed by earlier arms"));
                    }
                    if domain.intersect(&arm.when).is_empty() {
                        self.report
                            .warnings
                            .push(format!("match arm {i} never matches the domain"));
                    }
                    self.walk(&arm.expr, covered.clone());
                    remaining = remaining.difference(&covered);
                }
                if !remaining.is_empty() {
                    self.errors.push(SpecError::IncompleteMatch {
                        missing: remaining.count(),
                        first: remaining.min().expect("non-empty set has a min"),
                    });
                }
            }
            RenderExpr::Transform { op, args } => {
                let sig: &[ArgKind] = match op {
                    TransformOp::Udf(id) => match self.udfs.get(*id) {
                        Some(sig) => &sig.args,
                        None => {
                            self.errors.push(SpecError::UnknownUdf(*id));
                            // Walk frame sub-expressions so their errors
                            // surface despite the unknown signature.
                            for arg in args {
                                if let Arg::Frame(e) = arg {
                                    self.walk(e, domain.clone());
                                }
                            }
                            return;
                        }
                    },
                    builtin => builtin.signature(),
                };
                if sig.len() != args.len() {
                    self.errors.push(SpecError::Arity {
                        op: *op,
                        want: sig.len(),
                        got: args.len(),
                    });
                }
                for (i, (kind, arg)) in sig.iter().zip(args.iter()).enumerate() {
                    match (kind, arg) {
                        (ArgKind::Frame, Arg::Frame(e)) => self.walk(e, domain.clone()),
                        (ArgKind::Data(want), Arg::Data(d)) => {
                            self.check_data(d);
                            let got = d.data_type();
                            if !want.accepts(got) {
                                self.errors.push(SpecError::ArgType {
                                    op: *op,
                                    index: i,
                                    want: want.to_string(),
                                    got: got.to_string(),
                                });
                            }
                        }
                        (want, got) => {
                            self.errors.push(SpecError::ArgType {
                                op: *op,
                                index: i,
                                want: want.to_string(),
                                got: match got {
                                    Arg::Frame(_) => "frame".to_string(),
                                    Arg::Data(d) => format!("data:{}", d.data_type()),
                                },
                            });
                            // Still walk frame sub-expressions so their
                            // errors surface too.
                            if let Arg::Frame(e) = got {
                                self.walk(e, domain.clone());
                            }
                        }
                    }
                }
                // Surplus args beyond the signature: walk frames anyway.
                for arg in args.iter().skip(sig.len()) {
                    if let Arg::Frame(e) = arg {
                        self.walk(e, domain.clone());
                    }
                }
            }
        }
    }

    fn check_data(&mut self, d: &DataExpr) {
        let mut arrays = Vec::new();
        d.referenced_arrays(&mut arrays);
        for a in arrays {
            if !self.spec.data_arrays.contains_key(&a) {
                self.errors.push(SpecError::UnknownArray(a));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Arg, DataExpr, RenderExpr};
    use crate::ops::TransformOp;
    use crate::spec::OutputSettings;
    use v2v_time::{r, AffineTimeMap, Rational, TimeRange};

    fn domain(start: i64, end: i64) -> TimeSet {
        TimeSet::from_range(TimeRange::new(r(start, 1), r(end, 1), r(1, 30)))
    }

    fn source(start: i64, end: i64) -> SourceInfo {
        SourceInfo {
            frame_ty: FrameType::yuv420p(64, 64),
            available: domain(start, end),
        }
    }

    fn base_spec(render: RenderExpr) -> Spec {
        Spec {
            time_domain: domain(0, 10),
            render,
            videos: [
                ("vid1".to_string(), "a.svc".to_string()),
                ("vid2".to_string(), "b.svc".to_string()),
            ]
            .into(),
            data_arrays: [("bb".to_string(), "bb.json".to_string())].into(),
            output: OutputSettings::new(FrameType::yuv420p(64, 64), 30),
        }
    }

    #[test]
    fn paper_dependency_example() {
        // Render(t) = vid1[t] over Range(0,10): vid1 must cover it.
        let spec = base_spec(RenderExpr::video("vid1"));
        let sources = [("vid1".to_string(), source(0, 10))].into();
        let report = check_spec(&spec, &sources).unwrap();
        assert!(report.required["vid1"].set_eq(&domain(0, 10)));
    }

    #[test]
    fn shifted_reference_shifts_requirement() {
        // Render(t) = vid1[t + 100]: requirement is Range(100, 110).
        let spec = base_spec(RenderExpr::video_shifted("vid1", r(100, 1)));
        let sources = [("vid1".to_string(), source(0, 200))].into();
        let report = check_spec(&spec, &sources).unwrap();
        assert!(report.required["vid1"].set_eq(&domain(100, 110)));
    }

    #[test]
    fn range_violation_detected() {
        let spec = base_spec(RenderExpr::video("vid1"));
        let sources = [("vid1".to_string(), source(0, 5))].into();
        let errs = check_spec(&spec, &sources).unwrap_err();
        assert!(matches!(
            errs[0],
            SpecError::RangeViolation { ref video, missing, .. }
                if video == "vid1" && missing == 150
        ));
    }

    #[test]
    fn match_totality_enforced() {
        let spec = base_spec(RenderExpr::matching(vec![(
            domain(0, 5),
            RenderExpr::video("vid1"),
        )]));
        let sources = [("vid1".to_string(), source(0, 10))].into();
        let errs = check_spec(&spec, &sources).unwrap_err();
        assert!(matches!(
            errs[0],
            SpecError::IncompleteMatch { missing: 150, first } if first == Rational::from_int(5)
        ));
    }

    #[test]
    fn match_arms_restrict_requirements() {
        // vid1 only over [0,5), vid2 over [5,10): requirements split.
        let spec = base_spec(RenderExpr::matching(vec![
            (domain(0, 5), RenderExpr::video("vid1")),
            (
                domain(5, 10),
                RenderExpr::FrameRef {
                    video: "vid2".into(),
                    time: AffineTimeMap::shift(r(-5, 1)),
                },
            ),
        ]));
        let sources = [
            ("vid1".to_string(), source(0, 5)),
            ("vid2".to_string(), source(0, 5)),
        ]
        .into();
        let report = check_spec(&spec, &sources).unwrap();
        assert!(report.required["vid1"].set_eq(&domain(0, 5)));
        assert!(report.required["vid2"].set_eq(&domain(0, 5)));
    }

    #[test]
    fn first_match_wins_overlap_warns() {
        let spec = base_spec(RenderExpr::matching(vec![
            (domain(0, 10), RenderExpr::video("vid1")),
            (domain(3, 7), RenderExpr::video("vid2")),
        ]));
        let sources = [
            ("vid1".to_string(), source(0, 10)),
            ("vid2".to_string(), source(0, 10)),
        ]
        .into();
        let report = check_spec(&spec, &sources).unwrap();
        // vid2's arm is fully shadowed: no requirement, and a warning.
        assert!(!report.required.contains_key("vid2"));
        assert!(!report.warnings.is_empty());
    }

    #[test]
    fn unknown_video_and_array() {
        let spec = base_spec(RenderExpr::transform(
            TransformOp::BoundingBox,
            vec![
                Arg::Frame(RenderExpr::video("ghost")),
                Arg::Data(DataExpr::array("phantom")),
            ],
        ));
        let sources = BTreeMap::new();
        let errs = check_spec(&spec, &sources).unwrap_err();
        assert!(errs.contains(&SpecError::UnknownVideo("ghost".into())));
        assert!(errs.contains(&SpecError::UnknownArray("phantom".into())));
    }

    #[test]
    fn arity_and_arg_kind_errors() {
        let spec = base_spec(RenderExpr::transform(
            TransformOp::Zoom,
            vec![Arg::Frame(RenderExpr::video("vid1"))],
        ));
        let sources = [("vid1".to_string(), source(0, 10))].into();
        let errs = check_spec(&spec, &sources).unwrap_err();
        assert!(matches!(
            errs[0],
            SpecError::Arity {
                want: 2,
                got: 1,
                ..
            }
        ));

        let spec = base_spec(RenderExpr::transform(
            TransformOp::Zoom,
            vec![
                Arg::Data(DataExpr::constant(1i64)),
                Arg::Data(DataExpr::constant(1i64)),
            ],
        ));
        let errs = check_spec(&spec, &sources).unwrap_err();
        assert!(matches!(errs[0], SpecError::ArgType { index: 0, .. }));
    }

    #[test]
    fn data_type_mismatch_flagged() {
        // Blur's sigma must be numeric, not a string.
        let spec = base_spec(RenderExpr::transform(
            TransformOp::Blur,
            vec![
                Arg::Frame(RenderExpr::video("vid1")),
                Arg::Data(DataExpr::constant("wat")),
            ],
        ));
        let sources = [("vid1".to_string(), source(0, 10))].into();
        let errs = check_spec(&spec, &sources).unwrap_err();
        assert!(matches!(errs[0], SpecError::ArgType { index: 1, .. }));
    }

    #[test]
    fn empty_domain_is_an_error() {
        let mut spec = base_spec(RenderExpr::video("vid1"));
        spec.time_domain = TimeSet::empty();
        let sources = [("vid1".to_string(), source(0, 10))].into();
        let errs = check_spec(&spec, &sources).unwrap_err();
        assert!(errs.contains(&SpecError::EmptyDomain));
    }

    #[test]
    fn servable_domain_clamps_to_available_prefix() {
        // The source covers only [0,6) of the [0,10) domain: the
        // servable set is the prefix, and it grows with the source.
        let spec = base_spec(RenderExpr::video("vid1"));
        let sources: BTreeMap<_, _> = [("vid1".to_string(), source(0, 6))].into();
        assert!(servable_domain(&spec, &sources).set_eq(&domain(0, 6)));
        let grown: BTreeMap<_, _> = [("vid1".to_string(), source(0, 10))].into();
        assert!(servable_domain(&spec, &grown).set_eq(&domain(0, 10)));
        // And it agrees with the checker at full coverage.
        assert!(check_spec(&spec, &grown).is_ok());
    }

    #[test]
    fn servable_domain_pulls_back_through_affine_maps() {
        // vid1[t + 100] with vid1 covering [100, 105): only [0,5) of
        // the output domain is servable.
        let spec = base_spec(RenderExpr::video_shifted("vid1", r(100, 1)));
        let sources: BTreeMap<_, _> = [("vid1".to_string(), source(100, 105))].into();
        assert!(servable_domain(&spec, &sources).set_eq(&domain(0, 5)));
    }

    #[test]
    fn servable_domain_handles_arms_transforms_and_unknowns() {
        // Arm 1 (vid1) over [0,5) is fully servable; arm 2 (vid2) over
        // [5,10) only up to 8; an unknown video is never servable.
        let spec = base_spec(RenderExpr::matching(vec![
            (domain(0, 5), RenderExpr::video("vid1")),
            (domain(5, 10), RenderExpr::video("vid2")),
        ]));
        let sources: BTreeMap<_, _> = [
            ("vid1".to_string(), source(0, 5)),
            ("vid2".to_string(), source(0, 8)),
        ]
        .into();
        assert!(servable_domain(&spec, &sources).set_eq(&domain(0, 8)));

        let spec = base_spec(RenderExpr::transform(
            TransformOp::Blur,
            vec![
                Arg::Frame(RenderExpr::video("vid1")),
                Arg::Data(DataExpr::constant(1.0)),
            ],
        ));
        let sources: BTreeMap<_, _> = [("vid1".to_string(), source(0, 7))].into();
        assert!(servable_domain(&spec, &sources).set_eq(&domain(0, 7)));

        let spec = base_spec(RenderExpr::video("ghost"));
        assert!(servable_domain(&spec, &sources).is_empty());
    }

    #[test]
    fn nested_transforms_accumulate_requirements() {
        // Grid of four shifted refs to the same video.
        let args = (0..4)
            .map(|i| Arg::Frame(RenderExpr::video_shifted("vid1", r(i * 20, 1))))
            .collect();
        let spec = base_spec(RenderExpr::transform(TransformOp::Grid, args));
        let sources = [("vid1".to_string(), source(0, 100))].into();
        let report = check_spec(&spec, &sources).unwrap();
        let req = &report.required["vid1"];
        assert_eq!(req.count(), 4 * 300);
        assert!(req.contains(r(60, 1)));
    }
}
