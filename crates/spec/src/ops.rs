//! The transformation vocabulary and its signature table.
//!
//! Paper §III-C: "Filter: Zoom, crop, stabilize, animated transitions,
//! highlight an object, overlay text or graphics, color grading,
//! blur/sharpen, edge detection, denoise, background replacement" plus
//! the multi-frame `Grid` and the data-dependent `IfThenElse`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Type of a data argument.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum DataType {
    /// Boolean.
    Bool,
    /// Numeric (int / float / rational).
    Number,
    /// String.
    Str,
    /// Bounding-box list.
    Boxes,
    /// Anything.
    Any,
}

impl DataType {
    /// `true` if a value of type `got` satisfies this expectation.
    pub fn accepts(self, got: DataType) -> bool {
        self == DataType::Any || got == DataType::Any || self == got
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "bool",
            DataType::Number => "number",
            DataType::Str => "string",
            DataType::Boxes => "boxes",
            DataType::Any => "any",
        };
        f.write_str(s)
    }
}

/// Kind of a transform argument slot.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArgKind {
    /// A frame-valued sub-expression.
    Frame,
    /// A data-valued expression of the given type.
    Data(DataType),
}

impl fmt::Display for ArgKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgKind::Frame => write!(f, "frame"),
            ArgKind::Data(t) => write!(f, "data:{t}"),
        }
    }
}

/// A frame transformation: `Transform(args…) → Frame`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum TransformOp {
    /// `Identity(Frame)` — passes the frame through.
    Identity,
    /// `Zoom(Frame, factor)` — magnify around the centre.
    Zoom,
    /// `ZoomAt(Frame, factor, cx, cy)` — magnify around a point.
    ZoomAt,
    /// `Crop(Frame, x, y, w, h)` — normalized crop rectangle (output is
    /// conformed back to the pipeline frame type downstream).
    Crop,
    /// `Overlay(Frame, image_path)` — composite an image at the
    /// top-left.
    Overlay,
    /// `OverlayAt(Frame, image_path, x, y, alpha)` — positioned,
    /// alpha-blended composite (normalized position, alpha 0–1).
    OverlayAt,
    /// `BoundingBox(Frame, List⟨BoxCoord⟩)` — draw detection boxes.
    BoundingBox,
    /// `TextOverlay(Frame, text, x, y)` — stamp annotation text.
    TextOverlay,
    /// `Grid(Frame, Frame, Frame, Frame)` — 2×2 composition.
    Grid,
    /// `Blur(Frame, sigma)` — Gaussian blur (the Q4/Q9 filter).
    Blur,
    /// `Sharpen(Frame, amount)` — unsharp masking.
    Sharpen,
    /// `Denoise(Frame)` — 3×3 median.
    Denoise,
    /// `EdgeDetect(Frame)` — Sobel magnitude.
    EdgeDetect,
    /// `Grayscale(Frame)` — drop chroma.
    Grayscale,
    /// `Invert(Frame)` — photographic negative.
    Invert,
    /// `Brightness(Frame, brightness, contrast)`.
    Brightness,
    /// `ColorGrade(Frame, gamma, saturation)`.
    ColorGrade,
    /// `IfThenElse(cond, Frame, Frame)` — data-driven branch (§IV-C).
    IfThenElse,
    /// `Crossfade(Frame, Frame, alpha)` — animated transition.
    Crossfade,
    /// `FadeToBlack(Frame, alpha)`.
    FadeToBlack,
    /// `Stabilize(Frame, dx, dy, margin)` — jitter-compensated crop.
    Stabilize,
    /// `PictureInPicture(Frame, Frame, x, y, scale)`.
    PictureInPicture,
    /// `Highlight(Frame, List⟨BoxCoord⟩, dim)` — dim everything outside
    /// the detected objects ("highlight an object", §III-C).
    Highlight,
    /// A user-defined transformation; the signature lives in a
    /// [`crate::udf::UdfRegistry`] and the kernel in the execution
    /// catalog. Serialized as `{"udf": id}`.
    Udf(u16),
}

impl TransformOp {
    /// The argument signature.
    pub fn signature(self) -> &'static [ArgKind] {
        use ArgKind::{Data, Frame};
        use DataType::*;
        match self {
            TransformOp::Identity => &[Frame],
            TransformOp::Zoom => &[Frame, Data(Number)],
            TransformOp::ZoomAt => &[Frame, Data(Number), Data(Number), Data(Number)],
            TransformOp::Crop => &[
                Frame,
                Data(Number),
                Data(Number),
                Data(Number),
                Data(Number),
            ],
            TransformOp::Overlay => &[Frame, Data(Str)],
            TransformOp::OverlayAt => &[Frame, Data(Str), Data(Number), Data(Number), Data(Number)],
            TransformOp::BoundingBox => &[Frame, Data(Boxes)],
            TransformOp::TextOverlay => &[Frame, Data(Str), Data(Number), Data(Number)],
            TransformOp::Grid => &[Frame, Frame, Frame, Frame],
            TransformOp::Blur => &[Frame, Data(Number)],
            TransformOp::Sharpen => &[Frame, Data(Number)],
            TransformOp::Denoise => &[Frame],
            TransformOp::EdgeDetect => &[Frame],
            TransformOp::Grayscale => &[Frame],
            TransformOp::Invert => &[Frame],
            TransformOp::Brightness => &[Frame, Data(Number), Data(Number)],
            TransformOp::ColorGrade => &[Frame, Data(Number), Data(Number)],
            TransformOp::IfThenElse => &[Data(Bool), Frame, Frame],
            TransformOp::Crossfade => &[Frame, Frame, Data(Number)],
            TransformOp::FadeToBlack => &[Frame, Data(Number)],
            TransformOp::Stabilize => &[Frame, Data(Number), Data(Number), Data(Number)],
            TransformOp::PictureInPicture => {
                &[Frame, Frame, Data(Number), Data(Number), Data(Number)]
            }
            TransformOp::Highlight => &[Frame, Data(Boxes), Data(Number)],
            // UDF signatures live in the registry; the checker resolves
            // them via `check::check_spec_with_udfs`.
            TransformOp::Udf(_) => &[],
        }
    }

    /// Number of frame-valued arguments.
    pub fn frame_arity(self) -> usize {
        self.signature()
            .iter()
            .filter(|k| matches!(k, ArgKind::Frame))
            .count()
    }

    /// `true` if the transform consults data arguments at all.
    pub fn has_data_args(self) -> bool {
        self.signature()
            .iter()
            .any(|k| matches!(k, ArgKind::Data(_)))
    }

    /// All *built-in* operators (UDFs excluded; for exhaustive tests and
    /// documentation tables).
    pub fn all() -> &'static [TransformOp] {
        &[
            TransformOp::Identity,
            TransformOp::Zoom,
            TransformOp::ZoomAt,
            TransformOp::Crop,
            TransformOp::Overlay,
            TransformOp::OverlayAt,
            TransformOp::BoundingBox,
            TransformOp::TextOverlay,
            TransformOp::Grid,
            TransformOp::Blur,
            TransformOp::Sharpen,
            TransformOp::Denoise,
            TransformOp::EdgeDetect,
            TransformOp::Grayscale,
            TransformOp::Invert,
            TransformOp::Brightness,
            TransformOp::ColorGrade,
            TransformOp::IfThenElse,
            TransformOp::Crossfade,
            TransformOp::FadeToBlack,
            TransformOp::Stabilize,
            TransformOp::PictureInPicture,
            TransformOp::Highlight,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_op_has_at_least_one_frame_arg_except_none() {
        for op in TransformOp::all() {
            assert!(
                op.frame_arity() >= 1,
                "{op:?} must consume at least one frame"
            );
        }
    }

    #[test]
    fn grid_is_four_frames() {
        assert_eq!(TransformOp::Grid.frame_arity(), 4);
        assert!(!TransformOp::Grid.has_data_args());
    }

    #[test]
    fn if_then_else_signature() {
        let sig = TransformOp::IfThenElse.signature();
        assert_eq!(sig.len(), 3);
        assert_eq!(sig[0], ArgKind::Data(DataType::Bool));
        assert_eq!(TransformOp::IfThenElse.frame_arity(), 2);
    }

    #[test]
    fn datatype_acceptance() {
        assert!(DataType::Any.accepts(DataType::Boxes));
        assert!(DataType::Number.accepts(DataType::Any));
        assert!(DataType::Number.accepts(DataType::Number));
        assert!(!DataType::Number.accepts(DataType::Str));
    }

    #[test]
    fn serde_snake_case() {
        let js = serde_json::to_string(&TransformOp::BoundingBox).unwrap();
        assert_eq!(js, "\"bounding_box\"");
        let back: TransformOp = serde_json::from_str("\"if_then_else\"").unwrap();
        assert_eq!(back, TransformOp::IfThenElse);
    }

    #[test]
    fn all_is_exhaustive_by_count() {
        // Update when adding operators; keeps `all()` honest.
        assert_eq!(TransformOp::all().len(), 23);
    }
}
