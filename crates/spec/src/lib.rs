#![warn(missing_docs)]

//! The V2V declarative video editing DSL (paper §III).
//!
//! A video editing task is expressed as a [`Spec`]:
//!
//! ```text
//! Spec = ⟨TimeDomain, Render, videos: {...}, data_arrays: {...}⟩
//! ```
//!
//! `TimeDomain` is a set of rational instants; `Render(t)` is an
//! expression — match arms over time sets, frame references `vid[a·t+b]`,
//! and transformation calls — that defines the output frame at each
//! instant. Transformations are typed functions over frames and data
//! ([`TransformOp`] carries the signature table); data parameters are
//! [`DataExpr`]s evaluated against the spec's data arrays.
//!
//! The crate provides:
//!
//! * the typed AST ([`Spec`], [`RenderExpr`], [`Arg`], [`DataExpr`]) with
//!   JSON (de)serialization — "our executable binary reads serialized
//!   JSON specs" (§IV-D);
//! * [`check`] — the static property checks of §III-B: match totality,
//!   signature arity/typing, and the dependency analysis proving every
//!   `vid[...]` reference is a subset of the source's available range;
//! * [`builder`] — an ergonomic Rust construction API used by the
//!   examples and benchmarks.

pub mod builder;
pub mod check;
pub mod display;
pub mod expr;
pub mod ops;
pub mod spec;
pub mod udf;

pub use builder::SpecBuilder;
pub use check::{check_spec, check_spec_with_udfs, servable_domain, CheckReport, SourceInfo};
pub use display::to_dsl_string;
pub use expr::{Arg, ArithOp, CmpOp, DataExpr, RenderExpr};
pub use ops::{ArgKind, DataType, TransformOp};
pub use spec::{OutputSettings, Spec};
pub use udf::{UdfRegistry, UdfSignature};

/// Errors raised by spec validation.
#[derive(Debug, Clone, PartialEq, thiserror::Error)]
pub enum SpecError {
    /// A frame reference names a video absent from `videos`.
    #[error("unknown video '{0}'")]
    UnknownVideo(String),
    /// A data expression names an array absent from `data_arrays`.
    #[error("unknown data array '{0}'")]
    UnknownArray(String),
    /// A transform received the wrong number of arguments.
    #[error("{op:?} expects {want} arguments, got {got}")]
    Arity {
        /// The transform.
        op: TransformOp,
        /// Expected argument count.
        want: usize,
        /// Supplied argument count.
        got: usize,
    },
    /// A transform argument has the wrong kind (frame vs data) or data
    /// type.
    #[error("{op:?} argument {index}: expected {want}, got {got}")]
    ArgType {
        /// The transform.
        op: TransformOp,
        /// Zero-based argument index.
        index: usize,
        /// Expected kind/type.
        want: String,
        /// What the expression provides.
        got: String,
    },
    /// The match arms do not cover the whole domain.
    #[error(
        "render expression does not cover {missing} instants of the time domain (first: {first})"
    )]
    IncompleteMatch {
        /// Number of uncovered instants.
        missing: u64,
        /// First uncovered instant.
        first: v2v_time::Rational,
    },
    /// A video is used outside its available range.
    #[error("video '{video}' is referenced at {missing} instants outside its available range (first: {first})")]
    RangeViolation {
        /// The video.
        video: String,
        /// Number of out-of-range instants.
        missing: u64,
        /// First out-of-range instant.
        first: v2v_time::Rational,
    },
    /// A spec used a UDF id absent from the registry.
    #[error("unknown UDF #{0}")]
    UnknownUdf(u16),
    /// The spec's time domain is empty.
    #[error("spec time domain is empty")]
    EmptyDomain,
    /// Serialized spec failed to parse.
    #[error("spec JSON error: {0}")]
    Json(String),
}
