//! The top-level spec: `⟨TimeDomain, Render, videos, data_arrays⟩`.

use crate::expr::RenderExpr;
use crate::SpecError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use v2v_frame::FrameType;
use v2v_time::{Rational, TimeSet};

/// Output stream settings.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OutputSettings {
    /// Output frame geometry/format (the paper's benchmarks use 1280×720).
    pub frame_ty: FrameType,
    /// Output frame duration (1 / fps).
    pub frame_dur: Rational,
    /// Output GOP size in frames.
    pub gop_size: u32,
    /// Output quantizer.
    pub quantizer: u8,
}

impl OutputSettings {
    /// 720p-like defaults at 30 fps with a 1-second GOP.
    pub fn new(frame_ty: FrameType, fps: i64) -> OutputSettings {
        OutputSettings {
            frame_ty,
            frame_dur: Rational::new(1, fps),
            gop_size: fps as u32,
            quantizer: 2,
        }
    }
}

/// A complete declarative video editing / synthesis task.
///
/// `videos` and `data_arrays` map names used in the render expression to
/// *locators* (paths or logical identifiers); the engine's catalog
/// resolves locators to actual streams and arrays at bind time, keeping
/// the spec purely declarative and serializable.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Spec {
    /// The output instants.
    pub time_domain: TimeSet,
    /// The per-instant frame definition.
    pub render: RenderExpr,
    /// Video name → locator.
    #[serde(default)]
    pub videos: BTreeMap<String, String>,
    /// Data array name → locator (a JSON annotation path or `sql:` query).
    #[serde(default)]
    pub data_arrays: BTreeMap<String, String>,
    /// Output stream settings.
    pub output: OutputSettings,
}

impl Spec {
    /// Serializes to pretty JSON (the CLI's interchange format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("specs are always serializable")
    }

    /// Parses a serialized spec.
    pub fn from_json(text: &str) -> Result<Spec, SpecError> {
        serde_json::from_str(text).map_err(|e| SpecError::Json(e.to_string()))
    }

    /// Videos referenced by the render expression (sorted, deduplicated).
    pub fn referenced_videos(&self) -> Vec<String> {
        let mut v = Vec::new();
        self.render.referenced_videos(&mut v);
        v.sort();
        v.dedup();
        v
    }

    /// Data arrays referenced by the render expression (sorted,
    /// deduplicated).
    pub fn referenced_arrays(&self) -> Vec<String> {
        let mut v = Vec::new();
        self.render.referenced_arrays(&mut v);
        v.sort();
        v.dedup();
        v
    }

    /// The time window `[min, max]` each data array is read over, with
    /// the affine index maps applied to the spec's time domain. Drives
    /// bounded materialization (paper §IV-B: "materialized in portions by
    /// bounding the time").
    pub fn array_windows(&self) -> BTreeMap<String, (Rational, Rational)> {
        let mut out = BTreeMap::new();
        if let (Some(lo), Some(hi)) = (self.time_domain.min(), self.time_domain.max()) {
            collect_array_windows(&self.render, lo, hi, &mut out);
        }
        out
    }
}

fn widen(
    out: &mut BTreeMap<String, (Rational, Rational)>,
    array: &str,
    lo: Rational,
    hi: Rational,
) {
    out.entry(array.to_string())
        .and_modify(|(l, h)| {
            *l = (*l).min(lo);
            *h = (*h).max(hi);
        })
        .or_insert((lo, hi));
}

fn collect_data_windows(
    d: &crate::expr::DataExpr,
    lo: Rational,
    hi: Rational,
    out: &mut BTreeMap<String, (Rational, Rational)>,
) {
    use crate::expr::DataExpr as D;
    match d {
        D::Const(_) | D::T => {}
        D::ArrayRef { array, time } => {
            let a = time.apply(lo);
            let b = time.apply(hi);
            widen(out, array, a.min(b), a.max(b));
        }
        D::Cmp { lhs, rhs, .. } | D::Arith { lhs, rhs, .. } => {
            collect_data_windows(lhs, lo, hi, out);
            collect_data_windows(rhs, lo, hi, out);
        }
        D::And(a, b) | D::Or(a, b) => {
            collect_data_windows(a, lo, hi, out);
            collect_data_windows(b, lo, hi, out);
        }
        D::Not(e) | D::Len(e) => collect_data_windows(e, lo, hi, out),
    }
}

fn collect_array_windows(
    expr: &RenderExpr,
    lo: Rational,
    hi: Rational,
    out: &mut BTreeMap<String, (Rational, Rational)>,
) {
    match expr {
        RenderExpr::FrameRef { .. } => {}
        RenderExpr::Match { arms } => {
            for arm in arms {
                // Conservative: use each arm's own bounds intersected with
                // the enclosing window.
                let (alo, ahi) = match (arm.when.min(), arm.when.max()) {
                    (Some(a), Some(b)) => (a.max(lo), b.min(hi)),
                    _ => continue,
                };
                if alo <= ahi {
                    collect_array_windows(&arm.expr, alo, ahi, out);
                }
            }
        }
        RenderExpr::Transform { args, .. } => {
            for a in args {
                match a {
                    crate::expr::Arg::Frame(e) => collect_array_windows(e, lo, hi, out),
                    crate::expr::Arg::Data(d) => collect_data_windows(d, lo, hi, out),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Arg, DataExpr};
    use crate::ops::TransformOp;
    use v2v_time::{r, TimeRange};

    fn sample() -> Spec {
        let domain = TimeSet::from_range(TimeRange::new(r(0, 1), r(1, 1), r(1, 30)));
        Spec {
            time_domain: domain.clone(),
            render: RenderExpr::matching(vec![(
                domain,
                RenderExpr::transform(
                    TransformOp::BoundingBox,
                    vec![
                        Arg::Frame(RenderExpr::video("vid1")),
                        Arg::Data(DataExpr::array("vid1_bb")),
                    ],
                ),
            )]),
            videos: [("vid1".to_string(), "video1.svc".to_string())].into(),
            data_arrays: [("vid1_bb".to_string(), "annot1.json".to_string())].into(),
            output: OutputSettings::new(FrameType::yuv420p(128, 72), 30),
        }
    }

    #[test]
    fn json_round_trip() {
        let s = sample();
        let js = s.to_json();
        let back = Spec::from_json(&js).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn reference_queries() {
        let s = sample();
        assert_eq!(s.referenced_videos(), vec!["vid1"]);
        assert_eq!(s.referenced_arrays(), vec!["vid1_bb"]);
    }

    #[test]
    fn bad_json_is_an_error() {
        assert!(matches!(Spec::from_json("{"), Err(SpecError::Json(_))));
        assert!(Spec::from_json("{\"wrong\": true}").is_err());
    }

    #[test]
    fn output_settings_defaults() {
        let o = OutputSettings::new(FrameType::yuv420p(1280, 720), 24);
        assert_eq!(o.frame_dur, r(1, 24));
        assert_eq!(o.gop_size, 24);
    }

    #[test]
    fn array_windows_identity_map() {
        let s = sample();
        let w = s.array_windows();
        assert_eq!(w["vid1_bb"], (r(0, 1), r(29, 30)));
    }

    #[test]
    fn array_windows_shifted_map() {
        let mut s = sample();
        s.render = RenderExpr::transform(
            TransformOp::BoundingBox,
            vec![
                Arg::Frame(RenderExpr::video("vid1")),
                Arg::Data(DataExpr::ArrayRef {
                    array: "vid1_bb".into(),
                    time: v2v_time::AffineTimeMap::shift(r(100, 1)),
                }),
            ],
        );
        let w = s.array_windows();
        assert_eq!(w["vid1_bb"], (r(100, 1), r(100, 1) + r(29, 30)));
    }

    #[test]
    fn array_windows_union_over_sites() {
        let mut s = sample();
        // Two references with different shifts widen the window.
        s.render = RenderExpr::transform(
            TransformOp::IfThenElse,
            vec![
                Arg::Data(DataExpr::lt(
                    DataExpr::ArrayRef {
                        array: "vid1_bb".into(),
                        time: v2v_time::AffineTimeMap::shift(r(-10, 1)),
                    },
                    DataExpr::Len(Box::new(DataExpr::array("vid1_bb"))),
                )),
                Arg::Frame(RenderExpr::video("vid1")),
                Arg::Frame(RenderExpr::video("vid1")),
            ],
        );
        let w = s.array_windows();
        assert_eq!(w["vid1_bb"].0, r(-10, 1));
        assert_eq!(w["vid1_bb"].1, r(29, 30));
    }
}
