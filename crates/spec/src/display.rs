//! Pretty-printing specs in the paper's DSL notation.
//!
//! Renders a [`Spec`] the way §III-B writes them:
//!
//! ```text
//! TimeDomain = Range(0, 600, 1/30)
//! Render(t) = match t {
//!     t in Range(0, 300, 1/30) => vid1[t],
//!     t in Range(300, 600, 1/30) => Grid(vid1[t + 13463/30], ...),
//! }
//! Spec = <TimeDomain, Render, videos: {"vid1": "video1.mp4"}>
//! ```
//!
//! Used by the CLI's `check`/`explain` output and handy in debugging;
//! parsing this notation back is *not* supported (JSON is the
//! interchange format).

use crate::expr::{Arg, ArithOp, CmpOp, DataExpr, RenderExpr};
use crate::ops::TransformOp;
use crate::spec::Spec;
use std::fmt::Write;
use v2v_time::TimeSet;

/// Renders a whole spec in the paper's notation.
pub fn to_dsl_string(spec: &Spec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "TimeDomain = {}", time_set(&spec.time_domain));
    let _ = write!(out, "Render(t) = ");
    render_expr(&mut out, &spec.render, 0);
    let _ = writeln!(out);
    let videos: Vec<String> = spec
        .videos
        .iter()
        .map(|(k, v)| format!("{k:?}: {v:?}"))
        .collect();
    let arrays: Vec<String> = spec
        .data_arrays
        .iter()
        .map(|(k, v)| format!("{k:?}: {v:?}"))
        .collect();
    let _ = write!(
        out,
        "Spec = <TimeDomain, Render, videos: {{{}}}",
        videos.join(", ")
    );
    if !arrays.is_empty() {
        let _ = write!(out, ", data_arrays: {{{}}}", arrays.join(", "));
    }
    let _ = writeln!(out, ">");
    out
}

fn time_set(s: &TimeSet) -> String {
    let parts: Vec<String> = s
        .ranges()
        .iter()
        .map(|r| {
            if r.count() == 1 {
                format!("{{{}}}", r.start())
            } else {
                format!("Range({}, {}, {})", r.start(), r.end_exclusive(), r.step())
            }
        })
        .collect();
    if parts.is_empty() {
        "∅".to_string()
    } else {
        parts.join(" ∪ ")
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn render_expr(out: &mut String, e: &RenderExpr, level: usize) {
    match e {
        RenderExpr::FrameRef { video, time } => {
            let _ = write!(out, "{video}[{time}]");
        }
        RenderExpr::Match { arms } => {
            out.push_str("match t {\n");
            for arm in arms {
                indent(out, level + 1);
                let _ = write!(out, "t in {} => ", time_set(&arm.when));
                render_expr(out, &arm.expr, level + 1);
                out.push_str(",\n");
            }
            indent(out, level);
            out.push('}');
        }
        RenderExpr::Transform { op, args } => {
            let name = match op {
                TransformOp::Udf(id) => format!("Udf#{id}"),
                other => format!("{other:?}"),
            };
            let _ = write!(out, "{name}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                match a {
                    Arg::Frame(f) => render_expr(out, f, level),
                    Arg::Data(d) => data_expr(out, d),
                }
            }
            out.push(')');
        }
    }
}

fn data_expr(out: &mut String, d: &DataExpr) {
    match d {
        DataExpr::Const(v) => {
            let _ = write!(out, "{v}");
        }
        DataExpr::T => out.push('t'),
        DataExpr::ArrayRef { array, time } => {
            let _ = write!(out, "{array}[{time}]");
        }
        DataExpr::Cmp { op, lhs, rhs } => {
            let sym = match op {
                CmpOp::Eq => "=",
                CmpOp::Ne => "!=",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            };
            data_expr(out, lhs);
            let _ = write!(out, " {sym} ");
            data_expr(out, rhs);
        }
        DataExpr::Arith { op, lhs, rhs } => {
            let sym = match op {
                ArithOp::Add => "+",
                ArithOp::Sub => "-",
                ArithOp::Mul => "*",
                ArithOp::Div => "/",
            };
            out.push('(');
            data_expr(out, lhs);
            let _ = write!(out, " {sym} ");
            data_expr(out, rhs);
            out.push(')');
        }
        DataExpr::Not(e) => {
            out.push('¬');
            data_expr(out, e);
        }
        DataExpr::And(a, b) => {
            data_expr(out, a);
            out.push_str(" ∧ ");
            data_expr(out, b);
        }
        DataExpr::Or(a, b) => {
            data_expr(out, a);
            out.push_str(" ∨ ");
            data_expr(out, b);
        }
        DataExpr::Len(e) => {
            out.push('|');
            data_expr(out, e);
            out.push('|');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{bounding_box, if_then_else};
    use crate::spec::OutputSettings;
    use v2v_frame::FrameType;
    use v2v_time::{r, TimeRange};

    #[test]
    fn renders_paper_example_shape() {
        // The §IV-C worked example:
        // Render(t) = IfThenElse(a[t] < 5, vid1[t], vid2[t]).
        let domain = TimeSet::from_instants([r(0, 1), r(1, 1), r(2, 1)]);
        let spec = Spec {
            time_domain: domain,
            render: if_then_else(
                DataExpr::lt(DataExpr::array("a"), DataExpr::constant(5i64)),
                RenderExpr::video("vid1"),
                RenderExpr::video("vid2"),
            ),
            videos: [
                ("vid1".to_string(), "v1.svc".to_string()),
                ("vid2".to_string(), "v2.svc".to_string()),
            ]
            .into(),
            data_arrays: [("a".to_string(), "a.json".to_string())].into(),
            output: OutputSettings::new(FrameType::yuv420p(64, 64), 30),
        };
        let text = to_dsl_string(&spec);
        assert!(text.contains("TimeDomain = Range(0, 3, 1)"), "{text}");
        assert!(
            text.contains("IfThenElse(a[t] < 5, vid1[t], vid2[t])"),
            "{text}"
        );
        assert!(text.contains("data_arrays: {\"a\": \"a.json\"}"), "{text}");
    }

    #[test]
    fn renders_match_arms() {
        let lo = TimeSet::from_range(TimeRange::new(r(0, 1), r(1, 1), r(1, 30)));
        let hi = TimeSet::from_range(TimeRange::new(r(1, 1), r(2, 1), r(1, 30)));
        let spec = Spec {
            time_domain: lo.union(&hi),
            render: RenderExpr::matching(vec![
                (lo, RenderExpr::video("a")),
                (hi, RenderExpr::video_shifted("b", r(5, 1))),
            ]),
            videos: [
                ("a".to_string(), "a.svc".to_string()),
                ("b".to_string(), "b.svc".to_string()),
            ]
            .into(),
            data_arrays: Default::default(),
            output: OutputSettings::new(FrameType::yuv420p(64, 64), 30),
        };
        let text = to_dsl_string(&spec);
        assert!(text.contains("match t {"), "{text}");
        assert!(text.contains("t in Range(0, 1, 1/30) => a[t],"), "{text}");
        assert!(text.contains("=> b[t + 5],"), "{text}");
    }

    #[test]
    fn renders_udf_and_logic() {
        let spec = Spec {
            time_domain: TimeSet::singleton(r(0, 1)),
            render: RenderExpr::transform(
                TransformOp::Udf(7),
                vec![
                    Arg::Frame(bounding_box(RenderExpr::video("a"), "bb")),
                    Arg::Data(DataExpr::non_empty(DataExpr::array("bb"))),
                ],
            ),
            videos: [("a".to_string(), "a.svc".to_string())].into(),
            data_arrays: [("bb".to_string(), "bb.json".to_string())].into(),
            output: OutputSettings::new(FrameType::yuv420p(64, 64), 30),
        };
        let text = to_dsl_string(&spec);
        assert!(
            text.contains("Udf#7(BoundingBox(a[t], bb[t]), |bb[t]| > 0)"),
            "{text}"
        );
    }
}
