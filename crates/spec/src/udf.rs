//! User-defined transformations (paper §III-C).
//!
//! "These frame transformations can be created by the V2V module or in
//! user-defined functions (UDFs). … More transformations can be added
//! through UDFs."
//!
//! A UDF occupies a numeric id in the spec (`TransformOp::Udf(id)`,
//! serialized as `{"udf": id}`), keeping specs fully serializable. The
//! [`UdfRegistry`] supplies the *signature* (name + argument kinds) the
//! static checker needs; execution kernels are registered separately
//! with the execution catalog, mirroring how the declarative layer never
//! sees pixels.

use crate::ops::ArgKind;
use std::collections::BTreeMap;

/// Static description of one UDF.
#[derive(Clone, Debug)]
pub struct UdfSignature {
    /// Human-readable name (for errors and explain output).
    pub name: String,
    /// Argument kinds in call order (must include at least one frame).
    pub args: Vec<ArgKind>,
}

/// Signature registry consulted by the checker.
#[derive(Clone, Debug, Default)]
pub struct UdfRegistry {
    by_id: BTreeMap<u16, UdfSignature>,
}

impl UdfRegistry {
    /// An empty registry.
    pub fn new() -> UdfRegistry {
        UdfRegistry::default()
    }

    /// Registers (or replaces) a UDF signature.
    ///
    /// # Panics
    /// Panics if the signature has no frame argument: a transformation
    /// must return a frame derived from at least one input frame.
    pub fn register(
        &mut self,
        id: u16,
        name: impl Into<String>,
        args: Vec<ArgKind>,
    ) -> &mut UdfRegistry {
        assert!(
            args.iter().any(|a| matches!(a, ArgKind::Frame)),
            "UDF must take at least one frame argument"
        );
        self.by_id.insert(
            id,
            UdfSignature {
                name: name.into(),
                args,
            },
        );
        self
    }

    /// Looks up a signature.
    pub fn get(&self, id: u16) -> Option<&UdfSignature> {
        self.by_id.get(&id)
    }

    /// All registered ids.
    pub fn ids(&self) -> impl Iterator<Item = u16> + '_ {
        self.by_id.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::DataType;

    #[test]
    fn register_and_lookup() {
        let mut reg = UdfRegistry::new();
        reg.register(
            7,
            "sepia",
            vec![ArgKind::Frame, ArgKind::Data(DataType::Number)],
        );
        let sig = reg.get(7).unwrap();
        assert_eq!(sig.name, "sepia");
        assert_eq!(sig.args.len(), 2);
        assert!(reg.get(8).is_none());
        assert_eq!(reg.ids().collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    #[should_panic]
    fn frameless_udf_rejected() {
        UdfRegistry::new().register(1, "bad", vec![ArgKind::Data(DataType::Number)]);
    }
}
