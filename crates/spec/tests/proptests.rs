//! Property-based tests for the DSL: arbitrary well-formed expressions
//! survive JSON round trips, and the checker's dependency analysis is
//! consistent with brute-force evaluation of the time maps.

use proptest::prelude::*;
use v2v_spec::{Arg, DataExpr, OutputSettings, RenderExpr, Spec, TransformOp};
use v2v_time::{r, AffineTimeMap, Rational, TimeRange, TimeSet};

/// Offsets on the 1/30 grid with integer scales: affine images of the
/// output grid stay on the grid, so a wide 1/30 availability window can
/// serve every requirement.
fn affine() -> impl Strategy<Value = AffineTimeMap> {
    (1i64..4, -3600i64..3600).prop_map(|(scale, off30)| {
        AffineTimeMap::new(Rational::from_int(scale), Rational::new(off30, 30))
    })
}

fn leaf() -> impl Strategy<Value = RenderExpr> {
    ("[ab]", affine()).prop_map(|(video, time)| RenderExpr::FrameRef { video, time })
}

fn expr() -> impl Strategy<Value = RenderExpr> {
    leaf().prop_recursive(3, 12, 4, |inner| {
        prop_oneof![
            // Unary transform with a numeric parameter.
            (inner.clone(), -5.0f64..5.0).prop_map(|(e, v)| RenderExpr::transform(
                TransformOp::Blur,
                vec![Arg::Frame(e), Arg::Data(DataExpr::constant(v.abs()))],
            )),
            // Binary transform.
            (inner.clone(), inner.clone(), 0.0f64..1.0).prop_map(|(a, b, alpha)| {
                RenderExpr::transform(
                    TransformOp::Crossfade,
                    vec![
                        Arg::Frame(a),
                        Arg::Frame(b),
                        Arg::Data(DataExpr::constant(alpha)),
                    ],
                )
            }),
            // Match over a split of a small window.
            (inner.clone(), inner, 1i64..30).prop_map(|(a, b, cut)| {
                let lo = TimeSet::from_range(TimeRange::new(r(0, 1), r(cut, 30), r(1, 30)));
                let hi = TimeSet::from_range(TimeRange::new(r(cut, 30), r(30, 30), r(1, 30)));
                RenderExpr::matching(vec![(lo, a), (hi, b)])
            }),
        ]
    })
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    expr().prop_map(|render| {
        let output = OutputSettings::new(v2v_frame::FrameType::yuv420p(64, 64), 30);
        Spec {
            time_domain: TimeSet::from_range(TimeRange::new(r(0, 1), r(1, 1), r(1, 30))),
            render,
            videos: [
                ("a".to_string(), "a.svc".to_string()),
                ("b".to_string(), "b.svc".to_string()),
            ]
            .into(),
            data_arrays: Default::default(),
            output,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn spec_json_round_trip(spec in spec_strategy()) {
        let js = spec.to_json();
        let back = Spec::from_json(&js).unwrap();
        prop_assert_eq!(spec, back);
    }

    #[test]
    fn checker_requirements_match_brute_force(spec in spec_strategy()) {
        use std::collections::BTreeMap;
        use v2v_spec::check::{check_spec, SourceInfo};
        // Sources covering everything any map could require.
        let huge = TimeSet::from_range(TimeRange::new(r(-2000, 1), r(2000, 1), r(1, 30)));
        let sources: BTreeMap<String, SourceInfo> = ["a", "b"]
            .into_iter()
            .map(|v| {
                (
                    v.to_string(),
                    SourceInfo {
                        frame_ty: v2v_frame::FrameType::yuv420p(64, 64),
                        available: huge.clone(),
                    },
                )
            })
            .collect();
        match check_spec(&spec, &sources) {
            Ok(report) => {
                // Brute force: evaluate the expression structure at every
                // instant and record which (video, src_t) pairs are read.
                let mut needed: BTreeMap<String, Vec<Rational>> = BTreeMap::new();
                for t in spec.time_domain.iter() {
                    brute(&spec.render, t, &mut needed);
                }
                for (video, instants) in needed {
                    let req = report
                        .required
                        .get(&video)
                        .unwrap_or_else(|| panic!("missing requirement for {video}"));
                    for src_t in instants {
                        prop_assert!(
                            req.contains(src_t),
                            "checker missed {video}[{src_t}]"
                        );
                    }
                }
            }
            Err(errors) => {
                // The only acceptable failure with total sources is an
                // off-grid range issue; our generator never creates one.
                prop_assert!(false, "checker rejected valid spec: {errors:?}");
            }
        }
    }
}

/// Records every frame read `expr` performs at instant `t` under
/// first-match-wins semantics.
fn brute(
    expr: &RenderExpr,
    t: Rational,
    out: &mut std::collections::BTreeMap<String, Vec<Rational>>,
) {
    match expr {
        RenderExpr::FrameRef { video, time } => {
            out.entry(video.clone()).or_default().push(time.apply(t));
        }
        RenderExpr::Match { arms } => {
            for arm in arms {
                if arm.when.contains(t) {
                    brute(&arm.expr, t, out);
                    return;
                }
            }
        }
        RenderExpr::Transform { args, .. } => {
            for a in args {
                if let Arg::Frame(e) = a {
                    brute(e, t, out);
                }
            }
        }
    }
}
