#![warn(missing_docs)]

//! Adaptive physical storage for V2V catalog sources.
//!
//! The paper's ToS-vs-KABR gap is a keyframe-density story: smart-cut
//! heavy queries are cheap on keyframe-dense sources and expensive on
//! long-GOP ones. This crate makes density (and resolution) a per-query
//! *choice* by storing each source as a **variant set**:
//!
//! * `original` — the bitstream as ingested (always authoritative);
//! * `dense` — short-GOP re-encode, cheap smart cuts;
//! * `archive` — long-GOP re-encode, small and cheap to scan;
//! * `proxy` — reduced-resolution re-encode for preview traffic.
//!
//! Transcodes go through the ordinary decoder/encoder at quantizer 0,
//! so `dense`/`archive` decode frame-for-frame identical to the
//! original and `proxy` decodes identical to the *conformed* original.
//! A [`VariantManifest`] sidecar records per-variant keyframe indexes,
//! byte sizes, and content digests keyed back to the original's
//! prefix digest — plan fingerprints and cache keys never observe the
//! variant choice.
//!
//! [`SourceStore`] owns the on-disk layout
//! (`<root>/<source>/<kind>.svc` + `manifest.json`), materialization
//! and verification; [`profile`] classifies observed plans into
//! smart-cut / scan / preview access rates; [`compact`] turns those
//! rates plus a byte budget into materialize/drop actions.

pub mod compact;
pub mod manifest;
pub mod profile;

pub use compact::{plan_compaction, CompactionInput, StoreAction, StoreOp};
pub use manifest::{VariantEntry, VariantManifest};
pub use profile::{profile_plan, AccessProfile};

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use v2v_container::{read_svc, write_svc, ContainerError, StreamWriter, VideoStream};
use v2v_exec::Catalog;
use v2v_frame::ops::conform;
use v2v_frame::FrameType;
use v2v_plan::{VariantFacts, VariantKind};

/// Errors raised by the variant store.
#[derive(Debug, thiserror::Error)]
pub enum StoreError {
    /// Filesystem trouble under the store root.
    #[error("store io at {path:?}: {source}")]
    Io {
        /// The offending path.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// Container-level failure while reading or transcoding.
    #[error("container: {0}")]
    Container(#[from] ContainerError),
    /// A manifest sidecar that cannot be parsed.
    #[error("corrupt manifest at {path:?}: {message}")]
    CorruptManifest {
        /// The manifest path.
        path: PathBuf,
        /// What went wrong.
        message: String,
    },
    /// A variant whose bitstream digest disagrees with its manifest.
    #[error("variant {kind} of '{name}' fails digest verification")]
    DigestMismatch {
        /// The source name.
        name: String,
        /// The variant kind.
        kind: VariantKind,
    },
    /// Asked about a source the store has never seen.
    #[error("unknown source '{0}' in store")]
    UnknownSource(String),
    /// Asked about a variant that is not materialized.
    #[error("variant {kind} of '{name}' is not materialized")]
    UnknownVariant {
        /// The source name.
        name: String,
        /// The variant kind.
        kind: VariantKind,
    },
    /// The original variant cannot be materialized or dropped.
    #[error("the original bitstream is not a store-managed variant")]
    OriginalNotManaged,
}

fn io_err(path: impl Into<PathBuf>) -> impl FnOnce(std::io::Error) -> StoreError {
    let path = path.into();
    move |source| StoreError::Io { path, source }
}

/// Transcode parameters for one materialization.
#[derive(Clone, Copy, Debug)]
pub struct TranscodeSpec {
    /// Which variant to produce.
    pub kind: VariantKind,
    /// GOP size override; `None` picks the kind's default relative to
    /// the original's GOP.
    pub gop: Option<u32>,
    /// Target geometry for proxies; `None` halves the original.
    pub frame_ty: Option<FrameType>,
}

impl TranscodeSpec {
    /// The default spec for a kind.
    pub fn for_kind(kind: VariantKind) -> TranscodeSpec {
        TranscodeSpec {
            kind,
            gop: None,
            frame_ty: None,
        }
    }

    /// Default GOP for this kind given the original's GOP.
    pub fn gop_for(&self, original_gop: u32) -> u32 {
        self.gop.unwrap_or(match self.kind {
            VariantKind::Original => original_gop,
            // Dense: an eighth of the original cadence, at least 2 so
            // the variant is still meaningfully compressed.
            VariantKind::Dense => (original_gop / 8).max(2),
            // Archive: eight× the original cadence.
            VariantKind::Archive => original_gop.saturating_mul(8).max(2),
            VariantKind::Proxy => original_gop,
        })
    }

    /// Target frame type for this kind given the original's.
    pub fn frame_ty_for(&self, original: FrameType) -> FrameType {
        match self.frame_ty {
            Some(ty) => ty,
            None if self.kind == VariantKind::Proxy => FrameType {
                width: (original.width / 2).max(1),
                height: (original.height / 2).max(1),
                ..original
            },
            None => original,
        }
    }
}

/// The on-disk variant store: one directory per source holding variant
/// bitstreams and a `manifest.json` sidecar.
#[derive(Clone, Debug)]
pub struct SourceStore {
    root: PathBuf,
}

impl SourceStore {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<SourceStore, StoreError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(io_err(&root))?;
        Ok(SourceStore { root })
    }

    /// The store root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn source_dir(&self, name: &str) -> PathBuf {
        // Source names come from spec bindings (identifiers); reject
        // anything path-like outright rather than escaping it.
        self.root.join(name)
    }

    fn manifest_path(&self, name: &str) -> PathBuf {
        self.source_dir(name).join("manifest.json")
    }

    fn variant_path(&self, name: &str, kind: VariantKind) -> PathBuf {
        self.source_dir(name).join(format!("{}.svc", kind.name()))
    }

    /// Loads the manifest for `name`, if the store knows the source.
    pub fn manifest(&self, name: &str) -> Result<Option<VariantManifest>, StoreError> {
        let path = self.manifest_path(name);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io_err(&path)(e)),
        };
        serde_json::from_slice(&bytes)
            .map(Some)
            .map_err(|e| StoreError::CorruptManifest {
                path,
                message: e.to_string(),
            })
    }

    /// All source names with manifests, sorted.
    pub fn sources(&self) -> Result<Vec<String>, StoreError> {
        let mut out = Vec::new();
        let entries = match fs::read_dir(&self.root) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(io_err(&self.root)(e)),
        };
        for entry in entries {
            let entry = entry.map_err(io_err(&self.root))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if entry.path().join("manifest.json").is_file() {
                out.push(name);
            }
        }
        out.sort();
        Ok(out)
    }

    /// All manifests in the store, sorted by source name.
    pub fn manifests(&self) -> Result<Vec<VariantManifest>, StoreError> {
        let mut out = Vec::new();
        for name in self.sources()? {
            if let Some(m) = self.manifest(&name)? {
                out.push(m);
            }
        }
        Ok(out)
    }

    fn write_manifest(&self, manifest: &VariantManifest) -> Result<(), StoreError> {
        let dir = self.source_dir(&manifest.name);
        fs::create_dir_all(&dir).map_err(io_err(&dir))?;
        let path = self.manifest_path(&manifest.name);
        let mut json =
            serde_json::to_string_pretty(manifest).map_err(|e| StoreError::CorruptManifest {
                path: path.clone(),
                message: e.to_string(),
            })?;
        json.push('\n');
        // Write-then-rename so a crashed compactor never leaves a torn
        // manifest behind.
        let tmp = dir.join("manifest.json.tmp");
        fs::write(&tmp, json).map_err(io_err(&tmp))?;
        fs::rename(&tmp, &path).map_err(io_err(&path))?;
        Ok(())
    }

    /// Transcodes one variant of `original`'s committed prefix and
    /// records it in the manifest. Live sources are covered only up to
    /// the frames present in `original` at call time; later appends
    /// leave the variant valid for that prefix (prefix digests are
    /// append-invariant).
    pub fn materialize(
        &self,
        name: &str,
        original: &VideoStream,
        spec: TranscodeSpec,
    ) -> Result<VariantEntry, StoreError> {
        if spec.kind == VariantKind::Original {
            return Err(StoreError::OriginalNotManaged);
        }
        let variant = transcode(original, spec)?;
        let covered = variant.len() as u64;
        let path = self.variant_path(name, spec.kind);
        let dir = self.source_dir(name);
        fs::create_dir_all(&dir).map_err(io_err(&dir))?;
        write_svc(&variant, &path)?;

        let entry = VariantEntry {
            kind: spec.kind,
            params: *variant.params(),
            keyframes: variant
                .keyframe_indices()
                .into_iter()
                .map(|k| k as u64)
                .collect(),
            byte_size: variant.byte_size(),
            covered_frames: covered,
            content_digest: variant.content_digest(),
            pinned: false,
        };
        let mut manifest = self.manifest(name)?.unwrap_or_else(|| VariantManifest {
            name: name.to_string(),
            original_digest: original.content_digest(),
            covered_frames: covered,
            prefix_digest: original.prefix_digest(covered as usize),
            variants: Vec::new(),
        });
        // Re-key the manifest to the current committed prefix: all
        // variants cover prefixes of the same append-only stream, so
        // the longest prefix digest is the strongest binding.
        if covered > manifest.covered_frames {
            manifest.covered_frames = covered;
            manifest.prefix_digest = original.prefix_digest(covered as usize);
        }
        manifest.original_digest = original.content_digest();
        manifest.variants.retain(|v| v.kind != entry.kind);
        manifest.variants.push(entry.clone());
        manifest.variants.sort_by_key(|v| v.kind);
        self.write_manifest(&manifest)?;
        Ok(entry)
    }

    /// Removes a variant's bitstream and manifest entry. Pinned
    /// variants are only dropped when `force` is set.
    pub fn drop_variant(
        &self,
        name: &str,
        kind: VariantKind,
        force: bool,
    ) -> Result<bool, StoreError> {
        if kind == VariantKind::Original {
            return Err(StoreError::OriginalNotManaged);
        }
        let Some(mut manifest) = self.manifest(name)? else {
            return Err(StoreError::UnknownSource(name.to_string()));
        };
        let Some(pos) = manifest.variants.iter().position(|v| v.kind == kind) else {
            return Ok(false);
        };
        if manifest.variants[pos].pinned && !force {
            return Ok(false);
        }
        manifest.variants.remove(pos);
        self.write_manifest(&manifest)?;
        let path = self.variant_path(name, kind);
        match fs::remove_file(&path) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_err(&path)(e)),
        }
        Ok(true)
    }

    /// Pins or unpins a variant (pinned variants survive compaction).
    pub fn pin(&self, name: &str, kind: VariantKind, pinned: bool) -> Result<(), StoreError> {
        let Some(mut manifest) = self.manifest(name)? else {
            return Err(StoreError::UnknownSource(name.to_string()));
        };
        let Some(v) = manifest.variants.iter_mut().find(|v| v.kind == kind) else {
            return Err(StoreError::UnknownVariant {
                name: name.to_string(),
                kind,
            });
        };
        v.pinned = pinned;
        self.write_manifest(&manifest)
    }

    /// Loads one variant bitstream, verifying its content digest
    /// against the manifest.
    pub fn load_variant(
        &self,
        name: &str,
        kind: VariantKind,
    ) -> Result<(VideoStream, VariantEntry), StoreError> {
        let manifest = self
            .manifest(name)?
            .ok_or_else(|| StoreError::UnknownSource(name.to_string()))?;
        let entry = manifest
            .variants
            .iter()
            .find(|v| v.kind == kind)
            .cloned()
            .ok_or(StoreError::UnknownVariant {
                name: name.to_string(),
                kind,
            })?;
        let stream = read_svc(self.variant_path(name, kind))?;
        if stream.content_digest() != entry.content_digest {
            return Err(StoreError::DigestMismatch {
                name: name.to_string(),
                kind,
            });
        }
        Ok((stream, entry))
    }

    /// Total bytes of store-managed variant bitstreams.
    pub fn managed_bytes(&self) -> Result<u64, StoreError> {
        Ok(self
            .manifests()?
            .iter()
            .flat_map(|m| &m.variants)
            .map(|v| v.byte_size)
            .sum())
    }

    /// Attaches every valid variant to its catalog source. A variant
    /// attaches only when the catalog stream's prefix digest over the
    /// manifest's covered frames matches — appends keep that true,
    /// source replacement breaks it (the variant is skipped, never
    /// served stale). Returns `(attached, skipped)` counts.
    pub fn attach(&self, catalog: &mut Catalog) -> Result<(u64, u64), StoreError> {
        let mut attached = 0;
        let mut skipped = 0;
        for manifest in self.manifests()? {
            let Some(original) = catalog.video(&manifest.name).cloned() else {
                continue;
            };
            let covered = manifest.covered_frames as usize;
            if original.len() < covered || original.prefix_digest(covered) != manifest.prefix_digest
            {
                skipped += manifest.variants.len() as u64;
                continue;
            }
            for entry in &manifest.variants {
                match self.load_variant(&manifest.name, entry.kind) {
                    Ok((stream, entry)) => {
                        catalog.add_variant(
                            manifest.name.clone(),
                            entry.kind,
                            Arc::new(stream),
                            entry.covered_frames,
                        );
                        attached += 1;
                    }
                    Err(StoreError::DigestMismatch { .. }) => skipped += 1,
                    Err(e) => return Err(e),
                }
            }
        }
        Ok((attached, skipped))
    }

    /// Per-variant facts for status and admin views, one row per
    /// manifest entry.
    pub fn facts(&self) -> Result<Vec<(String, VariantFacts, bool)>, StoreError> {
        let mut out = Vec::new();
        for m in self.manifests()? {
            for v in &m.variants {
                out.push((
                    m.name.clone(),
                    VariantFacts {
                        kind: v.kind,
                        params: v.params,
                        keyframes: v.keyframes.clone(),
                        byte_size: v.byte_size,
                        covered_frames: v.covered_frames,
                    },
                    v.pinned,
                ));
            }
        }
        Ok(out)
    }
}

/// Re-encodes `original`'s full committed prefix as one variant.
///
/// Pixel-identical variants (`dense`, `archive`) re-encode the decoded
/// frames untouched at quantizer 0 (lossless), so they decode back
/// frame-for-frame identical. Proxies conform each decoded frame to the
/// target geometry first, so they decode identical to the *conformed*
/// original — decode-sufficient exactly when a query's output geometry
/// equals the proxy geometry.
pub fn transcode(original: &VideoStream, spec: TranscodeSpec) -> Result<VideoStream, StoreError> {
    let src_params = original.params();
    let gop = spec.gop_for(src_params.gop_size);
    let ty = spec.frame_ty_for(src_params.frame_ty);
    let params = v2v_codec::CodecParams::new(ty, gop, 0);
    let mut w = StreamWriter::new(params, original.start(), original.frame_dur());
    let (frames, _) = original.decode_range(0, original.len())?;
    for frame in &frames {
        if ty == src_params.frame_ty {
            w.push_frame(frame)?;
        } else {
            w.push_frame(&conform(frame, ty))?;
        }
    }
    Ok(w.finish()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use v2v_codec::CodecParams;
    use v2v_frame::Frame;
    use v2v_time::{r, Rational};

    /// A stream whose frames carry distinct content (frame index
    /// stamped into the luma plane) so digest and identity checks bite.
    fn marked(n: usize, gop: u32) -> VideoStream {
        let ty = FrameType::yuv420p(64, 64);
        let params = CodecParams::new(ty, gop, 0);
        let mut w = StreamWriter::new(params, Rational::ZERO, r(1, 30));
        for i in 0..n {
            let mut f = Frame::black(ty);
            v2v_frame::marker::embed(&mut f, i as u32);
            w.push_frame(&f).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn transcode_dense_is_decode_identical() {
        let orig = marked(24, 8);
        let dense = transcode(&orig, TranscodeSpec::for_kind(VariantKind::Dense)).unwrap();
        assert_eq!(dense.len(), orig.len());
        assert!(dense.keyframe_indices().len() > orig.keyframe_indices().len());
        let (a, _) = orig.decode_range(0, orig.len()).unwrap();
        let (b, _) = dense.decode_range(0, dense.len()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn transcode_proxy_conforms_geometry() {
        let orig = marked(8, 4);
        let proxy = transcode(&orig, TranscodeSpec::for_kind(VariantKind::Proxy)).unwrap();
        assert_eq!(proxy.params().frame_ty.width, 32);
        assert_eq!(proxy.params().frame_ty.height, 32);
    }

    #[test]
    fn materialize_roundtrip_and_manifest() {
        let dir = tempdir("store-mat");
        let store = SourceStore::open(&dir).unwrap();
        let orig = marked(24, 8);
        let entry = store
            .materialize("src", &orig, TranscodeSpec::for_kind(VariantKind::Dense))
            .unwrap();
        assert_eq!(entry.covered_frames, 24);
        let m = store.manifest("src").unwrap().unwrap();
        assert_eq!(m.original_digest, orig.content_digest());
        assert_eq!(m.prefix_digest, orig.prefix_digest(24));
        assert_eq!(m.variants.len(), 1);
        let (loaded, e2) = store.load_variant("src", VariantKind::Dense).unwrap();
        assert_eq!(e2.content_digest, loaded.content_digest());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn attach_skips_replaced_source() {
        let dir = tempdir("store-attach");
        let store = SourceStore::open(&dir).unwrap();
        let orig = marked(16, 8);
        store
            .materialize("src", &orig, TranscodeSpec::for_kind(VariantKind::Dense))
            .unwrap();

        let mut catalog = Catalog::new();
        catalog.add_video("src", marked(16, 8));
        let (attached, skipped) = store.attach(&mut catalog).unwrap();
        assert_eq!((attached, skipped), (1, 0));
        assert!(catalog.variant("src", VariantKind::Dense).is_some());

        // Replace the source with different content: digests disagree,
        // so the variant must be skipped.
        let mut replaced = Catalog::new();
        let ty = FrameType::yuv420p(64, 64);
        let mut w = StreamWriter::new(CodecParams::new(ty, 8, 0), Rational::ZERO, r(1, 30));
        for _ in 0..16 {
            w.push_frame(&Frame::black(ty)).unwrap();
        }
        replaced.add_video("src", w.finish().unwrap());
        let (attached, skipped) = store.attach(&mut replaced).unwrap();
        assert_eq!(attached, 0);
        assert_eq!(skipped, 1);
        assert!(replaced.variant("src", VariantKind::Dense).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn attach_covers_prefix_of_grown_source() {
        // The live-append case: materialize over 16 frames, then the
        // source grows to 24. The variant still attaches, covering the
        // 16-frame prefix.
        let dir = tempdir("store-grow");
        let store = SourceStore::open(&dir).unwrap();
        let orig = marked(16, 8);
        store
            .materialize("src", &orig, TranscodeSpec::for_kind(VariantKind::Dense))
            .unwrap();
        let mut catalog = Catalog::new();
        catalog.add_video("src", marked(24, 8));
        let (attached, skipped) = store.attach(&mut catalog).unwrap();
        assert_eq!((attached, skipped), (1, 0));
        let v = catalog.variant("src", VariantKind::Dense).unwrap();
        assert_eq!(v.covered_frames, 16);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drop_respects_pin() {
        let dir = tempdir("store-pin");
        let store = SourceStore::open(&dir).unwrap();
        let orig = marked(8, 4);
        store
            .materialize("src", &orig, TranscodeSpec::for_kind(VariantKind::Archive))
            .unwrap();
        store.pin("src", VariantKind::Archive, true).unwrap();
        assert!(!store
            .drop_variant("src", VariantKind::Archive, false)
            .unwrap());
        assert!(store
            .drop_variant("src", VariantKind::Archive, true)
            .unwrap());
        assert!(store.manifest("src").unwrap().unwrap().variants.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("v2v-{}-{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }
}
