//! Access-driven compaction: which variants to hold under a byte
//! budget.
//!
//! The compactor is deliberately a pure function from observed access
//! profiles plus current store state to a list of actions — the serve
//! daemon's background task supplies the observations and executes the
//! actions, and tests can exercise the policy without a daemon.

use crate::profile::AccessProfile;
use serde::{Deserialize, Serialize};
use v2v_plan::VariantKind;

/// Per-source input to the compaction policy.
#[derive(Clone, Debug)]
pub struct CompactionInput {
    /// Catalog source name.
    pub name: String,
    /// Observed access rates since the last pass.
    pub profile: AccessProfile,
    /// The original's compressed byte size (sizes new variants).
    pub original_bytes: u64,
    /// Currently materialized variants: kind, byte size, pinned.
    pub materialized: Vec<(VariantKind, u64, bool)>,
}

/// What to do with one variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum StoreOp {
    /// Transcode and attach the variant.
    Materialize,
    /// Remove the variant's bitstream.
    Drop,
}

/// One compaction decision.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreAction {
    /// Catalog source name.
    pub name: String,
    /// Which variant.
    pub kind: VariantKind,
    /// Materialize or drop.
    pub op: StoreOp,
}

/// Rough size estimate for a not-yet-materialized variant: dense
/// re-encodes carry more intra frames (larger), archival fewer
/// (smaller), proxies carry a quarter of the pixels.
fn estimated_bytes(kind: VariantKind, original_bytes: u64) -> u64 {
    match kind {
        VariantKind::Original => original_bytes,
        VariantKind::Dense => original_bytes.saturating_mul(2),
        VariantKind::Archive => (original_bytes / 2).max(1),
        VariantKind::Proxy => (original_bytes / 4).max(1),
    }
}

/// The demand signal backing one variant kind.
fn demand(kind: VariantKind, p: &AccessProfile) -> u64 {
    match kind {
        VariantKind::Original => u64::MAX,
        VariantKind::Dense => p.smart_cut,
        VariantKind::Archive => p.scan,
        VariantKind::Proxy => p.preview,
    }
}

/// `true` if the observed profile justifies holding this variant.
fn wanted(kind: VariantKind, p: &AccessProfile) -> bool {
    match kind {
        VariantKind::Original => true,
        // Dense pays off when smart cuts are the dominant decode shape.
        VariantKind::Dense => p.smart_cut > 0 && p.smart_cut >= p.scan,
        // Archive pays off when scans dominate.
        VariantKind::Archive => p.scan > 0 && p.scan > p.smart_cut,
        // Proxy pays off when preview traffic is a real share of reads.
        VariantKind::Proxy => p.preview > 0 && p.preview * 2 >= p.total(),
    }
}

/// Computes materialize/drop actions holding total managed bytes under
/// `budget_bytes` (`u64::MAX` = unbounded). Pinned variants are never
/// dropped. Deterministic: inputs are processed in order, and within a
/// pass drops of unwanted variants come first, then materializations by
/// descending demand, then budget evictions by ascending demand.
pub fn plan_compaction(inputs: &[CompactionInput], budget_bytes: u64) -> Vec<StoreAction> {
    let mut actions = Vec::new();
    let mut held: Vec<(usize, VariantKind, u64, bool)> = Vec::new();
    let mut total: u64 = 0;
    for (i, input) in inputs.iter().enumerate() {
        for &(kind, bytes, pinned) in &input.materialized {
            held.push((i, kind, bytes, pinned));
            total += bytes;
        }
    }

    // 1. Drop unwanted, unpinned variants regardless of budget.
    held.retain(|&(i, kind, bytes, pinned)| {
        let keep = pinned || wanted(kind, &inputs[i].profile);
        if !keep {
            actions.push(StoreAction {
                name: inputs[i].name.clone(),
                kind,
                op: StoreOp::Drop,
            });
            total -= bytes;
        }
        keep
    });

    // 2. Materialize wanted-but-missing variants while they fit,
    //    highest demand first.
    let mut candidates: Vec<(usize, VariantKind, u64)> = Vec::new();
    for (i, input) in inputs.iter().enumerate() {
        for kind in [VariantKind::Dense, VariantKind::Archive, VariantKind::Proxy] {
            if wanted(kind, &input.profile)
                && !input.materialized.iter().any(|&(k, _, _)| k == kind)
            {
                candidates.push((i, kind, demand(kind, &input.profile)));
            }
        }
    }
    candidates.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
    for (i, kind, _) in candidates {
        let est = estimated_bytes(kind, inputs[i].original_bytes);
        if total.saturating_add(est) > budget_bytes {
            continue;
        }
        actions.push(StoreAction {
            name: inputs[i].name.clone(),
            kind,
            op: StoreOp::Materialize,
        });
        total += est;
    }

    // 3. Still over budget (budget shrank): evict unpinned variants,
    //    least-demanded first.
    if total > budget_bytes {
        held.sort_by_key(|&(i, kind, _, _)| demand(kind, &inputs[i].profile));
        for &(i, kind, bytes, pinned) in &held {
            if total <= budget_bytes {
                break;
            }
            if pinned {
                continue;
            }
            actions.push(StoreAction {
                name: inputs[i].name.clone(),
                kind,
                op: StoreOp::Drop,
            });
            total -= bytes;
        }
    }
    actions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(
        name: &str,
        profile: AccessProfile,
        materialized: Vec<(VariantKind, u64, bool)>,
    ) -> CompactionInput {
        CompactionInput {
            name: name.into(),
            profile,
            original_bytes: 1000,
            materialized,
        }
    }

    #[test]
    fn smart_cut_traffic_materializes_dense() {
        let actions = plan_compaction(
            &[input(
                "a",
                AccessProfile {
                    smart_cut: 10,
                    scan: 1,
                    preview: 0,
                },
                vec![],
            )],
            u64::MAX,
        );
        assert_eq!(
            actions,
            vec![StoreAction {
                name: "a".into(),
                kind: VariantKind::Dense,
                op: StoreOp::Materialize,
            }]
        );
    }

    #[test]
    fn scan_traffic_materializes_archive() {
        let actions = plan_compaction(
            &[input(
                "a",
                AccessProfile {
                    smart_cut: 1,
                    scan: 10,
                    preview: 0,
                },
                vec![],
            )],
            u64::MAX,
        );
        assert!(actions.contains(&StoreAction {
            name: "a".into(),
            kind: VariantKind::Archive,
            op: StoreOp::Materialize,
        }));
    }

    #[test]
    fn unwanted_variants_are_dropped() {
        let actions = plan_compaction(
            &[input(
                "a",
                AccessProfile {
                    smart_cut: 0,
                    scan: 10,
                    preview: 0,
                },
                vec![(VariantKind::Dense, 2000, false)],
            )],
            u64::MAX,
        );
        assert!(actions.contains(&StoreAction {
            name: "a".into(),
            kind: VariantKind::Dense,
            op: StoreOp::Drop,
        }));
    }

    #[test]
    fn pinned_variants_survive() {
        let actions = plan_compaction(
            &[input(
                "a",
                AccessProfile::default(),
                vec![(VariantKind::Dense, 2000, true)],
            )],
            1,
        );
        assert!(actions.is_empty());
    }

    #[test]
    fn budget_blocks_materialization_and_evicts() {
        // Two sources want dense; only one fits the budget — the one
        // with the higher demand wins.
        let actions = plan_compaction(
            &[
                input(
                    "cold",
                    AccessProfile {
                        smart_cut: 2,
                        scan: 0,
                        preview: 0,
                    },
                    vec![],
                ),
                input(
                    "hot",
                    AccessProfile {
                        smart_cut: 50,
                        scan: 0,
                        preview: 0,
                    },
                    vec![],
                ),
            ],
            2500,
        );
        assert_eq!(
            actions,
            vec![StoreAction {
                name: "hot".into(),
                kind: VariantKind::Dense,
                op: StoreOp::Materialize,
            }]
        );

        // A shrunken budget evicts the least-demanded held variant.
        let actions = plan_compaction(
            &[
                input(
                    "cold",
                    AccessProfile {
                        smart_cut: 2,
                        scan: 0,
                        preview: 0,
                    },
                    vec![(VariantKind::Dense, 2000, false)],
                ),
                input(
                    "hot",
                    AccessProfile {
                        smart_cut: 50,
                        scan: 0,
                        preview: 0,
                    },
                    vec![(VariantKind::Dense, 2000, false)],
                ),
            ],
            2000,
        );
        assert_eq!(
            actions,
            vec![StoreAction {
                name: "cold".into(),
                kind: VariantKind::Dense,
                op: StoreOp::Drop,
            }]
        );
    }
}
