//! Access-pattern profiling: classify a physical plan's source reads.
//!
//! The compactor needs to know *how* each source is being read, not
//! just how often. Three rates matter for variant choice:
//!
//! * **smart-cut** — short mid-GOP render heads (the expensive shape on
//!   long-GOP sources; a dense variant makes them cheap);
//! * **scan** — long sequential decodes (an archival variant shrinks
//!   the bytes pulled through the decoder);
//! * **preview** — reads whose output geometry is smaller than the
//!   source (a proxy variant skips the decode-then-downscale).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use v2v_plan::{PhysicalPlan, PlanContext, SegPlan};

/// Observed read counts for one source, by access shape.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessProfile {
    /// Short mid-GOP render-head reads.
    pub smart_cut: u64,
    /// Long sequential decode reads.
    pub scan: u64,
    /// Reads rendered at a smaller output geometry than the source.
    pub preview: u64,
}

impl AccessProfile {
    /// Element-wise accumulate.
    pub fn add(&mut self, other: AccessProfile) {
        self.smart_cut += other.smart_cut;
        self.scan += other.scan;
        self.preview += other.preview;
    }

    /// Total classified reads.
    pub fn total(&self) -> u64 {
        self.smart_cut + self.scan + self.preview
    }
}

/// Classifies each render input read in `plan` against the source GOP
/// cadence in `ctx`. Stream-copy segments decode nothing and are not
/// counted. One read may count as both preview and smart-cut/scan —
/// the axes are independent (geometry vs seek shape).
pub fn profile_plan(plan: &PhysicalPlan, ctx: &PlanContext) -> BTreeMap<String, AccessProfile> {
    let mut out: BTreeMap<String, AccessProfile> = BTreeMap::new();
    let out_px =
        u64::from(plan.out_params.frame_ty.width) * u64::from(plan.out_params.frame_ty.height);
    for seg in &plan.segments {
        let SegPlan::Render { inputs, .. } = &seg.plan else {
            continue;
        };
        for clip in inputs {
            let Some(meta) = ctx.source(&clip.video) else {
                continue;
            };
            let profile = out.entry(clip.video.clone()).or_default();
            let src_px =
                u64::from(meta.params.frame_ty.width) * u64::from(meta.params.frame_ty.height);
            if out_px < src_px {
                profile.preview += 1;
            }
            let gop = u64::from(meta.params.gop_size.max(1));
            // A mid-GOP read shorter than one source GOP is the
            // smart-cut head shape; anything longer is a scan.
            if seg.count <= gop {
                let start_idx = meta.index_of(clip.time.apply(plan.instant_of(seg.out_start)));
                match start_idx {
                    Some(i) if !meta.is_keyframe(i) => profile.smart_cut += 1,
                    _ => profile.scan += 1,
                }
            } else {
                profile.scan += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use v2v_codec::CodecParams;
    use v2v_frame::FrameType;
    use v2v_plan::{lower_spec, optimize, OptimizerConfig, SourceMeta};
    use v2v_spec::builder::grayscale;
    use v2v_spec::{OutputSettings, SpecBuilder};
    use v2v_time::{r, Rational};

    fn ctx(count: u64, gop: u64) -> PlanContext {
        PlanContext::new().with_source(
            "src",
            SourceMeta {
                params: CodecParams::new(FrameType::yuv420p(64, 64), gop as u32, 0),
                start: Rational::ZERO,
                frame_dur: r(1, 30),
                count,
                keyframes: (0..count).step_by(gop as usize).collect(),
            },
        )
    }

    fn plan(ctx: &PlanContext, from: i64, secs: i64, out_side: u32) -> PhysicalPlan {
        let output = OutputSettings {
            frame_ty: FrameType::yuv420p(out_side, out_side),
            frame_dur: r(1, 30),
            gop_size: 30,
            quantizer: 0,
        };
        let spec = SpecBuilder::new(output)
            .video("src", "src.svc")
            .append_filtered("src", r(from, 1), r(secs, 1), grayscale)
            .build();
        let logical = lower_spec(&spec).unwrap();
        let config = OptimizerConfig {
            shard: false,
            ..OptimizerConfig::default()
        };
        optimize(&logical, ctx, &config).unwrap()
    }

    #[test]
    fn midgop_head_counts_as_smart_cut() {
        let ctx = ctx(600, 300);
        // Half a second starting at t=3s: mid-GOP, shorter than a GOP.
        let p = plan(&ctx, 3, 1, 64);
        let profiles = profile_plan(&p, &ctx);
        assert!(profiles["src"].smart_cut >= 1, "{:?}", profiles);
        assert_eq!(profiles["src"].preview, 0);
    }

    #[test]
    fn long_read_counts_as_scan() {
        let ctx = ctx(600, 30);
        let p = plan(&ctx, 0, 10, 64);
        let profiles = profile_plan(&p, &ctx);
        assert!(profiles["src"].scan >= 1, "{:?}", profiles);
        assert_eq!(profiles["src"].smart_cut, 0);
    }

    #[test]
    fn small_output_counts_as_preview() {
        let ctx = ctx(600, 30);
        let p = plan(&ctx, 0, 2, 32);
        let profiles = profile_plan(&p, &ctx);
        assert!(profiles["src"].preview >= 1, "{:?}", profiles);
    }
}
