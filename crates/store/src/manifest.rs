//! The `manifest.json` sidecar: per-source variant bookkeeping.

use serde::{Deserialize, Serialize};
use v2v_codec::CodecParams;
use v2v_plan::VariantKind;

/// One materialized variant recorded in a manifest.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VariantEntry {
    /// Which variant this is.
    pub kind: VariantKind,
    /// The variant bitstream's codec parameters.
    pub params: CodecParams,
    /// Sorted keyframe frame-indices within the variant bitstream.
    pub keyframes: Vec<u64>,
    /// Compressed byte size of the variant bitstream.
    pub byte_size: u64,
    /// Original frames covered (the committed prefix at transcode
    /// time; a live source may have grown since).
    pub covered_frames: u64,
    /// FNV-64 digest of the variant bitstream (verified on load).
    pub content_digest: u64,
    /// Pinned variants survive compaction.
    #[serde(default)]
    pub pinned: bool,
}

/// Sidecar describing every managed variant of one source, keyed back
/// to the original bitstream by prefix digest.
///
/// `prefix_digest` is the original's digest over `covered_frames`
/// packets. Appending to a live source never changes committed prefix
/// digests, so a manifest stays valid across appends; replacing the
/// source with different content breaks the digest and every variant
/// is ignored rather than served stale.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VariantManifest {
    /// Catalog source name.
    pub name: String,
    /// The original's full content digest at last materialization
    /// (informational; attachment checks `prefix_digest`).
    pub original_digest: u64,
    /// Frames of the original covered by `prefix_digest`.
    pub covered_frames: u64,
    /// The original's digest over its first `covered_frames` packets.
    pub prefix_digest: u64,
    /// Managed variants, sorted by kind.
    pub variants: Vec<VariantEntry>,
}

impl VariantManifest {
    /// The entry for `kind`, if materialized.
    pub fn entry(&self, kind: VariantKind) -> Option<&VariantEntry> {
        self.variants.iter().find(|v| v.kind == kind)
    }

    /// Total managed bytes for this source.
    pub fn managed_bytes(&self) -> u64 {
        self.variants.iter().map(|v| v.byte_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v2v_frame::FrameType;

    #[test]
    fn manifest_roundtrips_through_json() {
        let m = VariantManifest {
            name: "src".into(),
            original_digest: 7,
            covered_frames: 100,
            prefix_digest: 9,
            variants: vec![VariantEntry {
                kind: VariantKind::Dense,
                params: CodecParams::new(FrameType::yuv420p(64, 64), 4, 0),
                keyframes: vec![0, 4, 8],
                byte_size: 1234,
                covered_frames: 100,
                content_digest: 42,
                pinned: true,
            }],
        };
        let json = serde_json::to_string(&m).unwrap();
        let back: VariantManifest = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
        assert_eq!(back.entry(VariantKind::Dense).unwrap().byte_size, 1234);
        assert_eq!(back.managed_bytes(), 1234);
    }
}
