//! Shared helpers for the V2V examples: demo dataset setup with on-disk
//! caching so repeated runs start instantly.

use std::path::PathBuf;
use v2v_container::VideoStream;
use v2v_datasets::{generate, DatasetSpec};

/// Cache directory for example assets.
pub fn example_cache() -> PathBuf {
    let dir = std::env::temp_dir().join("v2v_example_cache");
    std::fs::create_dir_all(&dir).expect("cache dir is creatable");
    dir
}

/// Generates (or loads from cache) a dataset video.
pub fn cached_video(spec: &DatasetSpec, tag: &str) -> VideoStream {
    let path = example_cache().join(format!(
        "{tag}_{}_{}x{}_{}s.svc",
        spec.name, spec.width, spec.height, spec.duration_s
    ));
    if path.exists() {
        if let Ok(s) = v2v_container::read_svc(&path) {
            if s.len() as u64 == spec.n_frames() {
                return s;
            }
        }
    }
    println!(
        "generating {tag} ({}s of {})...",
        spec.duration_s, spec.name
    );
    let s = generate(spec);
    let _ = v2v_container::write_svc(&s, &path);
    s
}

/// Pretty-prints a run report.
pub fn print_report(label: &str, report: &v2v_core::RunReport) {
    println!(
        "{label}: {} frames / {} KiB in {:.3}s  (decoded {}, encoded {}, copied {} packets, dde {})",
        report.output.len(),
        report.output.byte_size() / 1024,
        report.wall.as_secs_f64(),
        report.stats.frames_decoded,
        report.stats.frames_encoded,
        report.stats.packets_copied,
        report.dde_rewrites,
    );
}
