//! User-defined transformations (paper §III-C): extend the filter
//! vocabulary without touching the engine.
//!
//! Registers a *vignette* kernel (radial darkening — a classic grading
//! effect V2V does not ship), uses it from a declarative spec via
//! `TransformOp::Udf`, and shows that the checker validates its
//! signature and the optimizer fuses it into the render pipeline like
//! any built-in.
//!
//! ```text
//! cargo run --release -p v2v-examples --bin custom_udf
//! ```

use std::sync::Arc;
use v2v_core::V2vEngine;
use v2v_data::Value;
use v2v_datasets::{kabr_sim, Scale};
use v2v_examples::{cached_video, example_cache, print_report};
use v2v_exec::Catalog;
use v2v_frame::{Frame, FrameType};
use v2v_spec::{
    Arg, ArgKind, DataExpr, DataType, OutputSettings, RenderExpr, SpecBuilder, TransformOp,
};
use v2v_time::{r, Rational};

/// Our UDF id (any u16; ids are scoped to the catalog).
const VIGNETTE: u16 = 1;

/// Radial darkening: luma scaled by `1 - strength·(d/d_max)²`.
fn vignette(_t: Rational, frames: &[Frame], data: &[Value]) -> Result<Frame, String> {
    let strength = data
        .first()
        .and_then(|v| v.as_f64())
        .ok_or("vignette needs a numeric strength")?;
    if !(0.0..=1.0).contains(&strength) {
        return Err(format!("strength {strength} must be in [0, 1]"));
    }
    let mut out = frames[0].clone();
    let w = out.width() as f64;
    let h = out.height() as f64;
    let (cx, cy) = (w / 2.0, h / 2.0);
    let d_max_sq = cx * cx + cy * cy;
    let plane = out.plane_mut(0);
    for y in 0..plane.height() {
        for x in 0..plane.width() {
            let dx = x as f64 - cx;
            let dy = y as f64 - cy;
            let falloff = 1.0 - strength * (dx * dx + dy * dy) / d_max_sq;
            let v = f64::from(plane.get(x, y)) * falloff;
            plane.put(x, y, v.clamp(0.0, 255.0) as u8);
        }
    }
    Ok(out)
}

fn main() {
    let dataset = kabr_sim(Scale::Test, 20);
    let video = cached_video(&dataset, "udf");

    // Register signature + kernel with the catalog; the checker and the
    // executors both resolve UDFs through it.
    let mut catalog = Catalog::new();
    catalog.add_video("drone", video);
    catalog.register_udf(
        VIGNETTE,
        "vignette",
        vec![ArgKind::Frame, ArgKind::Data(DataType::Number)],
        Arc::new(vignette),
    );

    let output = OutputSettings {
        frame_ty: FrameType::yuv420p(dataset.width, dataset.height),
        frame_dur: dataset.frame_dur(),
        gop_size: dataset.fps as u32,
        quantizer: dataset.quantizer,
    };
    let spec = SpecBuilder::new(output)
        .video("drone", "drone.svc")
        .append_filtered("drone", r(2, 1), Rational::from_int(5), |e| {
            RenderExpr::transform(
                TransformOp::Udf(VIGNETTE),
                vec![Arg::Frame(e), Arg::Data(DataExpr::constant(0.6))],
            )
        })
        .build();
    println!(
        "spec uses UDF #{VIGNETTE} (serialized as {})",
        serde_json::to_string(&TransformOp::Udf(VIGNETTE)).unwrap()
    );

    let mut engine = V2vEngine::new(catalog);
    let explain = engine.explain(&spec).expect("plans");
    println!(
        "--- optimized plan (UDF fused like a built-in) ---\n{}",
        explain.physical
    );
    let report = engine.run(&spec).expect("synthesis");
    print_report("vignette", &report);

    // Verify the effect landed: corners darker than the centre.
    let (frames, _) = report
        .output
        .decode_range(0, 1)
        .expect("decode first frame");
    let f = &frames[0];
    let corner = u32::from(f.plane(0).get(1, f.height() - 2));
    let center = u32::from(f.plane(0).get(f.width() / 2, f.height() / 2));
    println!("corner luma {corner} vs centre luma {center} (vignette pulls corners down)");

    let out = example_cache().join("custom_udf.svc");
    v2v_container::write_svc(&report.output, &out).expect("write output");
    println!("wrote {}", out.display());
}
