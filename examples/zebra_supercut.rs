//! The paper's motivating example: *"Show me all the times zebras
//! exhibited social behavior and overlay their IDs and the behavior
//! type."*
//!
//! A VDBMS would answer the relational half of that query and hand V2V a
//! relation of events. Here the detector results live in the
//! `video_objects` table; we derive behavior episodes from it, turn the
//! rows into a montage spec with the [`v2v_core::facade`] helpers
//! (bounding boxes + burned-in labels + zoom), and synthesize one
//! easy-to-watch result video.
//!
//! ```text
//! cargo run --release -p v2v-examples --bin zebra_supercut
//! ```

use v2v_core::{montage_spec, MontageOptions, MontageSegment, V2vEngine};
use v2v_data::{Database, Query};
use v2v_datasets::{detections, detections_table, kabr_sim, DetectionProfile, Scale};
use v2v_examples::{cached_video, example_cache, print_report};
use v2v_exec::Catalog;
use v2v_frame::FrameType;
use v2v_spec::OutputSettings;
use v2v_time::Rational;

fn main() {
    // Source footage + cached detector output.
    let dataset = kabr_sim(Scale::Test, 120);
    let video = cached_video(&dataset, "zebra");
    let dets = detections(&dataset, DetectionProfile::kabr(), "zebra");

    // The VDBMS side: detections live in a relational table.
    let mut db = Database::new();
    db.add_table(detections_table(&[("kabr_cam1", &dets)]));

    // Find behavior episodes: contiguous runs of frames with detections.
    // (A real VDBMS would run its behavior model; the scan below stands
    // in for `SELECT ... FROM behaviors WHERE type = 'social'`.)
    let rows = Query::parse(
        "SELECT timestamp, frame_objects FROM video_objects \
         WHERE video = 'kabr_cam1' AND model = 'yolov5m' ORDER BY timestamp",
    )
    .unwrap()
    .materialize(&db)
    .unwrap();
    let frame_dur = dataset.frame_dur();
    let mut episodes: Vec<(Rational, Rational)> = Vec::new(); // (start, end)
    let mut current: Option<(Rational, Rational)> = None;
    for (t, v) in rows.iter() {
        let visible = v.as_boxes().map(|b| !b.is_empty()).unwrap_or(false);
        match (&mut current, visible) {
            (None, true) => current = Some((t, t + frame_dur)),
            (Some((_, end)), true) => *end = t + frame_dur,
            (Some(ep), false) => {
                episodes.push(*ep);
                current = None;
            }
            (None, false) => {}
        }
    }
    if let Some(ep) = current {
        episodes.push(ep);
    }
    // Keep episodes of at least a second, at most the first six.
    episodes.retain(|(s, e)| (*e - *s) >= Rational::ONE);
    episodes.truncate(6);
    println!("found {} social-behavior episodes", episodes.len());

    // The V2V side: rows → montage spec with IDs + behavior labels.
    let segments: Vec<MontageSegment> = episodes
        .iter()
        .enumerate()
        .map(|(i, (start, end))| {
            MontageSegment::clip("kabr_cam1", *start, *end - *start)
                .with_label(format!("ZEBRA {} SOCIAL", i + 1))
                .with_boxes("kabr_cam1_bb")
        })
        .collect();
    let mut options = MontageOptions::new(OutputSettings {
        frame_ty: FrameType::yuv420p(dataset.width, dataset.height),
        frame_dur,
        gop_size: dataset.fps as u32,
        quantizer: dataset.quantizer,
    });
    options.zoom = 1.3; // "zoom into the correct spot"
    let spec = montage_spec(&segments, &options);

    // Bind and run.
    let mut catalog = Catalog::new();
    catalog.add_video("kabr_cam1", video);
    catalog.add_array("kabr_cam1_bb", rows);
    let mut engine = V2vEngine::new(catalog).with_database(db);
    let report = engine.run(&spec).expect("synthesis");
    print_report("zebra supercut", &report);

    let out = example_cache().join("zebra_supercut.svc");
    v2v_container::write_svc(&report.output, &out).expect("write output");
    println!("wrote {}", out.display());
}
