//! Data in specs via SQL (paper §IV-B).
//!
//! The spec's data array is defined by a SQL query over the
//! `video_objects` table — exactly the paper's example — and the engine
//! materializes it at bind time. The run report shows the
//! data-dependent rewriter turning detection-free spans into stream
//! copies.
//!
//! ```text
//! cargo run --release -p v2v-examples --bin sql_join
//! ```

use v2v_core::V2vEngine;
use v2v_data::{materialize_bounded, Database, Query};
use v2v_datasets::{detections, detections_table, kabr_sim, DetectionProfile, Scale};
use v2v_examples::{cached_video, print_report};
use v2v_exec::Catalog;
use v2v_frame::FrameType;
use v2v_spec::builder::bounding_box;
use v2v_spec::{OutputSettings, SpecBuilder};
use v2v_time::{r, Rational};

fn main() {
    let dataset = kabr_sim(Scale::Test, 60);
    let video = cached_video(&dataset, "sqljoin");
    let dets = detections(&dataset, DetectionProfile::kabr(), "zebra");

    let mut db = Database::new();
    db.add_table(detections_table(&[("kabr_cam2", &dets)]));

    // Bounded materialization: pull only the minute we synthesize.
    let query = Query::parse(
        "SELECT timestamp, frame_objects FROM video_objects \
         WHERE video = 'kabr_cam2' AND model = 'yolov5m'",
    )
    .unwrap();
    let bounded = materialize_bounded(&query, &db, "timestamp", r(0, 1), r(60, 1)).unwrap();
    println!(
        "bounded materialization: {} rows for [0, 60]s",
        bounded.len()
    );

    // The spec itself carries the SQL locator; the engine materializes it.
    let output = OutputSettings {
        frame_ty: FrameType::yuv420p(dataset.width, dataset.height),
        frame_dur: dataset.frame_dur(),
        gop_size: dataset.fps as u32,
        quantizer: dataset.quantizer,
    };
    let spec = SpecBuilder::new(output)
        .video("kabr_cam2", "kabr_cam2.svc")
        .data_array(
            "dets",
            "sql:SELECT timestamp, frame_objects FROM video_objects \
             WHERE video = 'kabr_cam2' AND model = 'yolov5m'",
        )
        .append_filtered("kabr_cam2", r(5, 1), Rational::from_int(40), |e| {
            bounding_box(e, "dets")
        })
        .build();
    println!(
        "spec JSON (excerpt): {}...",
        &spec.to_json()[..300.min(spec.to_json().len())]
    );

    let mut catalog = Catalog::new();
    catalog.add_video("kabr_cam2", video);
    let mut engine = V2vEngine::new(catalog).with_database(db);
    let report = engine.run(&spec).expect("synthesis");
    print_report("sql join (dde on)", &report);

    let config = v2v_core::EngineConfig {
        data_rewrites: false,
        ..Default::default()
    };
    let mut engine_off = V2vEngine::new(engine.catalog().clone()).with_config(config);
    let report_off = engine_off.run(&spec).expect("synthesis without dde");
    print_report("sql join (dde off)", &report_off);
    println!(
        "data-aware speedup: {:.2}x  (copied {} vs {} packets)",
        report_off.wall.as_secs_f64() / report.wall.as_secs_f64().max(1e-9),
        report.stats.packets_copied,
        report_off.stats.packets_copied,
    );
}
