//! A film highlight reel: supercut with animated crossfade transitions.
//!
//! Demonstrates time-parameterized transforms — the transition alpha is a
//! *data expression over t* (`(t - seg_start) / fade_len`), so the same
//! declarative machinery that joins detection tables also drives
//! animation. The data-dependent rewriter proves the alpha saturates to
//! 1.0 after the fade window and collapses the tail of each segment to a
//! plain clip.
//!
//! ```text
//! cargo run --release -p v2v-examples --bin highlight_reel
//! ```

use v2v_core::V2vEngine;
use v2v_datasets::{tos_sim, Scale};
use v2v_examples::{cached_video, example_cache, print_report};
use v2v_exec::Catalog;
use v2v_frame::FrameType;
use v2v_spec::builder::{crossfade, zoom};
use v2v_spec::{ArithOp, DataExpr, OutputSettings, RenderExpr, SpecBuilder};
use v2v_time::{r, AffineTimeMap, Rational};

/// `alpha(t) = clamp((t - at) / len)` as a data expression; `Crossfade`'s
/// own dde clamps the tails, so a plain ramp suffices.
fn ramp(at: Rational, len: Rational) -> DataExpr {
    DataExpr::Arith {
        op: ArithOp::Div,
        lhs: Box::new(DataExpr::Arith {
            op: ArithOp::Sub,
            lhs: Box::new(DataExpr::T),
            rhs: Box::new(DataExpr::constant(v2v_data::Value::Rational(at))),
        }),
        rhs: Box::new(DataExpr::constant(v2v_data::Value::Rational(len))),
    }
}

fn main() {
    let dataset = tos_sim(Scale::Test, 80);
    let video = cached_video(&dataset, "reel");

    let output = OutputSettings {
        frame_ty: FrameType::yuv420p(dataset.width, dataset.height),
        frame_dur: dataset.frame_dur(),
        gop_size: dataset.fps as u32,
        quantizer: dataset.quantizer,
    };
    // Three "iconic moments" of the film.
    let moments = [r(5, 1), r(31, 1), r(62, 1)];
    let seg_len = Rational::from_int(4);
    let fade = Rational::ONE;

    let mut builder = SpecBuilder::new(output).video("film", "film.svc");
    for (i, &start) in moments.iter().enumerate() {
        let next = moments.get(i + 1).copied();
        builder = builder.append_with(seg_len, move |out_start| {
            let current = RenderExpr::FrameRef {
                video: "film".into(),
                time: AffineTimeMap::shift(start - out_start),
            };
            let current = zoom(current, 1.2);
            match next {
                // Crossfade into the next moment over the last second.
                Some(next_start) => {
                    let incoming = RenderExpr::FrameRef {
                        video: "film".into(),
                        // The incoming clip plays its *lead-in* during the
                        // fade: align its start to the segment end.
                        time: AffineTimeMap::shift(next_start - (out_start + seg_len)),
                    };
                    crossfade(current, incoming, ramp(out_start + seg_len - fade, fade))
                }
                None => current,
            }
        });
    }
    let spec = builder.build();

    let mut catalog = Catalog::new();
    catalog.add_video("film", video);
    let mut engine = V2vEngine::new(catalog);
    let report = engine.run(&spec).expect("synthesis");
    print_report("highlight reel", &report);
    println!(
        "dde specialized {} transition sites (alpha ≤ 0 spans became plain clips)",
        report.dde_rewrites
    );

    let out = example_cache().join("highlight_reel.svc");
    v2v_container::write_svc(&report.output, &out).expect("write output");
    println!("wrote {}", out.display());
}
