//! "Show me the event from multiple cameras as a 2×2 grid with object
//! overlays" (paper §I, *Video Synthesis*).
//!
//! Four synchronized cameras (four synthetic drone streams with distinct
//! seeds) are composed into a labelled quad view over the event window,
//! with per-camera bounding boxes drawn before composition.
//!
//! ```text
//! cargo run --release -p v2v-examples --bin multicam_grid
//! ```

use v2v_core::V2vEngine;
use v2v_datasets::{detections, kabr_sim, DetectionProfile, Scale};
use v2v_examples::{cached_video, example_cache, print_report};
use v2v_exec::Catalog;
use v2v_frame::FrameType;
use v2v_spec::builder::{bounding_box, grid4, text_overlay};
use v2v_spec::{OutputSettings, RenderExpr, SpecBuilder};
use v2v_time::{r, AffineTimeMap, Rational};

fn main() {
    // Four cameras recording the same event.
    let mut catalog = Catalog::new();
    let mut base = kabr_sim(Scale::Test, 30);
    for cam in 0..4u64 {
        base.seed = 0x4B41_4252 + cam * 7919;
        base.name = format!("cam{cam}");
        let video = cached_video(&base, &format!("multicam{cam}"));
        catalog.add_video(format!("cam{cam}"), video);
        let dets = detections(&base, DetectionProfile::kabr(), "zebra");
        catalog.add_array(format!("cam{cam}_bb"), dets);
    }

    // The event: t = 8 s .. 16 s, shown simultaneously in quadrants.
    let output = OutputSettings {
        frame_ty: FrameType::yuv420p(base.width, base.height),
        frame_dur: base.frame_dur(),
        gop_size: base.fps as u32,
        quantizer: base.quantizer,
    };
    let event_start = r(8, 1);
    let event_len = Rational::from_int(8);
    let spec = SpecBuilder::new(output)
        .video("cam0", "cam0.svc")
        .video("cam1", "cam1.svc")
        .video("cam2", "cam2.svc")
        .video("cam3", "cam3.svc")
        .data_array("cam0_bb", "catalog")
        .data_array("cam1_bb", "catalog")
        .data_array("cam2_bb", "catalog")
        .data_array("cam3_bb", "catalog")
        .append_with(event_len, move |out_start| {
            let cell = |cam: usize| {
                let reference = RenderExpr::FrameRef {
                    video: format!("cam{cam}"),
                    time: AffineTimeMap::shift(event_start - out_start),
                };
                let boxed = bounding_box(reference, format!("cam{cam}_bb"));
                text_overlay(boxed, format!("CAM {cam}"), 0.04, 0.06)
            };
            grid4(cell(0), cell(1), cell(2), cell(3))
        })
        .build();

    let mut engine = V2vEngine::new(catalog);
    let explain = engine.explain(&spec).expect("plans");
    println!(
        "--- unoptimized (12 operators feed the grid) ---\n{}",
        explain.logical
    );
    println!(
        "--- optimized (one fused render per shard) ---\n{}",
        explain.physical
    );

    let report = engine.run(&spec).expect("synthesis");
    print_report("multicam grid", &report);
    let baseline = engine.run_unoptimized(&spec).expect("baseline");
    print_report("unoptimized  ", &baseline);
    println!(
        "speedup: {:.2}x",
        baseline.wall.as_secs_f64() / report.wall.as_secs_f64().max(1e-9)
    );

    let out = example_cache().join("multicam_grid.svc");
    v2v_container::write_svc(&report.output, &out).expect("write output");
    println!("wrote {}", out.display());
}
