//! Quickstart: declare an edit, run it optimized, inspect the plans.
//!
//! Builds a 10-second highlight (two clips spliced, the second blurred),
//! prints the unoptimized and optimized plans (the paper's Fig. 2 view),
//! executes both arms, and writes the result plus the serialized JSON
//! spec next to it.
//!
//! ```text
//! cargo run --release -p v2v-examples --bin quickstart
//! ```

use v2v_core::V2vEngine;
use v2v_datasets::{kabr_sim, Scale};
use v2v_examples::{cached_video, example_cache, print_report};
use v2v_exec::Catalog;
use v2v_frame::FrameType;
use v2v_spec::builder::blur;
use v2v_spec::{OutputSettings, SpecBuilder};
use v2v_time::{r, Rational};

fn main() {
    // 1. A source video (synthetic drone footage; any .svc stream works).
    let dataset = kabr_sim(Scale::Test, 40);
    let video = cached_video(&dataset, "quickstart");

    // 2. Declare the edit: Spec = ⟨TimeDomain, Render, videos⟩.
    //    The builder derives the time domain and match arms.
    let output = OutputSettings {
        frame_ty: FrameType::yuv420p(dataset.width, dataset.height),
        frame_dur: dataset.frame_dur(),
        gop_size: dataset.fps as u32,
        quantizer: dataset.quantizer,
    };
    let spec = SpecBuilder::new(output)
        .video("drone", "drone.svc")
        // 5 s from t=10.5 s (mid-GOP: watch the smart cut appear)...
        .append_clip("drone", r(21, 2), Rational::from_int(5))
        // ...then 5 s from t=30 s with a blur.
        .append_filtered("drone", r(30, 1), Rational::from_int(5), |e| blur(e, 1.5))
        .build();

    // 3. Bind sources and look at what the optimizer does.
    let mut catalog = Catalog::new();
    catalog.add_video("drone", video);
    let mut engine = V2vEngine::new(catalog);
    let explain = engine.explain(&spec).expect("plans");
    println!("--- unoptimized plan ---\n{}", explain.logical);
    println!("--- optimized plan ---\n{}", explain.physical);

    // 4. Execute both arms.
    let report = engine.run(&spec).expect("optimized run");
    print_report("optimized  ", &report);
    let baseline = engine.run_unoptimized(&spec).expect("unoptimized run");
    print_report("unoptimized", &baseline);
    println!(
        "speedup: {:.2}x",
        baseline.wall.as_secs_f64() / report.wall.as_secs_f64().max(1e-9)
    );

    // 5. Persist the artifacts.
    let out = example_cache().join("quickstart_result.svc");
    v2v_container::write_svc(&report.output, &out).expect("write output");
    let spec_path = example_cache().join("quickstart_spec.json");
    std::fs::write(&spec_path, spec.to_json()).expect("write spec");
    println!("wrote {} and {}", out.display(), spec_path.display());
    println!(
        "try: cargo run -p v2v-cli --bin v2v -- info {}",
        out.display()
    );
}
